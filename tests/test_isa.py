"""Unit tests for the ISA layer: op classes, registers, encoding."""

import pytest

from repro.isa import (
    Instruction,
    NO_REG,
    OpClass,
    UNIT_FOR_OP,
    UnitType,
    decode,
    encode,
    fp_reg,
    int_reg,
    is_fp_reg,
    nop,
    reg_name,
)
from repro.isa.encoding import EncodingError


class TestOpClass:
    def test_control_classification(self):
        assert Instruction(OpClass.BR_COND).is_control
        assert Instruction(OpClass.JUMP).is_control
        assert Instruction(OpClass.CALL).is_control
        assert Instruction(OpClass.RET).is_control
        assert not Instruction(OpClass.IALU).is_control
        assert not Instruction(OpClass.NOP).is_control

    def test_conditional_vs_unconditional(self):
        assert Instruction(OpClass.BR_COND).is_conditional_branch
        assert not Instruction(OpClass.BR_COND).is_unconditional
        assert Instruction(OpClass.JUMP).is_unconditional
        assert Instruction(OpClass.RET).is_unconditional

    def test_latencies_match_paper(self):
        # Table 1: FXU latency 1, FPU latency 2, branch latency 1.
        assert Instruction(OpClass.IALU).latency == 1
        assert Instruction(OpClass.FALU).latency == 2
        assert Instruction(OpClass.BR_COND).latency == 1

    def test_unit_mapping(self):
        assert UNIT_FOR_OP[OpClass.IALU] is UnitType.FXU
        assert UNIT_FOR_OP[OpClass.FALU] is UnitType.FPU
        assert UNIT_FOR_OP[OpClass.BR_COND] is UnitType.BRANCH
        assert UNIT_FOR_OP[OpClass.LOAD] is UnitType.LOAD_UNIT
        assert UNIT_FOR_OP[OpClass.STORE] is UnitType.STORE_BUFFER


class TestRegisters:
    def test_int_and_fp_spaces_disjoint(self):
        assert int_reg(0) == 0
        assert fp_reg(0) == 32
        assert not is_fp_reg(int_reg(31))
        assert is_fp_reg(fp_reg(0))

    def test_range_checks(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)

    def test_reg_names(self):
        assert reg_name(int_reg(5)) == "r5"
        assert reg_name(fp_reg(3)) == "f3"
        assert reg_name(NO_REG) == "-"


class TestInstruction:
    def test_sources_skip_missing(self):
        instr = Instruction(OpClass.IALU, dest=1, src1=2)
        assert instr.sources() == (2,)
        assert Instruction(OpClass.NOP).sources() == ()

    def test_byte_address(self):
        instr = Instruction(OpClass.IALU, address=10)
        assert instr.byte_address == 40

    def test_nop_helper(self):
        n = nop()
        assert n.is_nop
        assert n.dest == NO_REG


class TestEncoding:
    def test_alu_roundtrip(self):
        instr = Instruction(OpClass.IALU, dest=3, src1=17, src2=40, address=7)
        back = decode(encode(instr), address=7)
        assert back.op is OpClass.IALU
        assert (back.dest, back.src1, back.src2) == (3, 17, 40)

    def test_missing_regs_roundtrip(self):
        instr = Instruction(OpClass.LOAD, dest=9)
        back = decode(encode(instr))
        assert back.dest == 9
        assert back.src1 == NO_REG
        assert back.src2 == NO_REG

    def test_branch_roundtrip_forward_and_backward(self):
        for target in (120, 80):
            instr = Instruction(
                OpClass.BR_COND, src1=4, address=100, target=target
            )
            back = decode(encode(instr), address=100)
            assert back.op is OpClass.BR_COND
            assert back.src1 == 4
            assert back.target == target

    def test_jump_and_call_roundtrip(self):
        for op in (OpClass.JUMP, OpClass.CALL):
            instr = Instruction(op, address=50, target=1000)
            back = decode(encode(instr), address=50)
            assert back.op is op
            assert back.target == 1000

    def test_ret_has_no_target(self):
        back = decode(encode(Instruction(OpClass.RET, address=5)), address=5)
        assert back.op is OpClass.RET

    def test_unplaced_branch_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(OpClass.BR_COND, src1=1))

    def test_bad_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(0x3F << 26)  # unknown opcode

    def test_word_is_32_bits(self):
        instr = Instruction(OpClass.IALU, dest=1, src1=2, src2=3)
        assert 0 <= encode(instr) < (1 << 32)
