"""Integration tests: full simulations of workloads on the machine models."""

import pytest

from repro.machines import MACHINES, PI4, PI8, PI12, get_machine
from repro.sim import Simulator, measure_eir, run_workload
from repro.sim.eir import EIRResult
from repro.workloads import generate_trace, load_workload

TRACE_LEN = 6000
WARMUP = 1500


def stats_for(bench, machine, scheme, **kwargs):
    return run_workload(
        bench, machine, scheme, max_instructions=TRACE_LEN, warmup=WARMUP, **kwargs
    )


class TestMachines:
    def test_presets_match_table1(self):
        assert PI4.issue_rate == 4 and PI4.window_size == 16
        assert PI8.issue_rate == 8 and PI8.window_size == 24
        assert PI12.issue_rate == 12 and PI12.window_size == 32
        assert PI4.icache_bytes == 32 * 1024
        assert PI12.icache_block_bytes == 64
        assert PI4.speculation_depth == 2
        assert PI12.num_fxu == 6
        for machine in MACHINES:
            assert machine.btb_entries == 1024
            assert machine.fetch_penalty == 2

    def test_words_per_block(self):
        assert PI4.words_per_block == 4
        assert PI8.words_per_block == 8
        assert PI12.words_per_block == 16  # 64B rounded up past issue 12

    def test_lookup(self):
        assert get_machine("PI8") is PI8
        assert get_machine("PI16").issue_rate == 16  # extension machine
        with pytest.raises(KeyError):
            get_machine("PI64")

    def test_with_fetch_penalty(self):
        shifter = PI4.with_fetch_penalty(3)
        assert shifter.fetch_penalty == 3
        assert PI4.fetch_penalty == 2

    def test_invalid_configs_rejected(self):
        from repro.machines import MachineConfig

        with pytest.raises(ValueError, match="at least the issue rate"):
            MachineConfig(
                name="bad", issue_rate=8, window_size=24,
                icache_bytes=64 * 1024, icache_block_bytes=16,
                num_fxu=4, num_fpu=4, num_branch_units=4,
                speculation_depth=4,
            )


class TestSimulator:
    def test_all_instructions_retire(self):
        stats = stats_for("compress", PI4, "sequential")
        assert stats.retired + WARMUP == pytest.approx(TRACE_LEN, abs=16)

    def test_ipc_within_physical_bounds(self):
        for scheme in ("sequential", "collapsing_buffer", "perfect"):
            stats = stats_for("espresso", PI8, scheme)
            assert 0.1 < stats.ipc <= PI8.issue_rate

    def test_scheme_ordering_on_integer_workload(self):
        """The paper's central ordering, end to end."""
        ipcs = {
            scheme: stats_for("espresso", PI12, scheme).ipc
            for scheme in (
                "sequential",
                "interleaved_sequential",
                "banked_sequential",
                "collapsing_buffer",
                "perfect",
            )
        }
        assert ipcs["sequential"] <= ipcs["interleaved_sequential"] * 1.02
        assert ipcs["interleaved_sequential"] <= ipcs["banked_sequential"] * 1.02
        assert ipcs["banked_sequential"] <= ipcs["collapsing_buffer"] * 1.02
        assert ipcs["collapsing_buffer"] <= ipcs["perfect"] * 1.02

    def test_determinism(self):
        a = stats_for("li", PI4, "banked_sequential")
        b = stats_for("li", PI4, "banked_sequential")
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc

    def test_higher_issue_rate_helps_fp(self):
        small = stats_for("tomcatv", PI4, "perfect")
        large = stats_for("tomcatv", PI12, "perfect")
        assert large.ipc > small.ipc * 1.3

    def test_fetch_penalty_hurts(self):
        fast = stats_for("gcc", PI8, "collapsing_buffer")
        machine = PI8.with_fetch_penalty(6)
        workload = load_workload("gcc")
        trace = generate_trace(workload.program, workload.behavior, TRACE_LEN)
        slow = Simulator(machine, trace, "collapsing_buffer", warmup=WARMUP).run()
        assert slow.ipc < fast.ipc

    def test_recovery_at_retire_slower(self):
        import dataclasses

        workload = load_workload("sc")
        trace = generate_trace(workload.program, workload.behavior, TRACE_LEN)
        fast = Simulator(PI8, trace, "sequential", warmup=WARMUP).run()
        retire_machine = dataclasses.replace(PI8, recovery_at_retire=True)
        slow = Simulator(
            retire_machine, trace, "sequential", warmup=WARMUP
        ).run()
        assert slow.ipc < fast.ipc

    def test_cold_cache_slower_than_prewarmed(self):
        workload = load_workload("eqntott")
        trace = generate_trace(workload.program, workload.behavior, TRACE_LEN)
        warm = Simulator(PI4, trace, "sequential", prewarm_cache=True).run()
        cold = Simulator(PI4, trace, "sequential", prewarm_cache=False).run()
        assert cold.cycles > warm.cycles
        assert cold.fetch_cache_misses > warm.fetch_cache_misses

    def test_stats_sanity(self):
        stats = stats_for("compress", PI4, "collapsing_buffer")
        assert stats.benchmark == "compress"
        assert stats.machine == "PI4"
        assert stats.scheme == "collapsing_buffer"
        assert 0 <= stats.icache_miss_ratio < 0.5
        assert 0 < stats.branch_mispredict_ratio < 0.5
        assert stats.as_dict()["ipc"] == round(stats.ipc, 4)


class TestEIR:
    def test_perfect_eir_close_to_issue_rate(self):
        workload = load_workload("nasa7")
        trace = generate_trace(workload.program, workload.behavior, 10000)
        result = measure_eir(trace, PI4, "perfect")
        assert result.eir > 0.9 * PI4.issue_rate

    def test_eir_ordering(self):
        workload = load_workload("espresso")
        trace = generate_trace(workload.program, workload.behavior, 10000)
        eirs = [
            measure_eir(trace, PI12, scheme).eir
            for scheme in (
                "sequential",
                "interleaved_sequential",
                "banked_sequential",
                "collapsing_buffer",
                "perfect",
            )
        ]
        assert eirs == sorted(eirs)

    def test_collapsing_buffer_alignment_efficiency(self):
        """The paper's headline: CB aligns a high fraction of perfect."""
        workload = load_workload("sc")
        trace = generate_trace(workload.program, workload.behavior, 15000)
        for machine in MACHINES:
            perfect = measure_eir(trace, machine, "perfect").eir
            cb = measure_eir(trace, machine, "collapsing_buffer").eir
            assert cb / perfect > 0.70

    def test_sequential_decays_with_issue_rate(self):
        workload = load_workload("espresso")
        trace = generate_trace(workload.program, workload.behavior, 15000)
        ratios = []
        for machine in MACHINES:
            perfect = measure_eir(trace, machine, "perfect").eir
            seq = measure_eir(trace, machine, "sequential").eir
            ratios.append(seq / perfect)
        assert ratios[0] > ratios[-1] + 0.1

    def test_result_type(self):
        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 5000)
        result = measure_eir(trace, "PI4", "sequential")
        assert isinstance(result, EIRResult)
        assert result.cycles > 0 and result.delivered > 0
