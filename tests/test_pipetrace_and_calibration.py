"""Tests for the pipeline tracer and the calibration utilities."""

import dataclasses

import pytest

from repro.machines import PI4
from repro.sim import Simulator
from repro.sim.pipetrace import trace_pipeline
from repro.workloads import generate_trace, get_profile, load_workload
from repro.workloads.calibration import (
    measure_intra_block,
    score_profile,
    sweep_seeds,
)


class TestPipeTrace:
    def make_trace(self, n=1500):
        workload = load_workload("ora")
        return generate_trace(workload.program, workload.behavior, n)

    def test_matches_simulator_cycle_count(self):
        trace = self.make_trace()
        stats = Simulator(PI4, trace, "banked_sequential").run()
        log = trace_pipeline(
            PI4, trace, "banked_sequential", max_cycles=stats.cycles + 10
        )
        assert abs(len(log.events) - stats.cycles) <= 1

    def test_event_totals_match_trace(self):
        trace = self.make_trace(800)
        log = trace_pipeline(PI4, trace, "sequential", max_cycles=10_000)
        fetched = sum(len(e.fetched) for e in log.events)
        retired = sum(e.retired for e in log.events)
        assert fetched == len(trace.instructions)
        assert retired == len(trace.instructions)

    def test_stall_reasons_recorded(self):
        trace = self.make_trace(800)
        log = trace_pipeline(PI4, trace, "sequential", max_cycles=10_000)
        reasons = {e.stall for e in log.events}
        assert "resolve" in reasons  # mispredictions occur

    def test_render(self):
        trace = self.make_trace(300)
        log = trace_pipeline(PI4, trace, "collapsing_buffer", max_cycles=60)
        text = log.render(limit=20)
        assert "pipeline trace" in text
        assert "collapsing_buffer" in text
        assert len(text.splitlines()) <= 22


class TestCalibration:
    def test_measure_intra_block_monotone(self):
        workload = load_workload("espresso")
        small, medium, large = measure_intra_block(workload, 20_000)
        assert small <= medium + 3 <= large + 8

    def test_score_profile_fp_skips_reduction(self):
        score = score_profile(get_profile("nasa7"), trace_length=15_000)
        assert score.taken_reduction is None
        assert score.error >= 0

    def test_score_profile_int_includes_reduction(self):
        score = score_profile(get_profile("compress"), trace_length=15_000)
        assert score.taken_reduction is not None
        assert score.taken_reduction > 0

    def test_sweep_orders_by_error(self):
        profile = dataclasses.replace(get_profile("ora"))
        scores = sweep_seeds(profile, candidates=3, trace_length=8_000)
        errors = [score.error for score in scores]
        assert errors == sorted(errors)
        assert len({score.seed for score in scores}) == 3

    def test_shipped_seed_is_competitive(self):
        """The baked-in seed should score no worse than a small random
        sample of alternatives (it was chosen from a larger sweep)."""
        profile = get_profile("sc")
        shipped = score_profile(profile, trace_length=20_000)
        rivals = [
            score_profile(
                dataclasses.replace(profile, seed=profile.seed + 17 * k),
                trace_length=20_000,
            )
            for k in (1, 2)
        ]
        assert shipped.error <= 2.5 * min(r.error for r in rivals)
