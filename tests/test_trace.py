"""Tests for distributed tracing: spans, propagation, the flight
recorder, spill files, Chrome export, and the timeline renderer.

The cost-discipline tests pin the two properties the tracing layer
promises: with ``REPRO_TRACE=0`` every span call returns the shared
:data:`~repro.telemetry.trace.NULL_SPAN` singleton and the module
allocates nothing on the hot path; with it on, traced results stay
bit-identical to untraced ones (the knob is cache-exempt).
"""

import json
import os
import tracemalloc

import pytest

from repro.machines.presets import get_machine
from repro.sim.batch import run_batch, suite_jobs
from repro.sim.simulator import Simulator
from repro.telemetry import timeline
from repro.telemetry import trace as tracing
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace


@pytest.fixture(autouse=True)
def _trace_slate(monkeypatch, tmp_path):
    """Each test starts untraced with an empty recorder and no spill
    directory; the memo is re-read on the way in and out."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    tracing.reload()
    tracing.recorder.clear()
    yield
    tracing.recorder.clear()
    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_TRACE_DIR", None)
    tracing.reload()


def enable(monkeypatch, directory=None):
    monkeypatch.setenv("REPRO_TRACE", "1")
    if directory is not None:
        monkeypatch.setenv("REPRO_TRACE_DIR", str(directory))
    tracing.reload()


def sim_once(scheme="sequential", length=2_000):
    workload = load_workload("ora")
    trace = generate_trace(workload.program, workload.behavior, length, seed=0)
    sim = Simulator(get_machine("PI4"), trace, scheme, warmup=400)
    return sim.run()


# -- trace-context propagation ------------------------------------------------


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = tracing.TraceContext("ab" * 16, "cd" * 8)
        parsed = tracing.parse_traceparent(ctx.traceparent())
        assert parsed == ctx
        assert ctx.traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "00-short-id-01",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "00-" + "a" * 32 + "-" + "b" * 16,  # 3 parts
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # wrong length
            42,
        ],
    )
    def test_malformed_traceparent_is_none(self, bad):
        assert tracing.parse_traceparent(bad) is None

    def test_ambient_context_nests_and_restores(self, monkeypatch):
        enable(monkeypatch)
        assert tracing.current_context() is None
        with tracing.span("outer") as outer:
            assert tracing.current_context() == outer.context()
            with tracing.span("inner") as inner:
                assert inner.span.trace_id == outer.span.trace_id
                assert inner.span.parent_id == outer.span.span_id
            assert tracing.current_context() == outer.context()
        assert tracing.current_context() is None

    def test_explicit_parent_joins_remote_trace(self, monkeypatch):
        enable(monkeypatch)
        remote = tracing.TraceContext("12" * 16, "34" * 8)
        with tracing.span("child", parent=remote) as sp:
            assert sp.span.trace_id == remote.trace_id
            assert sp.span.parent_id == remote.span_id
        with tracing.span("root", parent=None) as sp:
            assert sp.span.parent_id is None

    def test_exception_marks_span_error(self, monkeypatch):
        enable(monkeypatch)
        with pytest.raises(ValueError):
            with tracing.span("boom"):
                raise ValueError("nope")
        (span,) = tracing.recorder.spans()
        assert span.status == "error"
        assert "ValueError: nope" in span.error

    def test_record_span_synthesizes_finished_interval(self, monkeypatch):
        enable(monkeypatch)
        parent = tracing.TraceContext("ab" * 16, "cd" * 8)
        tracing.record_span("pool.queue_wait", parent, 10.0, 10.25, index=3)
        (span,) = tracing.recorder.spans()
        assert span.name == "pool.queue_wait"
        assert span.parent_id == parent.span_id
        assert span.duration == pytest.approx(0.25)
        assert span.attributes == {"index": 3}


# -- disabled path ------------------------------------------------------------


class TestDisabledPath:
    def test_span_is_the_shared_null_singleton(self):
        assert tracing.span("anything") is tracing.NULL_SPAN
        assert tracing.start_span("x", parent=None) is tracing.NULL_SPAN
        assert tracing.current_traceparent() is None
        assert tracing.drain_spans() == []
        with tracing.span("ctx") as sp:
            assert sp is tracing.NULL_SPAN
            assert sp.set(a=1) is tracing.NULL_SPAN
        assert tracing.recorder.spans() == []

    def test_disabled_hot_path_allocates_nothing_in_trace_module(self):
        # Warm every code path once so memos and caches are populated.
        with tracing.span("warm", probe=1):
            tracing.current_traceparent()
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(200):
                with tracing.span("hot", index=0):
                    tracing.current_traceparent()
                tracing.drain_spans()
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        ours = [
            tracemalloc.Filter(True, tracing.__file__),
        ]
        growth = [
            stat
            for stat in after.filter_traces(ours).compare_to(
                before.filter_traces(ours), "lineno"
            )
            if stat.size_diff > 0
        ]
        assert not growth, [str(stat) for stat in growth]

    def test_traced_results_are_bit_identical(self, monkeypatch):
        baseline = sim_once()
        enable(monkeypatch)
        assert sim_once() == baseline


# -- flight recorder and spill ------------------------------------------------


class TestFlightRecorder:
    def test_ring_buffer_is_bounded(self, monkeypatch):
        enable(monkeypatch)
        recorder = tracing.FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record(
                tracing._make_span(f"s{index}", None, {})
            )
        assert recorder.recorded == 10
        assert [s.name for s in recorder.spans()] == ["s6", "s7", "s8", "s9"]

    def test_drain_and_absorb_round_trip(self, monkeypatch):
        enable(monkeypatch)
        with tracing.span("worker.op", index=7):
            pass
        shipped = tracing.drain_spans()
        assert tracing.recorder.spans() == []
        parent = tracing.FlightRecorder()
        parent.absorb(shipped)
        assert parent.absorbed == 1
        (span,) = parent.spans()
        assert (span.name, span.attributes) == ("worker.op", {"index": 7})

    def test_find_by_exact_id_and_prefix(self, monkeypatch):
        enable(monkeypatch)
        with tracing.span("a", parent=None) as first:
            pass
        with tracing.span("b", parent=None):
            pass
        trace_id = first.span.trace_id
        assert [s.name for s in tracing.recorder.find(trace_id)] == ["a"]
        assert [s.name for s in tracing.recorder.find(trace_id[:8])] == ["a"]

    def test_spans_spill_to_disk_per_process(self, monkeypatch, tmp_path):
        enable(monkeypatch, directory=tmp_path / "spans")
        with tracing.span("spilled", index=1):
            pass
        path = tracing.spill_path()
        assert path is not None and path.exists()
        assert path.name == f"spans-{os.getpid()}.jsonl"
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "spilled"
        # The spill survives a recorder wipe: it is the crash-safe copy.
        tracing.recorder.clear()
        assert path.exists() and path.read_text()

    def test_dump_writes_buffered_spans(self, monkeypatch, tmp_path):
        enable(monkeypatch)
        with tracing.span("kept"):
            pass
        target = tracing.recorder.dump(tmp_path / "dump" / "flight.jsonl")
        (record,) = [json.loads(line) for line in target.read_text().splitlines()]
        assert record["name"] == "kept"


# -- simulator integration ----------------------------------------------------


class TestSimulatorSpans:
    def test_batch_span_tree_is_conserved(self, monkeypatch):
        enable(monkeypatch)
        jobs = suite_jobs(
            ("ora",),
            ("PI4",),
            ("sequential", "collapsing_buffer"),
            length=2_000,
            warmup=400,
        )
        run_batch(jobs, processes=1)
        spans = tracing.recorder.spans()
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id not in by_id]
        assert [s.name for s in roots] == ["batch.run"]
        (root,) = roots
        assert all(s.trace_id == root.trace_id for s in spans)
        children = [s for s in spans if s.parent_id == root.span_id]
        assert [s.name for s in children] == ["batch.job", "batch.job"]
        # Serial children run back to back: their durations sum to no
        # more than the root's, and each nests inside its parent.
        assert sum(s.duration for s in children) <= root.duration + 0.05
        for span in spans:
            parent = by_id.get(span.parent_id)
            if parent is not None:
                assert span.start >= parent.start - 1e-3
                assert span.duration <= parent.duration + 0.05

    def test_kernel_mode_record_then_replay(self, monkeypatch):
        enable(monkeypatch)
        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 2_000, seed=0)
        machine = get_machine("PI4")
        first = Simulator(machine, trace, "sequential", warmup=400).run()
        second = Simulator(machine, trace, "sequential", warmup=400).run()
        assert first == second
        modes = [
            s.attributes.get("kernel.mode")
            for s in tracing.recorder.spans()
            if s.name == "sim.kernel"
        ]
        assert modes == ["record", "replay"]

    def test_cache_span_outcomes(self, monkeypatch):
        from repro.sim import cache

        enable(monkeypatch)
        key = ("trace-span-outcomes", 1)
        assert cache.get_or_compute("test_kind", key, lambda: 41) == 41
        assert cache.get_or_compute("test_kind", key, lambda: 42) == 41
        outcomes = [
            s.attributes.get("outcome")
            for s in tracing.recorder.spans()
            if s.name == "sim.cache"
        ]
        assert outcomes == ["computed", "hit"]
        kinds = {
            s.attributes.get("kind")
            for s in tracing.recorder.spans()
            if s.name == "sim.cache"
        }
        assert kinds == {"test_kind"}


# -- Chrome export ------------------------------------------------------------


class TestChromeExport:
    def test_real_spans_export_valid_chrome_document(self, monkeypatch):
        enable(monkeypatch)
        with tracing.span("outer", label="x"):
            with tracing.span("inner"):
                pass
        document = tracing.to_chrome(tracing.recorder.spans())
        assert tracing.validate_chrome(document) == []
        inner, outer = sorted(
            document["traceEvents"], key=lambda e: e["name"]
        )
        assert outer["ph"] == "X" and outer["args"]["label"] == "x"
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["ts"] <= inner["ts"]

    def test_validator_rejects_malformed_documents(self):
        assert tracing.validate_chrome([]) == ["document is not a JSON object"]
        assert tracing.validate_chrome({}) == ["missing traceEvents array"]
        problems = tracing.validate_chrome(
            {"traceEvents": [{"name": 3, "ph": "X", "ts": "late", "pid": 1, "tid": 1}]}
        )
        assert any("name" in p for p in problems)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)


# -- timeline (repro trace) ---------------------------------------------------


def make_span(name, trace_id, span_id, parent_id, start, duration, **attrs):
    return tracing.Span(
        name=name,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start=start,
        duration=duration,
        attributes=attrs,
        process="main",
        pid=1,
    )


class TestTimeline:
    def synthetic(self):
        t1, t2 = "a" * 32, "b" * 32
        return [
            make_span("root", t1, "r1", None, 100.0, 1.0),
            make_span("child", t1, "c1", "r1", 100.1, 0.6, index=0),
            make_span("leaf", t1, "l1", "c1", 100.2, 0.4),
            make_span("other", t2, "r2", None, 200.0, 0.5),
        ]

    def test_load_dir_skips_garbage_lines(self, tmp_path):
        good = self.synthetic()[0].as_dict()
        path = tmp_path / "spans-1.jsonl"
        path.write_text(
            json.dumps(good) + "\n" + "{torn...\n" + '{"no": "trace id"}\n'
        )
        (tmp_path / "notes.txt").write_text("ignored\n")
        spans = timeline.load_dir(tmp_path)
        assert [s.name for s in spans] == ["root"]

    def test_find_trace_prefix_rules(self):
        spans = self.synthetic()
        assert len(timeline.find_trace(spans, "a" * 32)) == 3
        assert len(timeline.find_trace(spans, "bbbb")) == 1
        with pytest.raises(ValueError):
            timeline.find_trace(spans, "zzzz")

    def test_summaries_and_listing(self):
        spans = self.synthetic()
        newest, oldest = timeline.trace_summaries(spans)
        assert newest["root"] == "other" and oldest["root"] == "root"
        assert oldest["spans"] == 3
        listing = timeline.render_listing(spans)
        assert "root span" in listing and "other" in listing

    def test_render_tree_shows_nesting_and_attributes(self):
        tree = timeline.render_tree(timeline.find_trace(self.synthetic(), "a" * 32))
        lines = tree.splitlines()
        assert lines[0].startswith("trace ")
        assert "  - root" in lines[1]
        assert "    - child" in lines[2] and "index=0" in lines[2]
        assert "      - leaf" in lines[3]

    def test_critical_path_self_time(self):
        rows = timeline.critical_path(self.synthetic(), top=10)
        by_name = {row["name"]: row for row in rows}
        # root: 1.0s total minus the 0.6s child interval = 0.4s self.
        assert by_name["root"]["self"] == pytest.approx(0.4, abs=1e-6)
        assert by_name["child"]["self"] == pytest.approx(0.2, abs=1e-6)
        assert by_name["leaf"]["self"] == pytest.approx(0.4, abs=1e-6)
        table = timeline.render_critical_path(self.synthetic())
        assert "self time" in table
