"""Tests for workload profiles, generation, behaviour, and traces."""

import random

import pytest

from repro.workloads import (
    ALL_BENCHMARKS,
    BehaviorModel,
    BranchBehavior,
    FP_BENCHMARKS,
    INTEGER_BENCHMARKS,
    WorkloadProfile,
    generate_trace,
    generate_workload,
    get_profile,
    load_workload,
)
from repro.workloads.profiles import FP_CLASS, INT_CLASS


class TestProfiles:
    def test_suite_composition(self):
        # The paper: six SPECint92 + bison/flex/mpeg_play, six SPECfp92.
        assert len(INTEGER_BENCHMARKS) == 9
        assert len(FP_BENCHMARKS) == 6
        assert "compress" in INTEGER_BENCHMARKS
        assert "tomcatv" in FP_BENCHMARKS

    def test_get_profile(self):
        assert get_profile("gcc").workload_class == INT_CLASS
        assert get_profile("nasa7").workload_class == FP_CLASS
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("dhrystone")

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="bad workload class"):
            WorkloadProfile(
                name="x", workload_class="vector", seed=1, static_size=100,
                num_functions=2, w_straight=1, w_if_then=0, w_if_then_else=0,
                w_loop=0, w_call=0, straight_block_size=(1, 2),
                hammock_size=(1, 2), else_size=(1, 2),
                loop_body_budget=(4, 8), max_loop_depth=1,
                loop_continue_prob=(0.5, 0.6), hammock_taken_prob=(0.5, 0.6),
                if_else_taken_prob=(0.5, 0.6), weakly_biased_fraction=0.1,
                fp_fraction=0.0, load_fraction=0.2, store_fraction=0.1,
                dep_window=4,
            )


class TestGeneration:
    def test_deterministic(self):
        a = generate_workload(get_profile("compress"))
        b = generate_workload(get_profile("compress"))
        assert a.program.num_instructions == b.program.num_instructions
        assert [i.op for i in a.program.instructions] == [
            i.op for i in b.program.instructions
        ]

    def test_static_size_near_target(self):
        for name in ("compress", "tomcatv"):
            workload = load_workload(name)
            target = workload.profile.static_size
            assert 0.5 * target <= workload.program.num_instructions <= 2.5 * target

    def test_every_benchmark_generates_and_validates(self):
        for name in ALL_BENCHMARKS:
            workload = load_workload(name)
            workload.program.cfg.validate()
            # Every conditional branch has behaviour.
            for block in workload.program.cfg.conditional_blocks():
                assert block.branch_key in workload.behavior.branches

    def test_class_character(self):
        """Integer code is branchier; FP code has more FP operations."""
        compress = load_workload("compress")
        nasa7 = load_workload("nasa7")
        tr_int = generate_trace(compress.program, compress.behavior, 20000)
        tr_fp = generate_trace(nasa7.program, nasa7.behavior, 20000)
        int_branchiness = tr_int.control_count() / len(tr_int)
        fp_branchiness = tr_fp.control_count() / len(tr_fp)
        assert int_branchiness > 2 * fp_branchiness


class TestBehavior:
    def test_stationary_probability(self):
        rng = random.Random(42)
        for burst in (0.0, 0.5, 0.9):
            behavior = BranchBehavior(probability=0.7, burstiness=burst)
            taken = sum(behavior.decide(rng) for _ in range(20000))
            assert taken / 20000 == pytest.approx(0.7, abs=0.03)

    def test_burstiness_reduces_changes(self):
        rng = random.Random(1)

        def change_rate(burst):
            behavior = BranchBehavior(probability=0.6, burstiness=burst)
            outcomes = [behavior.decide(rng) for _ in range(20000)]
            return sum(
                a != b for a, b in zip(outcomes, outcomes[1:])
            ) / len(outcomes)

        assert change_rate(0.9) < change_rate(0.0) / 3

    def test_reset_restores_determinism(self):
        behavior = BranchBehavior(probability=0.5, burstiness=0.8)
        rng = random.Random(3)
        first = [behavior.decide(rng) for _ in range(50)]
        behavior.reset()
        rng = random.Random(3)
        second = [behavior.decide(rng) for _ in range(50)]
        assert first == second

    def test_model_flip_handling(self):
        from repro.program import BasicBlock

        model = BehaviorModel.from_probabilities({7: 1.0})
        block = BasicBlock(branch_key=7, taken_id=1, fall_id=2)
        rng = random.Random(0)
        assert model.decide_successor(block, rng) == 1
        block.flipped = True
        model.reset()
        assert model.decide_successor(block, rng) == 2

    def test_missing_behaviour_raises(self):
        from repro.program import BasicBlock

        model = BehaviorModel()
        block = BasicBlock(branch_key=9)
        with pytest.raises(KeyError):
            model.decide_successor(block, random.Random(0))


class TestTraces:
    def test_trace_determinism(self):
        workload = load_workload("li")
        a = generate_trace(workload.program, workload.behavior, 5000, seed=4)
        b = generate_trace(workload.program, workload.behavior, 5000, seed=4)
        assert [i.address for i in a.instructions] == [
            i.address for i in b.instructions
        ]

    def test_different_seeds_differ(self):
        workload = load_workload("li")
        a = generate_trace(workload.program, workload.behavior, 5000, seed=1)
        b = generate_trace(workload.program, workload.behavior, 5000, seed=2)
        assert [i.address for i in a.instructions] != [
            i.address for i in b.instructions
        ]

    def test_exact_length(self):
        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 1234)
        assert len(trace) == 1234

    def test_control_flow_consistency(self):
        """Every non-control instruction is followed by address+1; control
        transfers land on their target or fall through."""
        workload = load_workload("espresso")
        trace = generate_trace(workload.program, workload.behavior, 8000)
        for i, instr in enumerate(trace.instructions[:-1]):
            nxt = trace.next_address(i)
            if not instr.is_control:
                assert nxt == instr.address + 1
            elif instr.is_conditional_branch:
                assert nxt in (instr.address + 1, instr.target)
            elif instr.op.name in ("JUMP", "CALL"):
                assert nxt == instr.target

    def test_restart_on_halt(self):
        workload = load_workload("ora")
        trace = generate_trace(
            workload.program, workload.behavior, 50000, restart_on_halt=True
        )
        assert len(trace) == 50000

    def test_rejects_bad_budget(self):
        workload = load_workload("ora")
        with pytest.raises(ValueError):
            generate_trace(workload.program, workload.behavior, 0)

    def test_taken_branch_count_consistency(self):
        workload = load_workload("flex")
        trace = generate_trace(workload.program, workload.behavior, 6000)
        taken = sum(
            1
            for i, instr in enumerate(trace.instructions)
            if instr.is_control and trace.is_taken(i)
        )
        assert trace.taken_branch_count() == taken
