"""Bit-for-bit equivalence of the optimized and reference cycle loops.

``Simulator.run()`` is the event-skipping fast loop;
``Simulator.run_reference()`` is the retained naive loop that spins every
cycle.  Every reported statistic — including the warmup snapshot counters
— must be identical, or the fast loop has broken an invariant (see
``docs/performance.md``).
"""

import dataclasses

import pytest

from repro.machines.presets import get_machine
from repro.sim.simulator import Simulator
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace

LENGTH = 4_000
WARMUP = 800

BENCHMARKS = ("espresso", "li")
MACHINES = ("PI4", "PI12")
SCHEMES = ("sequential", "collapsing_buffer")


def _trace(benchmark: str):
    workload = load_workload(benchmark)
    return generate_trace(
        workload.program, workload.behavior, LENGTH, seed=0
    )


def _assert_identical(machine, trace, scheme, **kwargs):
    fast_sim = Simulator(machine, trace, scheme, **kwargs)
    fast = fast_sim.run()
    ref_sim = Simulator(machine, trace, scheme, **kwargs)
    ref = ref_sim.run_reference()
    for field in dataclasses.fields(type(fast)):
        if field.name == "extra":
            # Auxiliary payload (telemetry attribution, ad-hoc notes) —
            # not a counted statistic, so not part of the bit-identity
            # contract.  test_telemetry.py asserts it stays empty when
            # telemetry is off.
            continue
        assert getattr(fast, field.name) == getattr(ref, field.name), (
            f"{field.name} diverged for {machine.name}/{scheme}"
        )
    # The warmup snapshot must also land on the same cycle with the same
    # counter values (the skip path replays it explicitly).
    assert fast_sim._snapshot == ref_sim._snapshot


# Parametrized as "bench" because pytest-benchmark claims the name
# "benchmark" as a fixture.
@pytest.mark.parametrize("bench", BENCHMARKS)
@pytest.mark.parametrize("machine_name", MACHINES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fast_loop_matches_reference(bench, machine_name, scheme):
    _assert_identical(
        get_machine(machine_name),
        _trace(bench),
        scheme,
        warmup=WARMUP,
    )


def test_equivalent_without_warmup():
    _assert_identical(
        get_machine("PI8"), _trace("espresso"), "interleaved_sequential"
    )


def test_equivalent_with_recovery_at_retire():
    machine = dataclasses.replace(
        get_machine("PI4"), recovery_at_retire=True
    )
    _assert_identical(machine, _trace("li"), "sequential", warmup=WARMUP)


def test_equivalent_with_conservative_memory_ordering():
    machine = dataclasses.replace(
        get_machine("PI4"), memory_ordering="conservative"
    )
    _assert_identical(
        machine, _trace("espresso"), "collapsing_buffer", warmup=WARMUP
    )


def test_equivalent_with_wrong_path_fetch():
    _assert_identical(
        get_machine("PI4"),
        _trace("li"),
        "banked_sequential",
        warmup=WARMUP,
        wrong_path_fetch=True,
    )


def test_equivalent_with_shifter_penalty():
    machine = get_machine("PI12").with_fetch_penalty(3)
    _assert_identical(
        machine, _trace("espresso"), "collapsing_buffer", warmup=WARMUP
    )
