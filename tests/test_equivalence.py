"""Bit-for-bit equivalence of the execution paths.

``Simulator.run()`` prefers the compiled kernel (``repro.sim.kernel``)
and falls back to the event-skipping interpreted loop;
``Simulator.run_reference()`` is the retained naive loop that spins
every cycle.  Every reported statistic — including the warmup snapshot
counters — must be identical across all three, or an optimization has
broken an invariant (see ``docs/performance.md``).

The kernel matrix below covers every vetted scheme on every machine
preset plus the synthetic micro workloads; the fallback tests prove the
kernel declines ineligible configurations *silently* — same statistics,
interpreted loop, decline reason recorded.
"""

import dataclasses

import pytest

from repro.machines.presets import get_machine
from repro.sim import kernel as sim_kernel
from repro.sim.simulator import Simulator
from repro.workloads.micro import MICRO_WORKLOADS
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace

LENGTH = 4_000
WARMUP = 800

BENCHMARKS = ("espresso", "li")
MACHINES = ("PI4", "PI12")
SCHEMES = ("sequential", "collapsing_buffer")

#: Every scheme the kernel vets (matching ``kernel._SUPPORTED_SCHEMES``)
#: and every machine preset — the golden kernel matrix.
KERNEL_SCHEMES = (
    "sequential",
    "interleaved_sequential",
    "banked_sequential",
    "collapsing_buffer",
    "perfect",
)
KERNEL_MACHINES = ("PI4", "PI8", "PI12")


def _trace(benchmark: str):
    workload = load_workload(benchmark)
    return generate_trace(
        workload.program, workload.behavior, LENGTH, seed=0
    )


def _micro_trace(name: str):
    workload = MICRO_WORKLOADS[name]()
    return generate_trace(
        workload.program, workload.behavior, 1_500, seed=0
    )


def _assert_stats_equal(a, b, context):
    for field in dataclasses.fields(type(a)):
        if field.name == "extra":
            # Auxiliary payload (telemetry attribution, ad-hoc notes) —
            # not a counted statistic, so not part of the bit-identity
            # contract.  test_telemetry.py asserts it stays empty when
            # telemetry is off.
            continue
        assert getattr(a, field.name) == getattr(b, field.name), (
            f"{field.name} diverged for {context}"
        )


def _assert_identical(machine, trace, scheme, expect_kernel=None, **kwargs):
    """run() (kernel when eligible), run(kernel=False) and
    run_reference() must agree on every counter and the warmup snapshot.
    """
    context = f"{machine.name}/{scheme}"
    fast_sim = Simulator(machine, trace, scheme, **kwargs)
    fast = fast_sim.run()
    if expect_kernel is not None:
        assert fast_sim.kernel_used == expect_kernel, (
            f"kernel_used={fast_sim.kernel_used} "
            f"(decline: {fast_sim.kernel_decline_reason}) for {context}"
        )
    interp_sim = Simulator(machine, trace, scheme, kernel=False, **kwargs)
    interp = interp_sim.run()
    assert not interp_sim.kernel_used
    ref_sim = Simulator(machine, trace, scheme, **kwargs)
    ref = ref_sim.run_reference()
    _assert_stats_equal(fast, ref, context)
    _assert_stats_equal(interp, ref, context + " (interpreted)")
    # The warmup snapshot must also land on the same cycle with the same
    # counter values (the skip path replays it explicitly).
    assert fast_sim._snapshot == ref_sim._snapshot
    assert interp_sim._snapshot == ref_sim._snapshot


# Parametrized as "bench" because pytest-benchmark claims the name
# "benchmark" as a fixture.
@pytest.mark.parametrize("bench", BENCHMARKS)
@pytest.mark.parametrize("machine_name", MACHINES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fast_loop_matches_reference(bench, machine_name, scheme):
    _assert_identical(
        get_machine(machine_name),
        _trace(bench),
        scheme,
        warmup=WARMUP,
        expect_kernel=True,
    )


@pytest.mark.parametrize("bench", BENCHMARKS)
@pytest.mark.parametrize("machine_name", KERNEL_MACHINES)
@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_golden_matrix(bench, machine_name, scheme):
    """Kernel vs interpreted vs reference across every vetted scheme on
    every machine preset."""
    _assert_identical(
        get_machine(machine_name),
        _trace(bench),
        scheme,
        warmup=WARMUP,
        expect_kernel=True,
    )


@pytest.mark.parametrize("micro", sorted(MICRO_WORKLOADS))
@pytest.mark.parametrize("scheme", ("sequential", "collapsing_buffer"))
def test_kernel_micro_workloads(micro, scheme):
    _assert_identical(
        get_machine("PI8"),
        _micro_trace(micro),
        scheme,
        warmup=200,
        expect_kernel=True,
    )


def test_kernel_tape_replay_identical():
    """The second compiled run on a trace replays the fetch-outcome tape
    (no predictor objects touched) and must reproduce the first run —
    and the reference — exactly."""
    machine = get_machine("PI8")
    trace = _trace("espresso")
    before = dict(sim_kernel.stats)
    first_sim = Simulator(
        machine, trace, "interleaved_sequential", warmup=WARMUP
    )
    first = first_sim.run()
    assert first_sim.kernel_used
    second_sim = Simulator(
        machine, trace, "interleaved_sequential", warmup=WARMUP
    )
    second = second_sim.run()
    assert second_sim.kernel_used
    assert sim_kernel.stats["tapes_recorded"] > before["tapes_recorded"]
    assert sim_kernel.stats["tape_replays"] > before["tape_replays"]
    _assert_stats_equal(second, first, "tape replay")
    ref = Simulator(
        machine, trace, "interleaved_sequential", warmup=WARMUP
    ).run_reference()
    _assert_stats_equal(second, ref, "tape replay vs reference")


def test_equivalent_without_warmup():
    _assert_identical(
        get_machine("PI8"),
        _trace("espresso"),
        "interleaved_sequential",
        expect_kernel=True,
    )


def test_equivalent_with_recovery_at_retire():
    machine = dataclasses.replace(
        get_machine("PI4"), recovery_at_retire=True
    )
    _assert_identical(
        machine, _trace("li"), "sequential", warmup=WARMUP,
        expect_kernel=True,
    )


def test_equivalent_with_conservative_memory_ordering():
    machine = dataclasses.replace(
        get_machine("PI4"), memory_ordering="conservative"
    )
    _assert_identical(
        machine, _trace("espresso"), "collapsing_buffer", warmup=WARMUP,
        expect_kernel=True,
    )


def test_equivalent_with_wrong_path_fetch():
    _assert_identical(
        get_machine("PI4"),
        _trace("li"),
        "banked_sequential",
        warmup=WARMUP,
        wrong_path_fetch=True,
        expect_kernel=False,  # the kernel declines wrong-path fetch
    )


def test_equivalent_with_shifter_penalty():
    machine = get_machine("PI12").with_fetch_penalty(3)
    _assert_identical(
        machine, _trace("espresso"), "collapsing_buffer", warmup=WARMUP,
        expect_kernel=True,
    )


# -- kernel fallback paths ----------------------------------------------------


def _reference_stats(machine, trace, scheme, **kwargs):
    sim = Simulator(machine, trace, scheme, **kwargs)
    return sim.run_reference(), sim


def test_sanitize_falls_back_to_interpreted_loop():
    """A sanitized run silently uses the interpreted loop — decline
    recorded, statistics bit-identical to the plain reference."""
    machine = get_machine("PI4")
    trace = _trace("espresso")
    sim = Simulator(
        machine, trace, "collapsing_buffer", warmup=WARMUP, sanitize=True
    )
    stats = sim.run()
    assert not sim.kernel_used
    assert sim.kernel_decline_reason == "sanitize"
    ref, _ = _reference_stats(
        machine, trace, "collapsing_buffer", warmup=WARMUP
    )
    _assert_stats_equal(stats, ref, "sanitize fallback")


def test_telemetry_falls_back_to_interpreted_loop():
    """A telemetry run declines the kernel; counted statistics stay
    identical (``extra`` carries the attribution payload)."""
    machine = get_machine("PI4")
    trace = _trace("espresso")
    sim = Simulator(
        machine, trace, "collapsing_buffer", warmup=WARMUP, telemetry=True
    )
    stats = sim.run()
    assert not sim.kernel_used
    assert sim.kernel_decline_reason == "telemetry"
    assert stats.extra  # attribution recorded
    ref, _ = _reference_stats(
        machine, trace, "collapsing_buffer", warmup=WARMUP
    )
    _assert_stats_equal(stats, ref, "telemetry fallback")


def test_kernel_flag_false_forces_interpreted_loop():
    machine = get_machine("PI4")
    trace = _trace("li")
    sim = Simulator(machine, trace, "sequential", warmup=WARMUP, kernel=False)
    stats = sim.run()
    assert not sim.kernel_used
    assert sim.kernel_decline_reason == "disabled"
    ref, _ = _reference_stats(machine, trace, "sequential", warmup=WARMUP)
    _assert_stats_equal(stats, ref, "kernel=False")


def test_env_knob_disables_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "0")
    machine = get_machine("PI4")
    trace = _trace("li")
    sim = Simulator(machine, trace, "sequential", warmup=WARMUP)
    stats = sim.run()
    assert not sim.kernel_used
    assert sim.kernel_decline_reason == "disabled"
    ref, _ = _reference_stats(machine, trace, "sequential", warmup=WARMUP)
    _assert_stats_equal(stats, ref, "REPRO_KERNEL=0")


def test_unvetted_scheme_declines():
    """Schemes outside the vetted set decline with a scheme: reason and
    still produce reference-identical statistics."""
    from repro.fetch.factory import ALL_SCHEMES

    unvetted = [
        s
        for s in ALL_SCHEMES
        if s
        not in (
            "sequential",
            "interleaved_sequential",
            "banked_sequential",
            "collapsing_buffer",
            "perfect",
        )
    ]
    if not unvetted:
        pytest.skip("every scheme is kernel-vetted")
    machine = get_machine("PI8")
    trace = _trace("espresso")
    scheme = unvetted[0]
    sim = Simulator(machine, trace, scheme, warmup=WARMUP)
    stats = sim.run()
    assert not sim.kernel_used
    assert sim.kernel_decline_reason.startswith("scheme:")
    ref, _ = _reference_stats(machine, trace, scheme, warmup=WARMUP)
    _assert_stats_equal(stats, ref, f"unvetted scheme {scheme}")
