"""Unit tests for the fetch/alignment schemes on hand-built scenarios.

All scenarios use a PI4-like machine: 4-wide issue, 16-byte blocks
(4 instructions per block, so block boundaries fall at multiples of 4).
"""

import pytest

from repro.fetch import (
    BankedSequentialFetch,
    CollapsingBufferFetch,
    InterleavedSequentialFetch,
    PerfectFetch,
    SequentialFetch,
    create_fetch_unit,
)
from repro.isa import Instruction, OpClass
from repro.machines import PI4
from repro.workloads.trace import DynamicTrace


def make_trace(*addresses_and_ops) -> DynamicTrace:
    """Build a dynamic trace from (address, op[, target]) tuples."""
    instructions = []
    for spec in addresses_and_ops:
        address, op = spec[0], spec[1]
        target = spec[2] if len(spec) > 2 else -1
        instructions.append(Instruction(op, address=address, target=target))
    return DynamicTrace(name="test", seed=0, instructions=instructions)


def sequential_path(start, count, op=OpClass.IALU):
    return [(start + i, op) for i in range(count)]


def warm_taken(unit, address, target, times=2, unconditional=False):
    """Train the BTB so the branch at *address* predicts taken->*target*."""
    instr = Instruction(
        OpClass.JUMP if unconditional else OpClass.BR_COND,
        address=address,
        target=target,
    )
    for _ in range(times):
        unit.train(instr, True, target)


def prewarm(unit, blocks=None):
    for block in range(64) if blocks is None else blocks:
        unit.cache.fill(block)


def delivered_addresses(result):
    return [i.address for i in result.instructions]


class TestSequential:
    def test_full_block_from_offset_zero(self):
        trace = make_trace(*sequential_path(0, 8))
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0, 1, 2, 3]
        assert not result.mispredict

    def test_partial_block_from_offset(self):
        trace = make_trace(*sequential_path(2, 8))
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 4)
        # Offset 2 within the block: only 2 instructions before the
        # boundary; sequential cannot cross it.
        assert delivered_addresses(result) == [2, 3]

    def test_stops_after_predicted_taken_branch(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 9),
            (9, OpClass.IALU),
            (10, OpClass.IALU),
        )
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 1, 9)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0, 1]
        assert not result.mispredict
        # Next cycle resumes at the target.
        result = unit.fetch_cycle(2, 4)
        assert delivered_addresses(result) == [9, 10]

    def test_btb_miss_on_taken_branch_is_mispredict(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 9),
            (9, OpClass.IALU),
        )
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 4)
        # Fell through past the branch; divergence right after it.
        assert delivered_addresses(result) == [0, 1]
        assert result.mispredict

    def test_predicted_taken_but_not_taken_is_mispredict(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 9),
            (2, OpClass.IALU),  # actually falls through
        )
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 1, 9)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0, 1]
        assert result.mispredict

    def test_cache_miss_stalls(self):
        trace = make_trace(*sequential_path(0, 4))
        unit = SequentialFetch(PI4, trace)
        result = unit.fetch_cycle(0, 4)
        assert result.instructions == []
        assert result.stall_cycles == PI4.icache_miss_latency
        # The block was filled; the retry hits.
        assert unit.fetch_cycle(0, 4).delivered == 4

    def test_limit_truncates(self):
        trace = make_trace(*sequential_path(0, 4))
        unit = SequentialFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 2)
        assert delivered_addresses(result) == [0, 1]
        assert not result.mispredict


class TestInterleavedSequential:
    def test_crosses_block_boundary(self):
        trace = make_trace(*sequential_path(2, 8))
        unit = InterleavedSequentialFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 4)
        # From offset 2, the run spans into the prefetched next block.
        assert delivered_addresses(result) == [2, 3, 4, 5]

    def test_stops_at_predicted_taken_even_across_blocks(self):
        trace = make_trace(
            (2, OpClass.IALU),
            (3, OpClass.IALU),
            (4, OpClass.BR_COND, 20),
            (20, OpClass.IALU),
        )
        unit = InterleavedSequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 4, 20)
        result = unit.fetch_cycle(0, 4)
        # Delivers up to and including the branch; cannot realign to 20.
        assert delivered_addresses(result) == [2, 3, 4]
        assert not result.mispredict

    def test_prefetch_miss_truncates_without_stall(self):
        trace = make_trace(*sequential_path(2, 8))
        unit = InterleavedSequentialFetch(PI4, trace)
        unit.cache.fill(0)  # fetch block present, next block absent
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [2, 3]
        assert result.stall_cycles == 0
        # The prefetch filled block 1: the next fetch hits it.
        assert unit.fetch_cycle(2, 4).delivered == 4


class TestBankedSequential:
    def test_crosses_inter_block_taken_branch(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 9),
            (9, OpClass.IALU),
            (10, OpClass.IALU),
        )
        unit = BankedSequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 1, 9)
        result = unit.fetch_cycle(0, 4)
        # Block 0 -> branch -> target in block 2... blocks 0 and 2 share
        # bank 0: conflict; only the first part is delivered.
        assert delivered_addresses(result) == [0, 1]

    def test_crosses_to_conflict_free_bank(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 5),
            (5, OpClass.IALU),
            (6, OpClass.IALU),
        )
        unit = BankedSequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 1, 5)
        result = unit.fetch_cycle(0, 4)
        # Target block 1 is in the other bank: full crossing.
        assert delivered_addresses(result) == [0, 1, 5, 6]

    def test_cannot_handle_intra_block_branch(self):
        trace = make_trace(
            (0, OpClass.BR_COND, 3),
            (3, OpClass.IALU),
            (4, OpClass.IALU),
        )
        unit = BankedSequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 0, 3)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0]
        assert not result.mispredict

    def test_sequential_continuation_like_interleaved(self):
        trace = make_trace(*sequential_path(2, 8))
        unit = BankedSequentialFetch(PI4, trace)
        prewarm(unit)
        assert delivered_addresses(unit.fetch_cycle(0, 4)) == [2, 3, 4, 5]

    def test_second_taken_branch_ends_group(self):
        trace = make_trace(
            (2, OpClass.IALU),
            (3, OpClass.BR_COND, 5),
            (5, OpClass.BR_COND, 30),
            (30, OpClass.IALU),
        )
        unit = BankedSequentialFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 3, 5)
        warm_taken(unit, 5, 30)
        result = unit.fetch_cycle(0, 4)
        # Crosses 3->5, then the second taken branch ends the group.
        assert delivered_addresses(result) == [2, 3, 5]
        assert not result.mispredict


class TestCollapsingBuffer:
    def test_collapses_forward_intra_block_branch(self):
        # The paper's Figure 7 example: 1, 2, 5, 8 with 4-word blocks
        # rescaled: branch at 1 -> 2? Use: block 0 holds 0..3.
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 3),
            (3, OpClass.IALU),
            (4, OpClass.IALU),
        )
        unit = CollapsingBufferFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 1, 3)
        result = unit.fetch_cycle(0, 4)
        # Gap at address 2 collapsed; continues into the next block.
        assert delivered_addresses(result) == [0, 1, 3, 4]

    def test_collapses_multiple_intra_block_branches(self):
        # Two hammocks inside one 8-word span would need k=8; use two
        # skips within block 0 (k=4): 0 -> skip 1 -> 2 -> skip 3? Only
        # forward gaps of >= 1: 0(br->2), 2(br->?); keep within block.
        trace = make_trace(
            (0, OpClass.BR_COND, 2),
            (2, OpClass.BR_COND, 3),  # degenerate skip of zero is taken->3
            (3, OpClass.IALU),
            (4, OpClass.IALU),
        )
        unit = CollapsingBufferFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 0, 2)
        warm_taken(unit, 2, 3)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0, 2, 3, 4]

    def test_does_not_collapse_backward_branch(self):
        trace = make_trace(
            (2, OpClass.BR_COND, 0),
            (0, OpClass.IALU),
            (1, OpClass.IALU),
        )
        unit = CollapsingBufferFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 2, 0)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [2]
        assert not result.mispredict

    def test_collapse_then_cross_then_collapse(self):
        trace = make_trace(
            (0, OpClass.BR_COND, 2),  # intra-block skip in block 0
            (2, OpClass.BR_COND, 5),  # inter-block to block 1
            (5, OpClass.BR_COND, 7),  # intra-block skip in block 1
            (7, OpClass.IALU),
        )
        unit = CollapsingBufferFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 0, 2)
        warm_taken(unit, 2, 5)
        warm_taken(unit, 5, 7)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [0, 2, 5, 7]

    def test_fine_banking_reduces_conflicts(self):
        # Block 0 -> block 2 would conflict under 2 banks but not under
        # the collapsing buffer's per-slot banking (4 banks at PI4).
        trace = make_trace(
            (1, OpClass.BR_COND, 9),
            (9, OpClass.IALU),
            (10, OpClass.IALU),
        )
        unit = CollapsingBufferFetch(PI4, trace)
        assert unit.cache.num_banks == PI4.words_per_block
        prewarm(unit)
        warm_taken(unit, 1, 9)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [1, 9, 10]


class TestPerfect:
    def test_ignores_alignment_entirely(self):
        trace = make_trace(
            (2, OpClass.BR_COND, 17),
            (17, OpClass.BR_COND, 33),
            (33, OpClass.IALU),
            (34, OpClass.IALU),
        )
        unit = PerfectFetch(PI4, trace)
        prewarm(unit)
        warm_taken(unit, 2, 17)
        warm_taken(unit, 17, 33)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [2, 17, 33, 34]
        assert not result.mispredict

    def test_still_mispredicts_via_btb(self):
        trace = make_trace(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND, 9),
            (9, OpClass.IALU),
        )
        unit = PerfectFetch(PI4, trace)
        prewarm(unit)
        result = unit.fetch_cycle(0, 4)  # cold BTB: falls through
        assert delivered_addresses(result) == [0, 1]
        assert result.mispredict

    def test_first_block_miss_stalls(self):
        trace = make_trace(*sequential_path(0, 4))
        unit = PerfectFetch(PI4, trace)
        result = unit.fetch_cycle(0, 4)
        assert result.stall_cycles == PI4.icache_miss_latency

    def test_later_block_miss_truncates(self):
        trace = make_trace(*sequential_path(2, 6))
        unit = PerfectFetch(PI4, trace)
        unit.cache.fill(0)
        result = unit.fetch_cycle(0, 4)
        assert delivered_addresses(result) == [2, 3]
        assert result.stall_cycles == 0


class TestFactory:
    def test_known_schemes(self):
        trace = make_trace(*sequential_path(0, 4))
        for name in (
            "sequential",
            "interleaved_sequential",
            "banked_sequential",
            "collapsing_buffer",
            "perfect",
        ):
            unit = create_fetch_unit(name, PI4, trace)
            assert unit.name == name

    def test_unknown_scheme_rejected(self):
        trace = make_trace(*sequential_path(0, 4))
        with pytest.raises(KeyError, match="unknown fetch scheme"):
            create_fetch_unit("oracle", PI4, trace)


class TestSchemeDominance:
    """Per-cycle delivery capability is ordered:
    sequential <= interleaved <= banked <= collapsing buffer."""

    def test_delivery_ordering_on_random_paths(self):
        import random

        rng = random.Random(7)
        for _ in range(200):
            # Random short path with a couple of branches.
            address = rng.randrange(0, 32)
            path = []
            for _ in range(6):
                path.append(address)
                if rng.random() < 0.3:
                    address += rng.randrange(1, 12)
                else:
                    address += 1
            specs = []
            for here, nxt in zip(path, path[1:]):
                op = OpClass.BR_COND if nxt != here + 1 else OpClass.IALU
                specs.append((here, op, nxt if nxt != here + 1 else -1))
            specs.append((path[-1], OpClass.IALU))
            trace = make_trace(*specs)
            deliveries = []
            for cls in (
                SequentialFetch,
                InterleavedSequentialFetch,
                BankedSequentialFetch,
                CollapsingBufferFetch,
            ):
                unit = cls(PI4, trace)
                prewarm(unit, range(0, 512))
                for spec in specs[:-1]:
                    if spec[1] is OpClass.BR_COND:
                        warm_taken(unit, spec[0], spec[2])
                deliveries.append(unit.fetch_cycle(0, 4).delivered)
            seq, inter, banked, collapsing = deliveries
            assert seq <= inter <= collapsing
            assert banked <= collapsing
