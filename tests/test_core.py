"""Unit tests for the out-of-order core: window, ROB, units, pipeline."""

import pytest

from repro.core import (
    EntryState,
    ExecutionCore,
    FunctionalUnits,
    FutureFile,
    MessyTagFile,
    READY,
    ReorderBuffer,
    ResultBuses,
    ROBEntry,
    SchedulingWindow,
)
from repro.isa import Instruction, OpClass, UnitType
from repro.machines import PI4


def entry(seq, op=OpClass.IALU, dest=-1, src1=-1, src2=-1):
    return ROBEntry(
        seq=seq,
        instruction=Instruction(op, dest=dest, src1=src1, src2=src2),
        trace_index=seq,
    )


class TestReorderBuffer:
    def test_in_order_retirement(self):
        rob = ReorderBuffer(8)
        first, second = entry(0), entry(1)
        rob.append(first)
        rob.append(second)
        second.state = EntryState.DONE
        # The head is not done: nothing retires.
        assert rob.retire(4) == []
        first.state = EntryState.DONE
        assert rob.retire(4) == [first, second]

    def test_retire_width_respected(self):
        rob = ReorderBuffer(8)
        entries = [entry(i) for i in range(4)]
        for e in entries:
            e.state = EntryState.DONE
            rob.append(e)
        assert len(rob.retire(2)) == 2
        assert len(rob.retire(2)) == 2

    def test_overflow(self):
        rob = ReorderBuffer(1)
        rob.append(entry(0))
        assert rob.full
        with pytest.raises(OverflowError):
            rob.append(entry(1))


class TestMessyAndFuture:
    def test_producer_tracking(self):
        messy = MessyTagFile()
        messy.rename_dest(3, tag=7)
        assert messy.producer_of(3) == 7
        messy.writeback(3, tag=7)
        assert messy.producer_of(3) == READY

    def test_stale_writeback_ignored(self):
        messy = MessyTagFile()
        messy.rename_dest(3, tag=7)
        messy.rename_dest(3, tag=9)  # newer producer
        messy.writeback(3, tag=7)
        assert messy.producer_of(3) == 9

    def test_future_file_records_retired_writers(self):
        future = FutureFile()
        future.retire_write(5, seq=11)
        future.retire_write(5, seq=12)
        assert future.last_writer(5) == 12
        assert future.last_writer(6) == READY


class TestSchedulingWindow:
    def test_dependency_wakeup(self):
        window = SchedulingWindow(8)
        producer = entry(0, dest=1)
        consumer = entry(1, src1=1)
        window.dispatch(producer)
        went = window.dispatch(consumer)
        assert not went.ready
        ready = window.take_ready()
        assert [e.rob_entry.seq for e in ready] == [0]
        window.writeback(0, dest=1)
        assert [e.rob_entry.seq for e in window.take_ready()] == [1]

    def test_independent_instructions_all_ready(self):
        window = SchedulingWindow(8)
        for i in range(3):
            window.dispatch(entry(i, dest=i + 1))
        assert len(window.take_ready()) == 3

    def test_no_false_dependency_after_writeback(self):
        window = SchedulingWindow(8)
        producer = entry(0, dest=1)
        window.dispatch(producer)
        window.take_ready()
        window.writeback(0, dest=1)
        late_consumer = entry(1, src1=1)
        assert window.dispatch(late_consumer).ready

    def test_put_back_restores_age_order(self):
        window = SchedulingWindow(8)
        entries = [entry(i) for i in range(3)]
        for e in entries:
            window.dispatch(e)
        ready = window.take_ready()
        window.put_back(ready[1:])
        window.dispatch(entry(3))
        order = [e.rob_entry.seq for e in window.take_ready()]
        assert order == [1, 2, 3]

    def test_overflow(self):
        window = SchedulingWindow(1)
        window.dispatch(entry(0))
        with pytest.raises(OverflowError):
            window.dispatch(entry(1))

    def test_two_source_dependencies(self):
        window = SchedulingWindow(8)
        window.dispatch(entry(0, dest=1))
        window.dispatch(entry(1, dest=2))
        consumer = window.dispatch(entry(2, src1=1, src2=2))
        window.writeback(0, dest=1)
        assert not consumer.ready
        window.writeback(1, dest=2)
        assert consumer.ready


class TestFunctionalUnits:
    def test_capacity_per_type(self):
        units = FunctionalUnits(PI4)  # 2 FXU
        units.begin_cycle()
        assert units.try_issue(OpClass.IALU)
        assert units.try_issue(OpClass.IALU)
        assert not units.try_issue(OpClass.IALU)
        # Other unit types unaffected.
        assert units.try_issue(OpClass.FALU)

    def test_begin_cycle_resets(self):
        units = FunctionalUnits(PI4)
        units.begin_cycle()
        units.try_issue(OpClass.IALU)
        units.try_issue(OpClass.IALU)
        units.begin_cycle()
        assert units.try_issue(OpClass.IALU)

    def test_stats(self):
        units = FunctionalUnits(PI4)
        units.begin_cycle()
        units.try_issue(OpClass.BR_COND)
        assert units.stats.issues[UnitType.BRANCH] == 1

    def test_result_buses(self):
        buses = ResultBuses(3)
        assert buses.grant(2) == 2
        assert buses.grant(5) == 3
        assert buses.contention_slips == 2
        with pytest.raises(ValueError):
            ResultBuses(0)


class TestExecutionCore:
    def run_until_drained(self, core, limit=100):
        cycle = 0
        retired = []
        while not core.drained and cycle < limit:
            retired.extend(core.do_retire(cycle))
            core.do_writeback(cycle)
            core.do_fire(cycle)
            cycle += 1
        retired.extend(core.do_retire(cycle))
        return retired, cycle

    def test_single_instruction_flows_through(self):
        core = ExecutionCore(PI4)
        instr = Instruction(OpClass.IALU, dest=1)
        assert core.can_dispatch(instr)
        core.dispatch(instr, 0)
        retired, _ = self.run_until_drained(core)
        assert len(retired) == 1
        assert core.retired_count == 1

    def test_dependent_chain_is_serialised(self):
        core = ExecutionCore(PI4)
        # r1 = ...; r2 = r1; r3 = r2 — three cycles of execution minimum.
        core.dispatch(Instruction(OpClass.IALU, dest=1), 0)
        core.dispatch(Instruction(OpClass.IALU, dest=2, src1=1), 1)
        core.dispatch(Instruction(OpClass.IALU, dest=3, src1=2), 2)
        retired, cycles = self.run_until_drained(core)
        assert len(retired) == 3
        assert cycles >= 5  # fire/writeback/retire pipeline + serial chain

    def test_independent_pair_faster_than_chain(self):
        def cycles_for(deps: bool) -> int:
            core = ExecutionCore(PI4)
            core.dispatch(Instruction(OpClass.IALU, dest=1), 0)
            src = 1 if deps else -1
            core.dispatch(Instruction(OpClass.IALU, dest=2, src1=src), 1)
            _, cycles = self.run_until_drained(core)
            return cycles

        assert cycles_for(deps=False) < cycles_for(deps=True)

    def test_fpu_latency_longer(self):
        core = ExecutionCore(PI4)
        core.dispatch(Instruction(OpClass.FALU, dest=33, src1=32), 0)
        _, fp_cycles = self.run_until_drained(core)
        core2 = ExecutionCore(PI4)
        core2.dispatch(Instruction(OpClass.IALU, dest=1), 0)
        _, int_cycles = self.run_until_drained(core2)
        assert fp_cycles > int_cycles

    def test_speculation_depth_gates_branches(self):
        core = ExecutionCore(PI4)  # depth 2
        waiting = Instruction(OpClass.BR_COND, src1=1)
        # Branches depend on a never-completing producer? Use a register
        # produced by a dispatched but un-fired instruction: dispatch the
        # producer and two branches reading it, then check gating.
        core.dispatch(Instruction(OpClass.LOAD, dest=1), 0)
        assert core.can_dispatch(waiting)
        core.dispatch(Instruction(OpClass.BR_COND, src1=1), 1)
        assert core.can_dispatch(waiting)
        core.dispatch(Instruction(OpClass.BR_COND, src1=1), 2)
        assert core.unresolved_branches == 2
        assert not core.can_dispatch(waiting)  # beyond 2 branches
        assert core.can_dispatch(Instruction(OpClass.IALU, dest=2))

    def test_branch_resolution_frees_depth(self):
        core = ExecutionCore(PI4)
        core.dispatch(Instruction(OpClass.BR_COND, src1=-1), 0)
        core.dispatch(Instruction(OpClass.BR_COND, src1=-1), 1)
        assert not core.can_dispatch(Instruction(OpClass.BR_COND))
        self.run_until_drained(core)
        assert core.unresolved_branches == 0
        assert core.can_dispatch(Instruction(OpClass.BR_COND))

    def test_window_full_blocks_dispatch(self):
        core = ExecutionCore(PI4)  # window 16
        # Fill the window with instructions waiting on a dead register.
        core.dispatch(Instruction(OpClass.LOAD, dest=1), 0)
        count = 1
        while core.can_dispatch(Instruction(OpClass.IALU, dest=2, src1=1)):
            core.dispatch(Instruction(OpClass.IALU, dest=2, src1=1), count)
            count += 1
        assert count >= PI4.window_size
        assert core.stats.window_full_stalls >= 1

    def test_retire_width(self):
        core = ExecutionCore(PI4)
        for i in range(8):
            core.dispatch(Instruction(OpClass.IALU, dest=i % 4), i)
        # Execute everything.
        cycle = 0
        while core.retired_count < 8 and cycle < 50:
            retired = core.do_retire(cycle)
            assert len(retired) <= PI4.retire_width
            core.do_writeback(cycle)
            core.do_fire(cycle)
            cycle += 1

    def test_future_file_updated_at_retire(self):
        core = ExecutionCore(PI4)
        core.dispatch(Instruction(OpClass.IALU, dest=5), 0)
        self.run_until_drained(core)
        assert core.future_file.last_writer(5) == 0
