"""Tests for the parallel batch runner and the variance experiments."""

from repro.experiments.common import ExperimentConfig
from repro.sim.batch import SimJob, run_batch, suite_jobs

FAST = ExperimentConfig(
    trace_length=3000, eir_length=4000, stats_length=6000, warmup=800
)


class TestBatch:
    def make_jobs(self):
        return suite_jobs(
            ("ora", "li"),
            ("PI4",),
            ("sequential", "collapsing_buffer"),
            length=3000,
            warmup=800,
        )

    def test_suite_jobs_cross_product(self):
        jobs = self.make_jobs()
        assert len(jobs) == 4
        assert jobs[0] == SimJob(
            "ora", "PI4", "sequential", length=3000, warmup=800
        )

    def test_serial_matches_parallel(self):
        jobs = self.make_jobs()
        serial = run_batch(jobs, processes=1)
        parallel = run_batch(jobs, processes=2)
        assert [s.ipc for s in serial] == [p.ipc for p in parallel]
        assert [s.benchmark for s in serial] == [j.benchmark for j in jobs]

    def test_empty(self):
        assert run_batch([]) == []


class TestVariance:
    def test_ipc_variance_small(self):
        from repro.experiments.variance import run_ipc_variance

        result = run_ipc_variance(FAST)
        assert len(result.rows) == 4 * 3
        for row in result.rows:
            _, _, mean, stddev, cv = row
            assert mean > 0
            assert 0 <= cv < 30  # inputs shift IPC but not wildly

    def test_eir_ratio_variance_bounded(self):
        from repro.experiments.variance import run_eir_ratio_variance

        result = run_eir_ratio_variance(FAST)
        for row in result.rows:
            _, mean, stddev, lo, hi = row
            assert 40 < mean <= 101
            assert lo <= mean <= hi
            assert hi - lo < 30
