"""Tests for the parallel batch runner and the variance experiments."""

import multiprocessing

import pytest

from repro.experiments.common import ExperimentConfig
from repro.sim.batch import (
    SimJob,
    run_batch,
    run_batch_report,
    suite_jobs,
)

FAST = ExperimentConfig(
    trace_length=3000, eir_length=4000, stats_length=6000, warmup=800
)


class TestBatch:
    def make_jobs(self):
        return suite_jobs(
            ("ora", "li"),
            ("PI4",),
            ("sequential", "collapsing_buffer"),
            length=3000,
            warmup=800,
        )

    def test_suite_jobs_cross_product(self):
        jobs = self.make_jobs()
        assert len(jobs) == 4
        assert jobs[0] == SimJob(
            "ora", "PI4", "sequential", length=3000, warmup=800
        )

    def test_serial_matches_parallel(self):
        jobs = self.make_jobs()
        serial = run_batch(jobs, processes=1)
        parallel = run_batch(jobs, processes=2)
        assert [s.ipc for s in serial] == [p.ipc for p in parallel]
        assert [s.benchmark for s in serial] == [j.benchmark for j in jobs]

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_matches_serial(self):
        # The job wrapper must stay module-level and closure-free so it
        # pickles for spawn-only platforms (e.g. Windows, macOS default).
        jobs = self.make_jobs()
        serial = run_batch(jobs, processes=1)
        spawned = run_batch(jobs, processes=2, start_method="spawn")
        assert [s.ipc for s in serial] == [p.ipc for p in spawned]

    def test_unknown_start_method_falls_back_to_serial(self):
        jobs = self.make_jobs()[:1]
        results = run_batch(jobs, processes=2, start_method="no-such-method")
        assert results[0].ipc == run_batch(jobs, processes=1)[0].ipc

    def test_report_counts_instructions(self):
        jobs = self.make_jobs()
        report = run_batch_report(jobs, processes=1)
        assert report.processes == 1
        assert report.wall_seconds >= 0
        assert report.simulated_instructions == sum(
            s.retired for s in report.results
        )
        if report.wall_seconds > 0:
            assert report.instructions_per_second > 0

    def test_empty(self):
        assert run_batch([]) == []


class TestVariance:
    def test_ipc_variance_small(self):
        from repro.experiments.variance import run_ipc_variance

        result = run_ipc_variance(FAST)
        assert len(result.rows) == 4 * 3
        for row in result.rows:
            _, _, mean, stddev, cv = row
            assert mean > 0
            assert 0 <= cv < 30  # inputs shift IPC but not wildly

    def test_eir_ratio_variance_bounded(self):
        from repro.experiments.variance import run_eir_ratio_variance

        result = run_eir_ratio_variance(FAST)
        for row in result.rows:
            _, mean, stddev, lo, hi = row
            assert 40 < mean <= 101
            assert lo <= mean <= hi
            assert hi - lo < 30
