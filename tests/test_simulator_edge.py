"""Edge-case tests for the simulator harness itself."""

import pytest

from repro.fetch.base import FetchPlan, FetchResult, FetchUnit
from repro.machines import PI4
from repro.sim import SimulationDeadlock, Simulator
from repro.workloads import load_workload, generate_trace
from repro.workloads.micro import straightline


class _StarvingFetch(FetchUnit):
    """A fetch unit that never delivers — must trip deadlock detection."""

    name = "starving"

    def plan(self, fetch_address, limit):
        raise NotImplementedError

    def fetch_cycle(self, position, limit):
        return FetchResult([], stall_cycles=1)


class _EmptyPlanFetch(FetchUnit):
    """A buggy scheme whose plan diverges at its own fetch address."""

    name = "broken"

    def plan(self, fetch_address, limit):
        return FetchPlan(addresses=[fetch_address + 1], next_address=-1)


class TestHarnessGuards:
    def test_deadlock_detected(self):
        workload = straightline()
        trace = generate_trace(workload.program, workload.behavior, 200)
        sim = Simulator(PI4, trace, _StarvingFetch(PI4, trace))
        sim.MAX_CPI = 2  # shrink the budget so the test is fast
        with pytest.raises(SimulationDeadlock, match="no forward progress"):
            sim.run()

    def test_divergent_plan_asserts(self):
        workload = straightline()
        trace = generate_trace(workload.program, workload.behavior, 100)
        unit = _EmptyPlanFetch(PI4, trace)
        unit.cache.fill(0)
        with pytest.raises(AssertionError, match="own fetch address"):
            unit.fetch_cycle(0, 4)

    def test_fetch_cycle_at_end_of_trace(self):
        workload = straightline()
        trace = generate_trace(workload.program, workload.behavior, 50)
        from repro.fetch import create_fetch_unit

        unit = create_fetch_unit("sequential", PI4, trace)
        result = unit.fetch_cycle(len(trace.instructions), 4)
        assert result.instructions == []
        assert not result.mispredict

    def test_zero_limit_delivers_nothing(self):
        workload = straightline()
        trace = generate_trace(workload.program, workload.behavior, 50)
        from repro.fetch import create_fetch_unit

        unit = create_fetch_unit("sequential", PI4, trace)
        assert unit.fetch_cycle(0, 0).instructions == []

    def test_warmup_clamped_to_half_trace(self):
        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 1000)
        sim = Simulator(PI4, trace, "sequential", warmup=100_000)
        assert sim.warmup == 500
        stats = sim.run()
        # The snapshot lands at the first cycle with >= 500 retired, so
        # the measured region is 500 instructions minus the overshoot.
        assert 500 - PI4.retire_width <= stats.retired <= 500

    def test_stats_deltas_exclude_warmup(self):
        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 4000)
        full = Simulator(PI4, trace, "sequential", warmup=0).run()
        trimmed = Simulator(PI4, trace, "sequential", warmup=2000).run()
        assert trimmed.retired < full.retired
        assert trimmed.cycles < full.cycles
        assert trimmed.delivered <= full.delivered


class TestWrongPathFetch:
    def test_wrong_path_mode_touches_cache(self):
        import dataclasses

        from repro.workloads import load_workload

        workload = load_workload("gcc")
        trace = generate_trace(workload.program, workload.behavior, 8000)
        small = dataclasses.replace(PI4, icache_bytes=8 * 1024)
        sim = Simulator(
            small, trace, "collapsing_buffer", wrong_path_fetch=True
        )
        stats = sim.run()
        assert sim.wrong_path_cycles > 0
        assert stats.retired == 8000

    def test_correct_path_timeline_unchanged_when_cache_ample(self):
        """With no cache pressure, wrong-path fetch must not change the
        correct-path timeline at all."""
        from repro.workloads import load_workload

        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 6000)
        base = Simulator(PI4, trace, "banked_sequential").run()
        polluted = Simulator(
            PI4, trace, "banked_sequential", wrong_path_fetch=True
        ).run()
        assert polluted.cycles == base.cycles
        assert polluted.ipc == base.ipc
