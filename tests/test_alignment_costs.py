"""Tests for the alignment-hardware cost models (paper Figures 6 and 8)."""

import pytest

from repro.fetch import (
    collapsing_buffer_crossbar_cost,
    collapsing_buffer_shifter_cost,
    interchange_switch_cost,
    scheme_hardware_inventory,
    valid_select_cost,
)


class TestComponentCosts:
    def test_interchange_switch_formula(self):
        # Figure 6(a): 64*k transmission gates, 2 gate delays.
        cost = interchange_switch_cost(4)
        assert cost.transmission_gates == 256
        assert cost.delay_gates == 2

    def test_valid_select_formula(self):
        # Figure 6(b): 3 muxes of each shape, 4 gate delays.
        cost = valid_select_cost(8)
        assert cost.muxes == {
            "8-to-1 32-bit": 3,
            "7-to-1 32-bit": 3,
            "2-to-1 32-bit": 3,
        }
        assert cost.delay_gates == 4

    def test_shifter_formula(self):
        # Figure 8(a): 64*k latches, 64*k-32 transmission gates.
        cost = collapsing_buffer_shifter_cost(4)
        assert cost.latches == 256
        assert cost.transmission_gates == 224
        assert cost.delay_latches >= 1

    def test_crossbar_formula(self):
        # Figure 8(b): 2*k 1-to-k demuxes, single gate delay + bus.
        cost = collapsing_buffer_crossbar_cost(4)
        assert cost.demuxes == {"1-to-4 32-bit": 8}
        assert cost.delay_gates == 1
        assert "backward" in cost.notes

    def test_costs_scale_with_block_size(self):
        small = interchange_switch_cost(4).transmission_gates
        large = interchange_switch_cost(16).transmission_gates
        assert large == 4 * small

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            interchange_switch_cost(1)


class TestInventory:
    def test_sequential_needs_no_alignment_hardware(self):
        assert scheme_hardware_inventory("sequential", 4) == []

    def test_interleaved_and_banked_share_inventory(self):
        a = scheme_hardware_inventory("interleaved_sequential", 8)
        b = scheme_hardware_inventory("banked_sequential", 8)
        assert [c.component for c in a] == [c.component for c in b]
        assert {c.component for c in a} == {
            "interchange_switch",
            "valid_select",
        }

    def test_crossbar_subsumes_switch_and_select(self):
        inventory = scheme_hardware_inventory("collapsing_buffer", 8)
        assert [c.component for c in inventory] == [
            "collapsing_buffer_crossbar"
        ]

    def test_shifter_variant_keeps_interchange(self):
        inventory = scheme_hardware_inventory("collapsing_buffer_shifter", 8)
        assert {c.component for c in inventory} == {
            "interchange_switch",
            "collapsing_buffer_shifter",
        }

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme_hardware_inventory("trace_cache", 8)
