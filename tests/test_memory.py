"""Unit tests for the instruction cache."""

import pytest

from repro.memory import InstructionCache


def make_cache(**kwargs):
    defaults = dict(size_bytes=256, block_bytes=16, num_banks=2, miss_latency=10)
    defaults.update(kwargs)
    return InstructionCache(**defaults)


class TestGeometry:
    def test_words_and_sets(self):
        cache = make_cache()
        assert cache.words_per_block == 4
        assert cache.num_sets == 16

    def test_block_index_and_start(self):
        cache = make_cache()
        assert cache.block_index(0) == 0
        assert cache.block_index(3) == 0
        assert cache.block_index(4) == 1
        assert cache.block_start(2) == 8

    def test_bank_interleaving(self):
        cache = make_cache(num_banks=2)
        assert cache.bank_of(0) == 0
        assert cache.bank_of(1) == 1
        assert cache.bank_of(2) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_cache(size_bytes=100)  # not a multiple of block
        with pytest.raises(ValueError):
            make_cache(block_bytes=6)  # fractional instructions
        with pytest.raises(ValueError):
            make_cache(num_banks=0)
        with pytest.raises(ValueError):
            make_cache(size_bytes=0)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(5)
        cache.fill(5)
        assert cache.access(5)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_probe_does_not_record(self):
        cache = make_cache()
        cache.fill(3)
        assert cache.probe(3)
        assert not cache.probe(4)
        assert cache.stats.accesses == 0

    def test_direct_mapped_conflict(self):
        cache = make_cache()  # 16 sets
        cache.fill(1)
        cache.fill(17)  # same set, evicts 1
        assert not cache.probe(1)
        assert cache.probe(17)

    def test_access_and_fill(self):
        cache = make_cache()
        assert not cache.access_and_fill(7)
        assert cache.access_and_fill(7)

    def test_flush_keeps_stats(self):
        cache = make_cache()
        cache.access_and_fill(2)
        cache.flush()
        assert not cache.probe(2)
        assert cache.stats.accesses == 1

    def test_resident_blocks(self):
        cache = make_cache()
        cache.fill(4)
        cache.fill(9)
        assert sorted(cache.resident_blocks()) == [4, 9]

    def test_miss_ratio(self):
        cache = make_cache()
        cache.access_and_fill(1)
        cache.access(1)
        cache.access(1)
        assert cache.stats.miss_ratio == pytest.approx(1 / 3)

    def test_paper_geometries(self):
        # PI4 / PI8 / PI12 cache shapes (paper Table 1).
        for size_kb, block, k in ((32, 16, 4), (64, 32, 8), (128, 64, 16)):
            cache = InstructionCache(size_kb * 1024, block)
            assert cache.words_per_block == k
