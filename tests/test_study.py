"""Tests for the declarative study engine (``repro.study``).

Covers spec validation (the ``Dxxx`` catalogue), deterministic
content-hashed expansion (stability across processes and spec
re-orderings, dedup, the conservation ledger), end-to-end execution
with importance/interaction/Pareto analysis, crash-and-resume
bit-identity (chaos faults in-process, SIGKILL out-of-process), the
ported-ablation parity contract, the ``repro ablate`` CLI, and the
shared tornado/scatter chart renderers.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.check.errors import CheckFailure
from repro.cli import main
from repro.sim.batch import SupervisorConfig
from repro.study import (
    StudySpec,
    Toggle,
    expand,
    run_id_of,
    run_study,
    spec_from_dict,
    spec_from_json,
    validate,
)

#: Fast supervision policy so chaos retries cost milliseconds.
FAST = SupervisorConfig(
    max_attempts=3,
    backoff_base=0.01,
    backoff_max=0.05,
    backoff_jitter=0.1,
    poll_interval=0.02,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    yield


def disarm():
    os.environ.pop("REPRO_FAULTS", None)
    faults.reload()


def arm(spec: str):
    os.environ["REPRO_FAULTS"] = spec
    faults.reload()


def tiny_spec(**overrides) -> StudySpec:
    """A three-toggle study cheap enough for the unit suite."""
    fields = dict(
        name="tiny-e2e",
        benchmarks=("ora",),
        machine="PI4",
        scheme="collapsing_buffer",
        length=2_000,
        eir_length=2_000,
        warmup=300,
        metrics=("ipc", "eir"),
        toggles=(
            Toggle("btb", "btb_entries", (256,)),
            Toggle("fetch", "scheme", ("sequential",)),
            Toggle("banks", "num_banks", (2,)),
        ),
        pairwise=(("btb", "banks"),),
    )
    fields.update(overrides)
    return StudySpec(**fields)


def codes(errors):
    return sorted(e.code for e in errors)


# -- validation (Dxxx) --------------------------------------------------------


class TestValidation:
    def test_legal_spec_is_clean(self):
        assert validate(tiny_spec()) == []

    def test_d001_unknown_parameter(self):
        spec = tiny_spec(toggles=(Toggle("t", "warp_factor", (9,)),))
        assert "D001" in codes(validate(spec))

    def test_d002_illegal_values(self):
        spec = tiny_spec(
            toggles=(
                Toggle("a", "btb_entries", ("lots",)),
                Toggle("b", "predictor", ("oracle",)),
                Toggle("c", "num_banks", (0,)),
                Toggle("d", "prewarm", (1,)),  # int is not a bool
            ),
            pairwise=(),
        )
        assert codes(validate(spec)).count("D002") == 4

    def test_d003_toggle_shape(self):
        spec = tiny_spec(
            toggles=(
                Toggle("dup", "btb_entries", (256,)),
                Toggle("dup", "window_size", (32,)),
                Toggle("empty", "num_banks", ()),
                Toggle("repeat", "speculation_depth", (2, 2)),
            ),
            pairwise=(),
        )
        found = codes(validate(spec))
        assert found.count("D003") == 3

    def test_d004_pairwise_problems(self):
        base = tiny_spec(pairwise=(("btb", "ghost"),))
        assert "D004" in codes(validate(base))
        selfpair = tiny_spec(pairwise=(("btb", "btb"),))
        assert "D004" in codes(validate(selfpair))
        same_param = tiny_spec(
            toggles=(
                Toggle("small", "btb_entries", (256,)),
                Toggle("large", "btb_entries", (4096,)),
            ),
            pairwise=(("small", "large"),),
        )
        assert "D004" in codes(validate(same_param))

    def test_d005_scenario_fields(self):
        spec = tiny_spec(name="", length=0, warmup=-1, metrics=("joy",))
        found = codes(validate(spec))
        assert found.count("D005") == 4

    def test_d005_unknown_spec_key_rejected(self):
        with pytest.raises(CheckFailure) as excinfo:
            spec_from_dict({"name": "x", "benchmarks": ["ora"], "typo": 1})
        assert "D005" in excinfo.value.codes

    def test_d006_illegal_machine_value(self):
        # A 4-byte block cannot hold PI4's 4-instruction issue group.
        spec = tiny_spec(
            toggles=(Toggle("block", "icache_block_bytes", (4,)),),
            pairwise=(),
        )
        assert "D006" in codes(validate(spec))

    def test_d006_illegal_pairwise_combination(self):
        # Each override is legal alone (window 12 fits PI4's issue 4;
        # PI16 is a real machine) but the *pair* violates window >= issue.
        spec = tiny_spec(
            toggles=(
                Toggle("machine", "machine", ("PI16",)),
                Toggle("window", "window_size", (12,)),
            ),
            pairwise=(("machine", "window"),),
        )
        assert "D006" in codes(validate(spec))

    def test_d007_run_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_STUDY_MAX_RUNS", "2")
        with pytest.raises(CheckFailure) as excinfo:
            expand(tiny_spec())
        assert "D007" in excinfo.value.codes

    def test_unknown_names_use_shared_codes(self):
        spec = tiny_spec(
            benchmarks=("nonesuch",), machine="PI99", scheme="psychic"
        )
        found = codes(validate(spec))
        assert {"A001", "A002", "A003"} <= set(found)

    def test_expand_raises_on_invalid(self):
        with pytest.raises(CheckFailure):
            expand(tiny_spec(benchmarks=()))

    def test_json_round_trip(self):
        spec = tiny_spec()
        clone = spec_from_json(json.dumps(spec.as_dict()))
        assert clone == spec
        assert clone.digest == spec.digest


# -- deterministic expansion --------------------------------------------------


class TestExpansion:
    def test_run_ids_stable_under_reordering(self):
        spec = tiny_spec()
        shuffled = tiny_spec(
            toggles=tuple(reversed(spec.toggles)),
            pairwise=(("banks", "btb"),),
        )
        a, b = expand(spec), expand(shuffled)
        assert {r.run_id for r in a.runs} == {r.run_id for r in b.runs}
        assert a.baseline_id == b.baseline_id
        assert a.single_id("btb", 256) == b.single_id("btb", 256)
        assert a.pair_id("btb", 256, "banks", 2) == b.pair_id(
            "banks", 2, "btb", 256
        )

    def test_run_ids_stable_across_processes(self):
        spec = tiny_spec()
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.study import run_id_of, spec_from_json\n"
            f"spec = spec_from_json({json.dumps(json.dumps(spec.as_dict()))})\n"
            "print(run_id_of(spec, {}))\n"
            "print(run_id_of(spec, {'btb_entries': 256}))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        baseline, single = proc.stdout.split()
        assert baseline == run_id_of(spec, {})
        assert single == run_id_of(spec, {"btb_entries": 256})

    def test_spec_name_does_not_reach_run_ids(self):
        a = expand(tiny_spec())
        b = expand(tiny_spec(name="renamed"))
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]

    def test_baseline_valued_toggle_dedups_onto_baseline(self):
        # PI4's btb_entries default is 1024: the single collapses.
        spec = tiny_spec(
            toggles=(Toggle("btb", "btb_entries", (1024, 256)),),
            pairwise=(),
        )
        expansion = expand(spec)
        assert expansion.single_id("btb", 1024) == expansion.baseline_id
        assert expansion.single_id("btb", 256) != expansion.baseline_id
        assert len(expansion.runs) == 2

    def test_conservation_of_generated_runs(self):
        spec = tiny_spec(
            toggles=(
                Toggle("btb", "btb_entries", (256, 4096)),
                Toggle("banks", "num_banks", (2, 4, 8)),
                Toggle("fetch", "scheme", ("sequential",)),
            ),
            pairwise=(("btb", "banks"),),
        )
        expansion = expand(spec)
        roles = [role for role, _, _ in expansion.memberships]
        assert roles.count("baseline") == 1
        assert roles.count("single") == 2 + 3 + 1
        assert roles.count("pair") == 2 * 3
        # Every toggle appears in exactly len(values) single entries.
        for toggle in spec.toggles:
            singles = [
                names
                for role, names, _ in expansion.memberships
                if role == "single" and names == (toggle.name,)
            ]
            assert len(singles) == len(toggle.values)
        # Every generated entry resolved to a real run.
        run_ids = {run.run_id for run in expansion.runs}
        assert all(rid in run_ids for _, _, rid in expansion.memberships)


# -- end-to-end execution + analysis ------------------------------------------


class TestRunStudy:
    def test_report_structure_and_determinism(self, cache_env, tmp_path):
        spec = tiny_spec()
        first = run_study(spec, tmp_path / "a", processes=1)
        report = first.report
        assert report["primary_metric"] == "eir"
        assert len(report["importance"]) == 3
        assert [c["rank"] for c in report["importance"]] == [1, 2, 3]
        assert len(report["interactions"]) == 1
        effects = report["interactions"][0]["effects"]["eir"]
        assert effects["interaction"] == pytest.approx(
            effects["actual"] - effects["expected"]
        )
        # The frontier is non-empty, sorted by cost, non-dominated.
        points = report["pareto"]["points"]
        frontier = report["pareto"]["frontier"]
        assert frontier
        by_id = {p["run_id"]: p for p in points}
        chain = [by_id[rid] for rid in frontier]
        assert chain == sorted(chain, key=lambda p: p["cost"])
        eirs = [p["eir"] for p in chain]
        assert eirs == sorted(eirs)
        # A second clean run in a fresh directory is byte-identical.
        run_study(spec, tmp_path / "b", processes=1)
        assert (tmp_path / "a" / "report.json").read_bytes() == (
            tmp_path / "b" / "report.json"
        ).read_bytes()
        manifest = json.loads((tmp_path / "a" / "manifest.json").read_text())
        assert manifest["spec_digest"] == spec.digest
        assert manifest["outcomes"].get("ok") == 5
        for name in ("report.md", "report.csv", "tornado.txt"):
            assert (tmp_path / "a" / name).exists()

    def test_chaos_crashes_retry_to_bit_identical_report(
        self, cache_env, tmp_path
    ):
        spec = tiny_spec()
        try:
            run_study(spec, tmp_path / "clean", processes=1, config=FAST)
            arm("seed=2;batch.worker=crash:p=1:n=2")
            os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "cache2")
            run_study(spec, tmp_path / "chaos", processes=1, config=FAST)
        finally:
            disarm()
        assert (tmp_path / "clean" / "report.json").read_bytes() == (
            tmp_path / "chaos" / "report.json"
        ).read_bytes()
        manifest = json.loads(
            (tmp_path / "chaos" / "manifest.json").read_text()
        )
        assert manifest["outcomes"].get("retried")

    def test_sigkill_then_resume_is_bit_identical(self, cache_env, tmp_path):
        # Big enough that the subprocess is still mid-study when killed.
        spec = tiny_spec(length=20_000, eir_length=20_000, warmup=2_000)
        clean = run_study(spec, tmp_path / "clean", processes=1)

        out = tmp_path / "killed"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.as_dict()))
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache-sub")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "ablate", "run",
                str(spec_path), "--out", str(out), "--jobs", "1",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal = out / "journal.jsonl"
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it: still valid
                if journal.exists() and len(
                    journal.read_text().splitlines()
                ) >= 2:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.01)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        assert journal.exists()

        resumed = run_study(spec, out, processes=1, resume=True)
        assert resumed.report == clean.report
        assert (out / "report.json").read_bytes() == (
            tmp_path / "clean" / "report.json"
        ).read_bytes()
        skipped = resumed.manifest["outcomes"].get("skipped", 0)
        assert skipped + resumed.manifest["outcomes"].get("ok", 0) == 5


# -- ported ablation parity ---------------------------------------------------


class TestAblationPorts:
    def test_every_port_names_a_real_ablation_and_preset(self):
        from repro.experiments.ablations import ABLATIONS
        from repro.study.presets import ABLATION_PORTS, PRESETS

        assert set(ABLATION_PORTS) <= set(ABLATIONS)
        assert set(ABLATION_PORTS.values()) <= set(PRESETS)
        assert len(ABLATION_PORTS) == 9

    def test_banks_table_matches_legacy_computation(self, cache_env):
        from repro.experiments.ablations import (
            _hmean_ipc_custom,
            run_bank_sensitivity,
        )
        from repro.experiments.common import ExperimentConfig
        from repro.fetch.factory import create_fetch_unit
        from repro.machines.presets import PI8

        config = ExperimentConfig(
            trace_length=1_500, eir_length=1_500,
            stats_length=2_000, warmup=300,
        )
        ported = run_bank_sensitivity(config)
        assert ported.experiment == "ablation_banks"
        assert ported.headers == ["scheme", "2 banks", "4 banks", "8 banks"]
        for row in ported.rows:
            scheme = row[0]
            for banks, value in zip((2, 4, 8), row[1:]):
                def factory(machine, trace, _s=scheme, _b=banks):
                    return create_fetch_unit(_s, machine, trace, num_banks=_b)

                truth = _hmean_ipc_custom(
                    PI8, scheme, config, unit_factory=factory
                )
                assert value == truth  # bit-identical, not approx


# -- CLI ----------------------------------------------------------------------


class TestAblateCli:
    def test_list(self, capsys):
        assert main(["ablate", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig11-shifter" in out

    def test_unknown_spec_exits_2(self, capsys):
        assert main(["ablate", "run", "warp-drive"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_report_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["ablate", "report", str(tmp_path / "ghost")]) == 2

    def test_invalid_spec_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "benchmarks": ["nonesuch"]}))
        assert main(["ablate", "run", str(bad), "--out", str(tmp_path)]) == 1
        assert "A003" in capsys.readouterr().err

    def test_run_and_report_round_trip(self, cache_env, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().as_dict()))
        out = tmp_path / "study"
        assert main(
            ["ablate", "run", str(spec_path), "--out", str(out), "--jobs", "1"]
        ) == 0
        run_out = capsys.readouterr().out
        assert "5 unique runs" in run_out
        assert "Pareto frontier" in run_out
        assert main(["ablate", "report", str(out)]) == 0
        report_out = capsys.readouterr().out
        assert "Component importance" in report_out
        assert main(["ablate", "report", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["study"] == "tiny-e2e"

    def test_legacy_ablation_shim_unchanged(self, capsys):
        # The back-compat contract test_cli_and_analysis also pins.
        assert main(["ablation", "warp-drive"]) == 2
        assert "unknown ablation" in capsys.readouterr().err


# -- chart renderers ----------------------------------------------------------


class TestCharts:
    def test_tornado_signs_and_sort(self):
        from repro.metrics.chart import tornado_chart

        chart = tornado_chart(
            [("small", 0.1), ("big", -0.4), ("mid", 0.2)], width=20
        )
        lines = chart.splitlines()
        assert lines[0].lstrip().startswith("big")
        assert all("│" in line for line in lines)
        left, right = lines[0].split("│")
        assert "█" in left and "█" not in right  # negative goes left
        assert "+0.200" in chart and "-0.400" in chart

    def test_tornado_rejects_empty(self):
        from repro.metrics.chart import tornado_chart

        with pytest.raises(ValueError):
            tornado_chart([])

    def test_scatter_marks_frontier(self):
        from repro.metrics.chart import scatter_chart

        chart = scatter_chart(
            [(1.0, 2.0, "a"), (4.0, 8.0, "b"), (9.0, 3.0, "c")],
            width=20,
            height=6,
            mark={1},
        )
        assert chart.count("●") == 1
        assert chart.count("·") == 2
        assert "└" in chart

    def test_scatter_rejects_empty(self):
        from repro.metrics.chart import scatter_chart

        with pytest.raises(ValueError):
            scatter_chart([])
