"""Unit tests for 2-bit counters, the interleaved BTB, extra predictors."""

import pytest

from repro.branch import (
    BranchTargetBuffer,
    GShare,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    StaticBTFNT,
    AlwaysTaken,
    TwoBitCounter,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)


class TestTwoBitCounter:
    def test_initial_state_predicts_taken(self):
        assert TwoBitCounter().predict_taken()

    def test_saturates_up(self):
        c = TwoBitCounter(STRONG_TAKEN)
        c.update(True)
        assert c.state == STRONG_TAKEN

    def test_saturates_down(self):
        c = TwoBitCounter(STRONG_NOT_TAKEN)
        c.update(False)
        assert c.state == STRONG_NOT_TAKEN

    def test_hysteresis(self):
        # A single not-taken from strong-taken does not flip the prediction.
        c = TwoBitCounter(STRONG_TAKEN)
        c.update(False)
        assert c.predict_taken()
        c.update(False)
        assert not c.predict_taken()

    def test_full_transition_chain(self):
        c = TwoBitCounter(STRONG_NOT_TAKEN)
        states = []
        for _ in range(4):
            c.update(True)
            states.append(c.state)
        assert states == [WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN, STRONG_TAKEN]

    def test_rejects_bad_state(self):
        with pytest.raises(ValueError):
            TwoBitCounter(4)


class TestBTB:
    def make(self, entries=64, interleave=4):
        return BranchTargetBuffer(num_entries=entries, interleave=interleave)

    def test_miss_predicts_fall_through(self):
        btb = self.make()
        pred = btb.predict(100)
        assert not pred.hit
        assert not pred.taken

    def test_allocate_on_taken_only(self):
        btb = self.make()
        btb.update(100, taken=False, target=200)
        assert not btb.predict(100).hit
        btb.update(100, taken=True, target=200)
        pred = btb.predict(100)
        assert pred.hit and pred.taken and pred.target == 200

    def test_counter_trains_towards_not_taken(self):
        btb = self.make()
        btb.update(100, True, 200)
        btb.update(100, False, 200)
        btb.update(100, False, 200)
        pred = btb.predict(100)
        assert pred.hit
        assert not pred.taken
        assert pred.target == 200  # target stays cached for predictors

    def test_unconditional_always_taken_on_hit(self):
        btb = self.make()
        btb.update(40, True, 500, is_unconditional=True)
        assert btb.predict(40).taken

    def test_target_update_on_retaken(self):
        # Models RET: the cached target follows the most recent outcome.
        btb = self.make()
        btb.update(8, True, 100)
        btb.update(8, True, 300)
        assert btb.predict(8).target == 300

    def test_direct_mapped_conflict_replaces(self):
        btb = self.make(entries=16, interleave=4)  # 4 per bank
        # Addresses 0 and 16 share bank 0, index 0.
        btb.update(0, True, 99)
        btb.update(16, True, 77)
        assert not btb.predict(0).hit
        assert btb.predict(16).hit

    def test_bank_mapping_is_slot_based(self):
        btb = self.make(entries=16, interleave=4)
        # Same bank only when address % interleave matches.
        btb.update(1, True, 50)
        btb.update(2, True, 60)  # different bank, no conflict
        assert btb.predict(1).hit
        assert btb.predict(2).hit

    def test_predict_block_covers_every_slot(self):
        btb = self.make(interleave=4)
        btb.update(9, True, 42)
        preds = btb.predict_block(8)
        assert len(preds) == 4
        assert preds[1].taken and preds[1].target == 42
        assert not preds[0].taken

    def test_flush(self):
        btb = self.make()
        btb.update(5, True, 10)
        btb.flush()
        assert not btb.predict(5).hit

    def test_stats(self):
        btb = self.make()
        btb.update(5, True, 10)
        btb.predict(5)
        btb.predict(6)
        assert btb.stats.lookups == 2
        assert btb.stats.hits == 1
        assert btb.stats.allocations == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(num_entries=10, interleave=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(num_entries=0)


class TestOtherPredictors:
    def test_btfnt(self):
        p = StaticBTFNT()
        assert p.predict(address=100, target=50)  # backward: taken
        assert not p.predict(address=100, target=160)  # forward: not

    def test_always_taken(self):
        assert AlwaysTaken().predict(0, 1)

    def test_gshare_learns_pattern(self):
        p = GShare(num_entries=256, history_bits=4)
        # Alternating branch: global history disambiguates.
        for _ in range(64):
            p.update(100, 200, True)
            p.update(100, 200, False)
        correct = 0
        expected = True
        for _ in range(32):
            correct += p.predict(100, 200) == expected
            p.update(100, 200, expected)
            expected = not expected
        assert correct >= 28  # near-perfect once trained

    def test_gshare_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            GShare(num_entries=100)


class TestTwoLevelLocal:
    def test_learns_periodic_pattern(self):
        from repro.branch import TwoLevelLocal

        predictor = TwoLevelLocal(num_branches=64, history_bits=4)
        # Period-3 pattern T T N: a 2-bit counter mispredicts every N,
        # a two-level predictor locks on after warm-up.
        pattern = [True, True, False]
        for i in range(120):
            predictor.update(40, 0, pattern[i % 3])
        correct = 0
        for i in range(30):
            outcome = pattern[i % 3]
            correct += predictor.predict(40, 0) == outcome
            predictor.update(40, 0, outcome)
        assert correct >= 28

    def test_beats_counter_on_regular_loop(self):
        from repro.branch import TwoBitCounter, TwoLevelLocal

        trips = 5  # loop: T*4 then N, repeated
        outcomes = ([True] * (trips - 1) + [False]) * 40
        predictor = TwoLevelLocal(num_branches=16, history_bits=6)
        counter = TwoBitCounter()
        two_level = counter_hits = 0
        for outcome in outcomes:
            two_level += predictor.predict(7, 0) == outcome
            predictor.update(7, 0, outcome)
            counter_hits += counter.predict_taken() == outcome
            counter.update(outcome)
        assert two_level > counter_hits

    def test_validation(self):
        from repro.branch import TwoLevelLocal

        with pytest.raises(ValueError):
            TwoLevelLocal(num_branches=100)
        with pytest.raises(ValueError):
            TwoLevelLocal(history_bits=0)
