"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.branch import BranchTargetBuffer, TwoBitCounter
from repro.compiler import pad_all, reorder_program, schedule_block_body
from repro.fetch import SCHEMES, create_fetch_unit
from repro.isa import Instruction, NO_REG, OpClass, decode, encode
from repro.machines import PI4
from repro.memory import InstructionCache
from repro.workloads import generate_trace, generate_workload, get_profile
from repro.workloads.trace import DynamicTrace

# -- strategies ---------------------------------------------------------------

reg = st.integers(min_value=-1, max_value=63)
alu_instr = st.builds(
    Instruction,
    st.sampled_from([OpClass.IALU, OpClass.FALU, OpClass.LOAD, OpClass.STORE]),
    dest=reg,
    src1=reg,
    src2=reg,
)


@st.composite
def dynamic_paths(draw):
    """A plausible dynamic path: addresses with occasional taken jumps."""
    length = draw(st.integers(min_value=2, max_value=24))
    address = draw(st.integers(min_value=0, max_value=64))
    specs = []
    for _ in range(length):
        jump = draw(st.booleans())
        if jump:
            target = address + draw(st.integers(min_value=1, max_value=20))
            specs.append((address, OpClass.BR_COND, target))
            address = target
        else:
            specs.append((address, OpClass.IALU, -1))
            address += 1
    instructions = [
        Instruction(op, address=a, target=t) for a, op, t in specs
    ]
    return DynamicTrace(name="prop", seed=0, instructions=instructions)


# -- encoding ----------------------------------------------------------------------


class TestEncodingProperties:
    @given(alu_instr)
    def test_alu_roundtrip(self, instr):
        back = decode(encode(instr))
        assert (back.op, back.dest, back.src1, back.src2) == (
            instr.op,
            instr.dest,
            instr.src1,
            instr.src2,
        )

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=-5000, max_value=5000),
    )
    def test_branch_displacement_roundtrip(self, address, displacement):
        # A negative target is not a program address; it would collide
        # with the UNPLACED sentinel before ever reaching the encoder.
        assume(address + displacement >= 0)
        instr = Instruction(
            OpClass.BR_COND, src1=3, address=address,
            target=address + displacement,
        )
        back = decode(encode(instr), address=address)
        assert back.target == instr.target


# -- 2-bit counter ------------------------------------------------------------------


class TestCounterProperties:
    @given(st.lists(st.booleans(), max_size=64))
    def test_state_always_in_range(self, outcomes):
        counter = TwoBitCounter()
        for taken in outcomes:
            counter.update(taken)
            assert 0 <= counter.state <= 3

    @given(st.integers(min_value=0, max_value=3))
    def test_two_updates_flip_any_state(self, state):
        counter = TwoBitCounter(state)
        counter.update(True)
        counter.update(True)
        assert counter.predict_taken()
        counter.update(False)
        counter.update(False)
        assert not counter.predict_taken()


# -- cache -----------------------------------------------------------------------------


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4096), max_size=64))
    def test_fill_then_probe_until_evicted(self, blocks):
        cache = InstructionCache(256, 16)
        for block in blocks:
            cache.fill(block)
            assert cache.probe(block)

    @given(st.lists(st.integers(min_value=0, max_value=4096), max_size=64))
    def test_hits_plus_misses_equals_accesses(self, blocks):
        cache = InstructionCache(256, 16)
        for block in blocks:
            cache.access_and_fill(block)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


# -- BTB --------------------------------------------------------------------------------


class TestBTBProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),  # address
                st.booleans(),  # taken
                st.integers(min_value=0, max_value=2000),  # target
            ),
            max_size=128,
        )
    )
    def test_prediction_never_crashes_and_targets_sane(self, updates):
        btb = BranchTargetBuffer(num_entries=64, interleave=4)
        for address, taken, target in updates:
            btb.update(address, taken, target)
            prediction = btb.predict(address)
            if prediction.taken:
                assert prediction.target >= 0


# -- fetch schemes ---------------------------------------------------------------------------


class TestFetchProperties:
    @settings(max_examples=40, deadline=None)
    @given(dynamic_paths(), st.sampled_from(sorted(SCHEMES)))
    def test_delivery_is_trace_prefix_and_makes_progress(self, trace, name):
        """Any scheme, any path: delivered instructions are exactly the
        next slice of the dynamic trace, and fetch always progresses."""
        unit = create_fetch_unit(name, PI4, trace)
        for block in range(0, 80):
            unit.cache.fill(block)
        position = 0
        guard = 0
        while position < len(trace.instructions) and guard < 500:
            guard += 1
            result = unit.fetch_cycle(position, PI4.issue_rate)
            if result.stall_cycles:
                continue
            assert result.instructions, "no progress without a stall"
            assert (
                result.instructions
                == trace.instructions[position : position + result.delivered]
            )
            for index in range(position, position + result.delivered):
                instr = trace.instructions[index]
                if instr.is_control:
                    unit.train(
                        instr, trace.is_taken(index), trace.next_address(index)
                    )
            position += result.delivered
        assert position == len(trace.instructions)


# -- scheduler ------------------------------------------------------------------------------------


class TestSchedulerProperties:
    @given(st.lists(alu_instr, max_size=16))
    def test_permutation_and_dependency_order(self, body):
        scheduled = schedule_block_body(body)
        assert sorted(map(id, scheduled)) == sorted(map(id, body))
        # RAW: every consumer appears after its most recent producer.
        position = {id(instr): i for i, instr in enumerate(scheduled)}
        last_writer: dict[int, Instruction] = {}
        for instr in body:
            for src in instr.sources():
                producer = last_writer.get(src)
                if producer is not None:
                    assert position[id(producer)] < position[id(instr)]
            if instr.dest != NO_REG:
                last_writer[instr.dest] = instr


# -- compiler passes on generated workloads ------------------------------------------------------


def _logical_signature(trace):
    return [
        (i.op, i.dest, i.src1, i.src2)
        for i in trace.instructions
        if not i.is_control and not i.is_nop
    ]


class TestTransformProperties:
    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from(["compress", "ora", "li", "eqntott"]),
        st.integers(min_value=1, max_value=50),
    )
    def test_reordering_preserves_logical_stream(self, name, seed):
        workload = generate_workload(get_profile(name))
        result = reorder_program(workload.program, workload.behavior)
        original = generate_trace(
            workload.program, workload.behavior, 4000, seed=seed
        )
        reordered = generate_trace(
            result.program, workload.behavior, 4000, seed=seed
        )
        a = _logical_signature(original)
        b = _logical_signature(reordered)
        n = min(len(a), len(b))
        assert a[:n] == b[:n]

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from(["compress", "ora"]),
        st.sampled_from([4, 8, 16]),
    )
    def test_padding_preserves_logical_stream(self, name, block_words):
        workload = generate_workload(get_profile(name))
        padded = pad_all(workload.program, block_words)
        original = generate_trace(workload.program, workload.behavior, 4000)
        after = generate_trace(padded.program, workload.behavior, 5000)
        a = _logical_signature(original)
        b = _logical_signature(after)
        n = min(len(a), len(b))
        assert a[:n] == b[:n]

    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(["compress", "ora"]), st.sampled_from([4, 8, 16]))
    def test_pad_all_alignment_invariant(self, name, block_words):
        workload = generate_workload(get_profile(name))
        padded = pad_all(workload.program, block_words)
        cfg = padded.program.cfg
        for block_id in padded.program.block_order:
            block = cfg.block(block_id)
            if block.body and not block.body[0].is_nop:
                start = padded.program.block_start[block_id]
                assert start % block_words == 0
