"""Tests for the CLI and workload characterisation."""

import pytest

from repro.cli import build_parser, main
from repro.workloads import load_workload
from repro.workloads.analysis import (
    WorkloadCharacter,
    characterization_table,
    characterize,
)


class TestAnalysis:
    def test_characterize_integer(self):
        character = characterize(load_workload("compress"), trace_length=8000)
        assert character.workload_class == "int"
        assert 0.05 < character.control_fraction < 0.4
        assert 0.4 < character.taken_fraction < 1.0
        assert 3 < character.run_length < 40
        assert character.static_branch_sites > 0

    def test_characterize_fp(self):
        character = characterize(load_workload("nasa7"), trace_length=8000)
        assert character.workload_class == "fp"
        assert character.mix.get("FALU", 0) > 0.2
        assert character.control_fraction < 0.08

    def test_intra_block_monotone(self):
        character = characterize(load_workload("espresso"), trace_length=8000)
        assert (
            character.intra_block[4]
            <= character.intra_block[8] + 0.05
            <= character.intra_block[16] + 0.10
        )

    def test_table_renders(self):
        table = characterization_table(
            [load_workload("li")], trace_length=4000
        )
        assert "li" in table
        assert all(h in table for h in ("ctrl %", "run len"))

    def test_headers_match_row_width(self):
        character = characterize(load_workload("li"), trace_length=4000)
        assert len(character.summary_row()) == len(WorkloadCharacter.headers())


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "PI12" in out
        assert "collapsing_buffer" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "ora", "PI4", "sequential", "--length", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_eir(self, capsys):
        assert main(["eir", "ora", "PI4", "--length", "3000"]) == 0
        out = capsys.readouterr().out
        assert "EIR(perfect)" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "ora", "--length", "3000"]) == 0
        assert "ora" in capsys.readouterr().out

    def test_unknown_ablation_rejected(self, capsys):
        assert main(["ablation", "warp-drive"]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])
