"""Model-based (stateful) property tests: hardware structures checked
against trivially-correct reference models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch import BranchTargetBuffer
from repro.memory import InstructionCache


class _ReferenceBTB:
    """Dictionary reference for the direct-mapped interleaved BTB."""

    def __init__(self, entries: int, interleave: int) -> None:
        self.entries = entries
        self.interleave = interleave
        self.per_bank = entries // interleave
        self.slots: dict[tuple[int, int], dict] = {}

    def _slot(self, address: int) -> tuple[int, int]:
        return (
            address % self.interleave,
            (address // self.interleave) % self.per_bank,
        )

    def update(self, address, taken, target):
        slot = self._slot(address)
        entry = self.slots.get(slot)
        if entry is not None and entry["tag"] == address:
            entry["counter"] = (
                min(3, entry["counter"] + 1)
                if taken
                else max(0, entry["counter"] - 1)
            )
            if taken:
                entry["target"] = target
        elif taken:
            self.slots[slot] = {"tag": address, "target": target, "counter": 3}

    def predict(self, address):
        entry = self.slots.get(self._slot(address))
        if entry is None or entry["tag"] != address:
            return (False, False, -1)
        return (True, entry["counter"] >= 2, entry["target"])


_btb_ops = st.lists(
    st.tuples(
        st.booleans(),  # update (True) or predict (False)
        st.integers(min_value=0, max_value=300),  # address
        st.booleans(),  # taken
        st.integers(min_value=0, max_value=300),  # target
    ),
    max_size=200,
)


class TestBTBAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(_btb_ops)
    def test_matches_reference(self, operations):
        real = BranchTargetBuffer(num_entries=32, interleave=4)
        reference = _ReferenceBTB(entries=32, interleave=4)
        for is_update, address, taken, target in operations:
            if is_update:
                real.update(address, taken, target)
                reference.update(address, taken, target)
            else:
                prediction = real.predict(address)
                hit, taken_ref, target_ref = reference.predict(address)
                assert prediction.hit == hit
                assert prediction.taken == taken_ref
                if prediction.taken:
                    assert prediction.target == target_ref


class _ReferenceCache:
    """Dictionary reference for the direct-mapped cache."""

    def __init__(self, sets: int) -> None:
        self.sets = sets
        self.tags: dict[int, int] = {}

    def fill(self, block):
        self.tags[block % self.sets] = block

    def probe(self, block):
        return self.tags.get(block % self.sets) == block


_cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["fill", "probe", "access_and_fill", "flush"]),
        st.integers(min_value=0, max_value=500),
    ),
    max_size=200,
)


class TestCacheAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(_cache_ops)
    def test_matches_reference(self, operations):
        real = InstructionCache(size_bytes=256, block_bytes=16)  # 16 sets
        reference = _ReferenceCache(sets=16)
        for op, block in operations:
            if op == "fill":
                real.fill(block)
                reference.fill(block)
            elif op == "access_and_fill":
                hit = real.access_and_fill(block)
                assert hit == reference.probe(block)
                reference.fill(block)
            elif op == "flush":
                real.flush()
                reference.tags.clear()
            else:
                assert real.probe(block) == reference.probe(block)


class TestPreciseStateProperty:
    def test_future_file_matches_inorder_semantics(self):
        """After a full simulation, the Future file's last writer per
        register equals the last architectural writer in trace order —
        the precise-interrupt guarantee of the ROB + Future file pair."""
        from repro.machines import PI4
        from repro.sim import Simulator
        from repro.workloads import generate_trace, load_workload

        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 4000)
        sim = Simulator(PI4, trace, "collapsing_buffer")
        sim.run()

        expected: dict[int, int] = {}
        for seq, instr in enumerate(trace.instructions):
            if instr.dest >= 0:
                expected[instr.dest] = seq
        for reg, seq in expected.items():
            assert sim.core.future_file.last_writer(reg) == seq
