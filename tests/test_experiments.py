"""Tests for the experiment harness (scaled-down configurations)."""

import pytest

from repro.experiments import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    fig03_bounds,
    fig10_eir,
    table2_intra_block,
    table3_taken_reduction,
    table4_nop_padding,
    variant_program,
    variant_trace,
)
from repro.experiments.report import EXPERIMENTS, run_experiments

#: Small config so experiment tests stay fast.
FAST = ExperimentConfig(
    trace_length=4000, eir_length=6000, stats_length=12000, warmup=1000
)


class TestCommon:
    def test_variant_program_kinds(self):
        for variant in ("orig", "reordered", "pad_all", "pad_trace"):
            program, behavior = variant_program("compress", variant, 4)
            program.cfg.validate()

    def test_unknown_variant(self):
        with pytest.raises(KeyError, match="unknown variant"):
            variant_program("compress", "superblock")

    def test_variant_trace_cached(self):
        a = variant_trace("li", "orig", 2000, 0)
        b = variant_trace("li", "orig", 2000, 0)
        assert a is b  # lru-cached

    def test_padded_variants_contain_nops(self):
        program, _ = variant_program("compress", "pad_all", 8)
        assert program.static_nop_fraction() > 0.2


class TestTableExperiments:
    def test_table2_shape(self):
        result = table2_intra_block.run(FAST)
        assert len(result.rows) == 15
        for row in result.rows:
            # Intra-block fraction grows (weakly) with block size.
            assert row[2] <= row[3] + 3 <= row[4] + 8
            assert 0 <= row[2] <= 100

    def test_table2_known_signatures(self):
        result = table2_intra_block.run(FAST)
        values = {row[1]: row[2:] for row in result.rows}
        # nasa7 is flat near zero; mdljdp2 spikes at 64B (paper).
        assert values["nasa7"][2] < 8
        assert values["mdljdp2"][2] > 40
        assert values["mdljdp2"][2] > values["nasa7"][2] + 30

    def test_table3_reductions_positive(self):
        result = table3_taken_reduction.run(FAST)
        assert len(result.rows) == 9
        measured = [row[1] for row in result.rows]
        assert sum(m > 0 for m in measured) >= 8
        assert all(m < 60 for m in measured)

    def test_table4_pad_trace_cheaper(self):
        result = table4_nop_padding.run(FAST)
        for row in result.rows:
            # pad-all >> pad-trace at every block size.
            assert row[1] > row[2]
            assert row[3] > row[4]
            assert row[5] > row[6]
            # growth with block size
            assert row[1] < row[3] < row[5]


class TestSimulationExperiments:
    def test_fig03_bounds(self):
        result = fig03_bounds.run(FAST)
        assert len(result.rows) == 6
        for row in result.rows:
            _, _, seq, perfect, gap = row
            assert seq <= perfect
            assert 0 <= gap < 100

    def test_fig10_ratios(self):
        result = fig10_eir.run(FAST)
        for row in result.rows:
            ratios = row[3:]
            assert all(0 < r <= 105 for r in ratios)
            # sequential <= collapsing buffer
            assert ratios[0] <= ratios[-1]

    def test_run_experiments_selector(self):
        results = run_experiments(["table4"], FAST)
        assert len(results) == 1
        assert results[0].experiment == "table4"
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["fig99"], FAST)

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig03",
            "table2",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "table3",
            "table4",
            "fig13",
        }

    def test_result_renders(self):
        result = table4_nop_padding.run(FAST)
        text = result.as_text()
        assert "pad-all" in text
        assert result.title in text


class TestDetailVariants:
    def test_fig09_detail_rows(self):
        from repro.experiments import fig09_schemes

        result = fig09_schemes.run_detail(FAST)
        assert len(result.rows) == 15 * 3
        for row in result.rows:
            ipcs = row[3:]
            assert all(0 < value <= 12.5 for value in ipcs)
            assert ipcs[-1] * 1.05 >= max(ipcs)  # perfect ~dominates

    def test_fig10_detail_rows(self):
        from repro.experiments import fig10_eir

        result = fig10_eir.run_detail(FAST)
        assert len(result.rows) == 15 * 3
        for row in result.rows:
            assert all(0 < ratio <= 105 for ratio in row[4:])


class TestSerialisation:
    def test_as_records_and_json(self):
        import json

        result = table4_nop_padding.run(FAST)
        records = result.as_records()
        assert len(records) == len(result.rows)
        assert set(records[0]) == set(result.headers)
        decoded = json.loads(result.to_json())
        assert decoded["experiment"] == "table4"
        assert decoded["rows"] == [list(r) for r in json.loads(
            result.to_json())["rows"]]
