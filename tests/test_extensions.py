"""Tests for the beyond-paper extensions: RAS, direction predictors in
the fetch path, trace cache, and bank overrides."""

import pytest

from repro.branch import GShare, ReturnAddressStack, StaticBTFNT
from repro.fetch import TraceCacheFetch, create_fetch_unit
from repro.fetch.trace_cache import TraceCacheFetch as TCF
from repro.isa import Instruction, OpClass
from repro.machines import PI4, PI8
from repro.sim import Simulator
from repro.workloads import generate_trace, load_workload


class TestReturnAddressStack:
    def test_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_empty_pop(self):
        assert ReturnAddressStack().pop() == -1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() == -1

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestPredictorsInFetchPath:
    def make_unit(self, **kwargs):
        workload = load_workload("li")
        trace = generate_trace(workload.program, workload.behavior, 4000)
        return create_fetch_unit("sequential", PI4, trace, **kwargs), trace

    def test_direction_predictor_is_trained(self):
        predictor = GShare()
        unit, trace = self.make_unit(direction_predictor=predictor)
        branch = Instruction(OpClass.BR_COND, address=100, target=200)
        unit.train(branch, True, 200)
        # Entry allocated; direction now routed through the predictor.
        prediction = unit.predict_slot(100)
        assert prediction.hit

    def test_static_predictor_overrides_counter(self):
        unit, _ = self.make_unit(direction_predictor=StaticBTFNT())
        forward = Instruction(OpClass.BR_COND, address=10, target=50)
        unit.train(forward, True, 50)
        unit.train(forward, True, 50)
        # Counter says taken, BTFNT says forward-not-taken: BTFNT wins.
        assert not unit.predict_slot(10).taken

    def test_ras_predicts_changing_return_targets(self):
        unit, _ = self.make_unit(return_stack=ReturnAddressStack())
        ret = Instruction(OpClass.RET, address=500)
        call_a = Instruction(OpClass.CALL, address=100, target=500)
        # Train: call from 100, return to 101; BTB caches target 101.
        unit.train(call_a, True, 500)
        unit.train(ret, True, 101)
        # Fetch path: predict the call (pushes 101), then the return.
        assert unit.predict_slot(100).taken
        prediction = unit.predict_slot(500)
        assert prediction.taken
        assert prediction.target == 101
        # A second call site pushes a different return address; the BTB
        # alone would still say 101, the RAS corrects it.
        call_b = Instruction(OpClass.CALL, address=300, target=500)
        unit.train(call_b, True, 500)
        assert unit.predict_slot(300).taken  # pushes 301
        assert unit.predict_slot(500).target == 301

    def test_ras_improves_call_heavy_ipc(self):
        workload = load_workload("li")  # call-dominated interpreter
        trace = generate_trace(workload.program, workload.behavior, 12000)
        base = Simulator(PI8, trace, "collapsing_buffer", warmup=3000).run()
        with_ras = Simulator(
            PI8,
            trace,
            create_fetch_unit(
                "collapsing_buffer",
                PI8,
                trace,
                return_stack=ReturnAddressStack(),
            ),
            warmup=3000,
        ).run()
        assert with_ras.fetch_mispredicts <= base.fetch_mispredicts
        assert with_ras.ipc >= base.ipc * 0.995

    def test_num_banks_override(self):
        workload = load_workload("li")
        trace = generate_trace(workload.program, workload.behavior, 1000)
        unit = create_fetch_unit("banked_sequential", PI4, trace, num_banks=8)
        assert unit.cache.num_banks == 8


class TestTraceCache:
    def make(self, bench="espresso", n=8000, machine=PI8, **kwargs):
        workload = load_workload(bench)
        trace = generate_trace(workload.program, workload.behavior, n)
        return TraceCacheFetch(machine, trace, **kwargs), trace

    def test_registered_in_factory(self):
        workload = load_workload("li")
        trace = generate_trace(workload.program, workload.behavior, 500)
        unit = create_fetch_unit("trace_cache", PI8, trace)
        assert isinstance(unit, TCF)

    def test_lines_fill_and_hit(self):
        unit, trace = self.make()
        sim = Simulator(PI8, trace, unit, warmup=2000)
        sim.run()
        assert unit.trace_hits > 0
        assert 0 < unit.trace_hit_ratio <= 1.0
        assert len(unit._lines) <= unit.num_lines

    def test_lines_deliver_across_taken_branches(self):
        """A hit line may span taken branches that would cut the
        fallback scheme's group."""
        unit, trace = self.make()
        sim = Simulator(PI8, trace, unit, warmup=2000)
        stats = sim.run()
        # Sanity: the run completes (retired counts the post-warmup region).
        assert stats.retired >= len(trace.instructions) - 2000 - PI8.issue_rate

    def test_capacity_bound(self):
        unit, trace = self.make(num_lines=16)
        Simulator(PI8, trace, unit, warmup=2000).run()
        assert len(unit._lines) <= 16

    def test_correctness_all_instructions_retire(self):
        for bench in ("compress", "tomcatv"):
            unit, trace = self.make(bench=bench, n=5000)
            stats = Simulator(PI8, trace, unit).run()
            assert stats.retired == 5000
