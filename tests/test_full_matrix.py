"""Smoke coverage of the full scheme x machine matrix.

Each cell is a short simulation; the point is breadth (every combination
constructs, runs, and respects basic invariants), not statistical depth.
"""

import pytest

from repro.fetch import ALL_SCHEMES
from repro.machines import MACHINES
from repro.sim import run_workload

MATRIX_BENCHMARKS = ("compress", "tomcatv")


@pytest.mark.parametrize("bench_name", MATRIX_BENCHMARKS)
@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_cell(bench_name, machine, scheme):
    stats = run_workload(
        bench_name, machine, scheme, max_instructions=2500, warmup=500
    )
    assert stats.retired >= 2500 - 500 - machine.issue_rate
    assert 0 < stats.ipc <= machine.issue_rate
    assert 0 < stats.eir <= machine.issue_rate + 0.01
    assert stats.machine == machine.name
    assert stats.scheme == scheme
