"""Tests for aggregation helpers and branch statistics."""

import pytest

from repro.isa import Instruction, OpClass
from repro.metrics import (
    arithmetic_mean,
    format_table,
    harmonic_mean,
    percent,
    taken_branch_reduction,
    taken_branch_stats,
)
from repro.workloads.trace import DynamicTrace


def trace_of(*specs):
    instrs = []
    for spec in specs:
        address, op = spec[0], spec[1]
        instrs.append(Instruction(op, address=address))
    return DynamicTrace(name="t", seed=0, instructions=instrs)


class TestMeans:
    def test_harmonic_mean_basics(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_harmonic_below_arithmetic(self):
        values = [1.0, 2.0, 4.0]
        assert harmonic_mean(values) < arithmetic_mean(values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(1, 0) == 0.0


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "0.12" in text  # floats to 2dp

    def test_alignment(self):
        text = format_table(["x"], [[100], [1]])
        rows = text.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])


class TestTakenBranchStats:
    def test_counts_taken_and_intra(self):
        trace = trace_of(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND),  # -> 3: taken, intra-block (k=4)
            (3, OpClass.IALU),
            (4, OpClass.BR_COND),  # -> 5: not taken
            (5, OpClass.JUMP),  # -> 12: taken, inter-block
            (12, OpClass.IALU),
        )
        stats = taken_branch_stats(trace, 4)
        assert stats.total_taken == 2
        assert stats.intra_block == 1
        assert stats.work_instructions == 3

    def test_nops_excluded_from_work(self):
        trace = trace_of((0, OpClass.NOP), (1, OpClass.IALU))
        assert taken_branch_stats(trace, 4).work_instructions == 1

    def test_reduction_normalised_by_work(self):
        before = trace_of(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND),  # taken -> 5
            (5, OpClass.IALU),
        )
        after = trace_of(
            (0, OpClass.IALU),
            (1, OpClass.BR_COND),  # falls through now
            (2, OpClass.IALU),
        )
        assert taken_branch_reduction(before, after) == pytest.approx(1.0)

    def test_zero_guard(self):
        empty = trace_of((0, OpClass.IALU))
        assert taken_branch_reduction(empty, empty) == 0.0

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            taken_branch_stats(trace_of((0, OpClass.IALU)), 0)


class TestCharts:
    def _result(self):
        from repro.experiments.common import ExperimentResult

        return ExperimentResult(
            experiment="fig99",
            title="demo",
            headers=["machine", "a", "b"],
            rows=[["PI4", 1.0, 2.0], ["PI8", 3.0, 4.0]],
        )

    def test_bar_chart_renders_scaled_bars(self):
        from repro.metrics import BarGroup, bar_chart

        text = bar_chart(
            ["x", "y"],
            [BarGroup("g1", [1.0, 2.0]), BarGroup("g2", [4.0, 0.5])],
            width=20,
            title="T",
        )
        assert "T" in text
        assert "4.00" in text
        # The maximum value owns the full width.
        peak_line = next(line for line in text.splitlines() if "4.00" in line)
        assert peak_line.count("█") == 20

    def test_bar_chart_validates(self):
        import pytest as _pytest

        from repro.metrics import BarGroup, bar_chart

        with _pytest.raises(ValueError):
            bar_chart(["x"], [])
        with _pytest.raises(ValueError):
            bar_chart(["x", "y"], [BarGroup("g", [1.0])])
        with _pytest.raises(ValueError):
            bar_chart(["x"], [BarGroup("g", [0.0])])

    def test_result_chart_groups_by_leading_text(self):
        from repro.metrics import result_chart

        text = result_chart(self._result())
        assert "PI4:" in text and "PI8:" in text
        assert "demo" in text

    def test_result_chart_column_filter(self):
        from repro.metrics import result_chart

        text = result_chart(self._result(), columns=["b"])
        assert " a " not in text
        import pytest as _pytest

        with _pytest.raises(ValueError):
            result_chart(self._result(), columns=["zzz"])
