"""Tests for the simulation service: HTTP server, scheduler, client.

Each test spins a real :class:`ServiceServer` on an ephemeral port (an
asyncio loop on a daemon thread) over a :class:`WorkerPool`, then talks
to it with the stdlib-backed :class:`ServiceClient` — the same stack
``repro serve`` and ``repro loadgen`` use.  The chaos tests arm
``REPRO_FAULTS`` and prove crashed workers and injected queue failures
never lose an accepted job or hang a client.
"""

import asyncio
import contextlib
import multiprocessing
import os
import threading

import pytest

from repro import faults
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import run_loadgen
from repro.service.protocol import ValidationError, job_key, validate_job
from repro.service.scheduler import JobScheduler
from repro.service.server import ServiceServer
from repro.sim import cache
from repro.sim.batch import SimJob, _run_job
from repro.sim.supervisor import SupervisorConfig, SweepJournal, WorkerPool

#: Fast supervision policy so retries/backoff cost milliseconds.
FAST = SupervisorConfig(
    max_attempts=3,
    backoff_base=0.01,
    backoff_max=0.05,
    backoff_jitter=0.1,
    poll_interval=0.01,
)

FORK_ONLY = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

JOB = {
    "benchmark": "ora",
    "machine": "PI4",
    "scheme": "sequential",
    "length": 2_000,
    "warmup": 400,
}


def arm(spec: str) -> None:
    os.environ["REPRO_FAULTS"] = spec
    faults.reload()


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    """Isolated result cache; faults disarmed on the way out."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reload()
    yield
    os.environ.pop("REPRO_FAULTS", None)
    faults.reload()
    cache.reset_runtime_disable()
    cache.reset_stats()


@contextlib.contextmanager
def service(processes=0, max_queue=8, config=None, start_method=None):
    """A live server on an ephemeral port; drains on exit."""
    pool = WorkerPool(
        _run_job,
        processes=processes,
        config=config or FAST,
        requested_start_method=start_method,
    )
    scheduler = JobScheduler(pool, max_queue=max_queue)
    server = ServiceServer(scheduler, port=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_until_complete(server.run(install_signal_handlers=False))
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    try:
        yield server, scheduler, pool
    finally:
        loop.call_soon_threadsafe(server.request_shutdown)
        thread.join(60)
        assert not thread.is_alive(), "server did not shut down"


# -- protocol -----------------------------------------------------------------


def test_validate_job_fills_defaults():
    job = validate_job({"benchmark": "ora", "machine": "PI4", "scheme": "sequential"})
    assert isinstance(job, SimJob)
    assert (job.variant, job.length, job.warmup) == ("orig", 20_000, 4_000)
    assert job_key(job) == SweepJournal.job_key(job)


def test_validate_job_collects_every_error():
    with pytest.raises(ValidationError) as excinfo:
        validate_job(
            {
                "benchmark": "nope",
                "machine": "PI999",
                "scheme": "wat",
                "length": 7,
                "bogus": 1,
            }
        )
    text = "\n".join(excinfo.value.errors)
    assert len(excinfo.value.errors) >= 5
    for fragment in ("benchmark", "machine", "scheme", "length", "bogus"):
        assert fragment in text


def test_validate_job_rejects_non_object():
    with pytest.raises(ValidationError):
        validate_job([1, 2, 3])
    with pytest.raises(ValidationError):
        validate_job({"benchmark": "ora", "machine": "PI4", "scheme": "sequential", "warmup": 5_000, "length": 1_000})


# -- basic HTTP surface -------------------------------------------------------


def test_health_metrics_and_routing():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["pool"]["serial"] is True
            metrics = client.metrics()
            assert metrics["queue"] == {"depth": 0, "max": 8}
            assert "result_cache" in metrics
            assert client.request("GET", "/nope").status == 404
            assert client.request("GET", "/v1/jobs/job-9").status == 404
            assert client.request("PUT", "/healthz").status == 405
            assert client.request("POST", "/v1/jobs", None).status == 400


def test_submit_runs_job_bit_identical_to_direct_simulator():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            record = client.run_job(JOB, wait=30)
    assert record["status"] == "done"
    direct = _run_job(validate_job(JOB)).as_dict()
    assert record["result"] == direct


def test_validation_failure_is_400_with_details():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"benchmark": "nope", **{k: v for k, v in JOB.items() if k != "benchmark"}})
    assert excinfo.value.status == 400
    assert any("benchmark" in d for d in excinfo.value.payload["details"])


def test_batch_endpoint_mixed_outcomes():
    bad = dict(JOB, scheme="wat")
    other = dict(JOB, machine="PI8")
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            out = client.submit_batch([JOB, bad, other, JOB])
            assert out["accepted"] == 3
            assert [item["accepted"] for item in out["jobs"]] == [
                True,
                False,
                True,
                True,
            ]
            # The duplicate coalesced onto the first submission.
            assert out["jobs"][3]["id"] == out["jobs"][0]["id"]
            assert out["jobs"][3]["disposition"] == "coalesced"
            done = client.poll(out["jobs"][0]["id"], wait=30)
            assert done["status"] == "done"


# -- coalescing and admission control -----------------------------------------


def test_identical_concurrent_requests_cost_one_simulation():
    spec = dict(JOB, scheme="banked_sequential", seed=3)
    results = []
    with service(max_queue=16) as (server, scheduler, pool):

        def one() -> None:
            with ServiceClient(port=server.port) as client:
                results.append(client.run_job(spec, wait=30))

        threads = [threading.Thread(target=one) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        with ServiceClient(port=server.port) as client:
            counters = client.metrics()["service"]["counters"]
        info = pool.info()
    assert len(results) == 5
    assert len({r["id"] for r in results}) == 1  # one shared record
    assert len({str(r["result"]) for r in results}) == 1
    assert counters["service.jobs_admitted"] == 1
    assert counters["service.jobs_coalesced"] == 4
    assert info["submitted"] == 1  # single flight through the pool


def test_repeat_of_finished_job_served_from_memo():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            first = client.run_job(JOB, wait=30)
            again = client.submit(JOB, wait=5)
            assert again["disposition"] == "memo"
            assert again["status"] == "done"
            assert again["id"] == first["id"]
            assert again["result"] == first["result"]
        assert pool.info()["submitted"] == 1


def test_full_queue_rejects_with_429_and_retry_after():
    statuses = []
    headers = []
    with service(max_queue=1) as (server, scheduler, pool):
        specs = [
            dict(JOB, length=50_000, warmup=400, seed=100 + i)
            for i in range(4)
        ]

        def slam(spec) -> None:
            with ServiceClient(port=server.port, max_retries=0) as client:
                response = client._request_once("POST", "/v1/jobs", spec)
                statuses.append(response.status)
                headers.append(response.headers)

        threads = [threading.Thread(target=slam, args=(s,)) for s in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
    assert statuses.count(429) == 3  # one admitted, three refused
    for status, hdrs in zip(statuses, headers):
        if status == 429:
            assert float(hdrs["retry-after"]) >= 1


def test_drain_rejects_new_work_with_503():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port, max_retries=0) as client:
            client.run_job(JOB, wait=30)
            assert scheduler.drain(timeout=10)
            assert client.health()["status"] == "draining"
            with pytest.raises(ServiceError) as excinfo:
                client.submit(dict(JOB, seed=9))
            assert excinfo.value.status == 503


def test_readyz_is_distinct_from_healthz():
    """Liveness vs readiness: a draining replica still answers
    ``/healthz`` 200 (the process is alive) but ``/readyz`` flips to 503
    so a balancer stops routing to it."""
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port, max_retries=0) as client:
            response = client._request_once("GET", "/readyz", None)
            assert response.status == 200
            assert response.payload["ready"] is True
            assert response.payload["max_queue"] == scheduler.max_queue

            assert scheduler.drain(timeout=10)
            # _request_once, not request(): the retrying path treats 503
            # as transient, and a draining replica never becomes ready.
            response = client._request_once("GET", "/readyz", None)
            assert response.status == 503
            assert response.payload["ready"] is False
            assert client.health()["status"] == "draining"


# -- chaos: the robustness stack composes with the service --------------------


def test_injected_queue_fault_rejects_cleanly():
    arm("seed=11;service.queue=exc:p=1:n=1")
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port, max_retries=0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(JOB)
            assert excinfo.value.status == 503
            # Nothing was accepted, nothing leaked; a retry succeeds.
            assert scheduler.queue_depth == 0
            record = client.run_job(JOB, wait=30)
            assert record["status"] == "done"
            counters = client.metrics()["service"]["counters"]
            assert counters["service.queue_faults"] == 1
    # ...and the retrying client rides a queue fault automatically.
    arm("seed=11;service.queue=exc:p=1:n=1")
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port, backoff=0.05) as client:
            assert client.run_job(JOB, wait=30)["status"] == "done"


@FORK_ONLY
def test_worker_crashes_never_lose_accepted_jobs():
    specs = [dict(JOB, scheme=s, seed=7) for s in (
        "sequential",
        "collapsing_buffer",
        "banked_sequential",
        "perfect",
    )]
    expected = [_run_job(validate_job(s)).as_dict() for s in specs]
    arm("seed=5;batch.worker=crash:a=1")  # every job's 1st attempt dies
    results = {}
    with service(processes=2, start_method="fork", max_queue=8) as (
        server,
        scheduler,
        pool,
    ):

        def one(index, spec) -> None:
            with ServiceClient(port=server.port) as client:
                results[index] = client.run_job(spec, wait=30, deadline=120)

        threads = [
            threading.Thread(target=one, args=(i, s))
            for i, s in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        info = pool.info()
    assert sorted(results) == [0, 1, 2, 3]  # no hung clients
    for index, want in enumerate(expected):
        assert results[index]["status"] == "done"
        assert results[index]["result"] == want  # bit-identical recovery
    assert info["worker_failures"] >= 4  # the crashes really happened


@FORK_ONLY
def test_injected_handoff_fault_costs_one_attempt():
    arm("seed=3;service.handoff=exc:a=1")
    with service(processes=1, start_method="fork") as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            record = client.run_job(JOB, wait=30, deadline=120)
    assert record["status"] == "done"
    assert record["result"] == _run_job(validate_job(JOB)).as_dict()


# -- loadgen ------------------------------------------------------------------


def test_loadgen_smoke(tmp_path):
    out = tmp_path / "bench.json"
    with service(max_queue=32) as (server, scheduler, pool):
        report = run_loadgen(
            port=server.port,
            clients=2,
            duration=0.6,
            mix=[JOB, dict(JOB, machine="PI8")],
            output=out,
            quiet=True,
        )
    assert out.exists()
    timed = report["timed_phase"]
    assert timed["requests_completed"] > 0
    assert timed["requests_failed"] == 0
    assert timed["latency_seconds"]["p99"] >= timed["latency_seconds"]["p50"]
    assert report["floors"] == {
        "throughput_rps_min": 50.0,
        "p99_seconds_max": 0.25,
    }


def test_loadgen_reports_client_vs_server_latency(tmp_path):
    report = None
    with service(max_queue=32) as (server, scheduler, pool):
        report = run_loadgen(
            port=server.port,
            clients=2,
            duration=0.6,
            mix=[JOB],
            output=None,
            quiet=True,
        )
    timed = report["timed_phase"]
    assert timed["requests_completed"] > 0
    # Every request carries a server-reported duration; the delta is
    # the queueing/network time the client-only numbers used to hide.
    assert timed["server_seconds"]["p50"] > 0
    assert timed["client_server_delta_seconds"]["mean"] >= 0
    assert (
        timed["server_seconds"]["p50"]
        <= timed["latency_seconds"]["p50"] + 1e-6
    )


# -- tracing ------------------------------------------------------------------


@pytest.fixture()
def traced(monkeypatch):
    from repro.telemetry import trace as tracing

    monkeypatch.setenv("REPRO_TRACE", "1")
    tracing.reload()
    tracing.recorder.clear()
    yield tracing
    tracing.recorder.clear()
    os.environ.pop("REPRO_TRACE", None)
    tracing.reload()


def test_traced_job_joins_one_trace_with_span_conservation(traced):
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            first = client.run_job(JOB)
            trace_id = client.last_trace_id
            assert trace_id is not None
            assert first["trace_id"] == trace_id
            second = client.run_job(dict(JOB, scheme="collapsing_buffer"))
    spans = traced.recorder.spans()
    # Exactly one service.job root per accepted job.
    roots = [s for s in spans if s.name == "service.job"]
    assert len(roots) == 2
    assert len({s.trace_id for s in roots}) == 2
    for root in roots:
        children = [s for s in spans if s.parent_id == root.span_id]
        assert sorted(s.name for s in children) == [
            "batch.job",
            "pool.queue_wait",
        ]
        # Conservation: queue wait plus execution fit inside the job.
        assert sum(s.duration for s in children) <= root.duration + 0.05
    # The client-side spans joined the same traces end to end.
    mine = [s for s in spans if s.trace_id == trace_id]
    assert {s.name for s in mine} >= {
        "client.request",
        "client.submit",
        "service.request",
        "service.job",
        "batch.job",
    }
    assert second["status"] == "done"


def test_traceparent_echo_and_traces_endpoint(traced):
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            with traced.span("probe", parent=None) as probe:
                response = client.request("GET", "/healthz")
                assert response.headers["traceparent"].startswith(
                    f"00-{probe.span.trace_id}-"
                )
            record = client.run_job(JOB)
            listing = client.request("GET", "/v1/traces").payload
            assert record["trace_id"] in {
                row["trace_id"] for row in listing["traces"]
            }
            detail = client.request(
                "GET", f"/v1/traces/{record['trace_id'][:12]}"
            ).payload
            names = {s["name"] for s in detail["spans"]}
            assert "service.job" in names and "batch.job" in names


def test_traces_endpoint_when_tracing_off():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            response = client.request("GET", "/v1/traces/deadbeef")
            assert response.status == 404
            assert "REPRO_TRACE" in str(response.payload)


def test_metrics_prometheus_exposition():
    with service() as (server, scheduler, pool):
        with ServiceClient(port=server.port) as client:
            client.run_job(JOB)
            # Default stays JSON for existing scrapers of the endpoint.
            assert isinstance(client.metrics()["queue"], dict)
            response = client.request("GET", "/metrics?format=prom")
            assert response.status == 200
            assert response.headers["content-type"].startswith("text/plain")
            text = response.payload["raw"]
    assert "# TYPE repro_service_jobs_admitted counter" in text
    assert "repro_service_jobs_admitted 1" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert text.endswith("\n")
