"""Tests for ``repro.analysis`` (the ``repro lint`` static analyzers)
and the :mod:`repro.knobs` runtime registry they enforce.

Each analyzer is exercised against a tiny seeded-violation fixture tree
(one per finding code), plus negatives for the patterns the lints must
*allow*.  The repository itself is the final fixture: the suite asserts
the real tree is lint-clean and that the knob registry covers every
``REPRO_*`` name a plain text grep of ``src/`` discovers.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro import knobs
from repro.analysis import (
    ANALYSIS_CODES,
    ANALYZERS,
    Baseline,
    Finding,
    Project,
    run_lint,
)
from repro.analysis import knob_registry
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

# -- fixture tree -------------------------------------------------------------

#: A minimal project that every analyzer passes with zero findings.
#: Violation tests override individual files.
CLEAN = {
    "src/pkg/__init__.py": "",
    "src/pkg/knobs.py": """
        import os

        class KnobSpec:
            def __init__(self, name, type, default, cache_policy,
                         reason="", description=""):
                self.name = name
                self.cache_policy = cache_policy

        KNOBS = (
            KnobSpec(
                name="REPRO_DEMO",
                type="bool",
                default="0",
                cache_policy="salted",
                description="demo switch",
            ),
            KnobSpec(
                name="REPRO_AUX",
                type="int",
                default="3",
                cache_policy="exempt",
                reason="does not change simulated results",
                description="aux tuning",
            ),
        )
        REGISTRY = {spec.name: spec for spec in KNOBS}

        def raw(name):
            return os.environ.get(name, "")

        def enabled(name):
            return raw(name) == "1"

        def get_int(name):
            return int(raw(name) or 0)

        def salted_knobs():
            return tuple(
                s.name for s in KNOBS if s.cache_policy == "salted"
            )

        def fingerprint():
            return tuple(os.environ.get(n, "") for n in salted_knobs())
    """,
    "src/pkg/cache.py": """
        from pkg import knobs

        def cache_key(payload):
            return (payload, knobs.fingerprint())
    """,
    "src/pkg/faults.py": """
        SITES = ("demo.site",)

        def decide(site, token=None):
            return None

        def maybe_fail(site, token=None):
            return None
    """,
    "src/pkg/app.py": """
        from pkg import faults, knobs

        CODES = {
            "K901": "demo diagnostic",
        }

        def run():
            if knobs.enabled("REPRO_DEMO"):
                faults.maybe_fail("demo.site")
            return knobs.get_int("REPRO_AUX")
    """,
    "tests/test_robustness.py": """
        def test_demo_site_recovery():
            assert "demo.site"

        def test_k901_fires():
            assert "K901"
    """,
    "docs/codes.md": """
        # Codes

        * K901 — demo diagnostic.
    """,
}


def seed(tmp_path, overrides=None):
    """Write the clean fixture (plus *overrides*) under *tmp_path*."""
    files = dict(CLEAN)
    files.update(overrides or {})
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path


def lint_codes(root):
    report = run_lint(root)
    return {(f.code, f.subject) for f in report.findings}


# -- repro.knobs runtime registry ---------------------------------------------


class TestKnobsRuntime:
    def test_spec_rejects_undeclared(self):
        with pytest.raises(KeyError):
            knobs.spec("REPRO_NOT_A_KNOB")

    def test_raw_returns_declared_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_DEEP_PERIOD", raising=False)
        assert knobs.raw("REPRO_CHECK_DEEP_PERIOD") == "64"
        monkeypatch.setenv("REPRO_CHECK_DEEP_PERIOD", "7")
        assert knobs.raw("REPRO_CHECK_DEEP_PERIOD") == "7"

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("1", True),
            ("on", True),
            ("yes", True),
            ("TRUE", True),
            ("0", False),
            ("off", False),
            ("false", False),
            ("no", False),
            ("", False),
            ("  0  ", False),
        ],
    )
    def test_enabled_value_grammar(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert knobs.enabled("REPRO_SANITIZE") is expected

    def test_get_int_falls_back_on_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_DEEP_PERIOD", "not-a-number")
        assert knobs.get_int("REPRO_CHECK_DEEP_PERIOD") == 64

    def test_get_float_falls_back_on_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_CLAIM_TTL", "soon")
        assert knobs.get_float("REPRO_CACHE_CLAIM_TTL") == 120.0

    def test_salted_knobs_policy(self):
        assert knobs.salted_knobs() == (
            "REPRO_SANITIZE",
            "REPRO_CHECK_DEEP_PERIOD",
            "REPRO_TELEMETRY",
            "REPRO_KERNEL",
        )

    def test_fingerprint_tracks_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        before = knobs.fingerprint()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        after = knobs.fingerprint()
        assert before != after
        assert after[knobs.salted_knobs().index("REPRO_TELEMETRY")] == "1"

    def test_every_exempt_knob_has_a_reason(self):
        for spec in knobs.KNOBS:
            if spec.cache_policy == "exempt":
                assert spec.reason, spec.name

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            knobs.KnobSpec(
                name="NOT_PREFIXED",
                type="bool",
                default="0",
                cache_policy="salted",
            )
        with pytest.raises(ValueError):
            knobs.KnobSpec(
                name="REPRO_BAD",
                type="bool",
                default="0",
                cache_policy="exempt",  # exempt without a reason
            )


class TestRegistryCoverage:
    def test_registry_covers_every_grep_discovered_knob(self):
        """Any ``REPRO_*`` token in ``src/`` names a declared knob (the
        analysis package is excluded: its docstrings use placeholder
        knob names when describing the rules)."""
        token = re.compile(r"REPRO_[A-Z0-9_]+")
        discovered = set()
        for path in (REPO_ROOT / "src").rglob("*.py"):
            if "analysis" in path.parts:
                continue
            discovered.update(token.findall(path.read_text()))
        assert discovered, "grep found no knobs at all?"
        assert discovered <= set(knobs.REGISTRY)
        assert len(knobs.REGISTRY) == 19

    def test_analyzer_sees_every_knob(self):
        project = Project(REPO_ROOT)
        reads = {r.name for r in knob_registry.collect_reads(project)}
        declared = {d.name for d in knob_registry.parse_registry(project)}
        assert reads == declared == set(knobs.REGISTRY)


# -- knob-registry analyzer (A010-A013) ---------------------------------------


class TestKnobRegistryAnalyzer:
    def test_clean_fixture_has_no_findings(self, tmp_path):
        root = seed(tmp_path)
        report = run_lint(root)
        assert report.findings == [] and report.warnings == []

    def test_undeclared_knob_read_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import knobs

                    def hidden():
                        return knobs.raw("REPRO_OTHER")
                """
            },
        )
        assert ("A010", "REPRO_OTHER") in lint_codes(root)

    def test_unsalted_cache_key_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/cache.py": """
                    _KEY_KNOBS = ("REPRO_AUX",)

                    def cache_key(payload):
                        return (payload, _KEY_KNOBS)
                """
            },
        )
        codes = lint_codes(root)
        assert ("A011", "REPRO_DEMO") in codes  # salted, not in the key
        assert ("A011", "REPRO_AUX") not in codes  # exempt with reason

    def test_explicit_salted_list_accepted(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/cache.py": """
                    _KEY_KNOBS = ("REPRO_DEMO",)

                    def cache_key(payload):
                        return (payload, _KEY_KNOBS)
                """
            },
        )
        assert lint_codes(root) == set()

    def test_stale_declaration_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/app.py": """
                    from pkg import faults, knobs

                    CODES = {
                        "K901": "demo diagnostic",
                    }

                    def run():
                        faults.maybe_fail("demo.site")
                        return knobs.get_int("REPRO_AUX")
                """
            },
        )
        # REPRO_DEMO is still declared and cache-salted, but unread.
        assert ("A012", "REPRO_DEMO") in lint_codes(root)

    def test_registry_bypass_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    import os

                    def sneaky():
                        return os.environ.get("REPRO_DEMO", "0")
                """
            },
        )
        codes = lint_codes(root)
        assert ("A013", "REPRO_DEMO") in codes
        assert ("A010", "REPRO_DEMO") not in codes  # declared, just bypassed

    def test_getenv_and_subscript_reads_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    import os
                    from os import environ

                    def sneaky():
                        return os.getenv("REPRO_DEMO"), environ["REPRO_AUX"]
                """
            },
        )
        codes = lint_codes(root)
        assert ("A013", "REPRO_DEMO") in codes
        assert ("A013", "REPRO_AUX") in codes

    def test_environment_writes_allowed(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    import os

                    def arm_child():
                        os.environ["REPRO_DEMO"] = "1"
                """
            },
        )
        assert lint_codes(root) == set()


# -- concurrency analyzer (A020-A022) -----------------------------------------


class TestConcurrencyAnalyzer:
    def test_shared_queue_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/chan.py": """
                    import multiprocessing

                    def build():
                        return multiprocessing.Queue()
                """
            },
        )
        assert ("A020", "Queue") in lint_codes(root)

    def test_context_queue_flagged_simplequeue_allowed(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/chan.py": """
                    import multiprocessing

                    def build():
                        ctx = multiprocessing.get_context("spawn")
                        good = ctx.SimpleQueue()
                        bad = ctx.Queue()
                        return good, bad
                """
            },
        )
        codes = lint_codes(root)
        assert ("A020", "Queue") in codes
        assert not any(subject == "SimpleQueue" for _, subject in codes)

    def test_blocking_call_in_async_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/srv.py": """
                    import time

                    async def handle(request):
                        time.sleep(0.1)
                        return request
                """
            },
        )
        assert ("A021", "time.sleep") in lint_codes(root)

    def test_open_in_async_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/srv.py": """
                    async def handle(path):
                        with open(path) as fh:
                            return fh.read()
                """
            },
        )
        assert ("A021", "open") in lint_codes(root)

    def test_executor_handoff_allowed(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/srv.py": """
                    import asyncio
                    import time

                    async def handle(request):
                        def work():
                            time.sleep(0.1)
                            return request
                        return await asyncio.to_thread(work)
                """
            },
        )
        assert lint_codes(root) == set()

    def test_inconsistent_lock_order_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/locks.py": """
                    import threading

                    a_lock = threading.Lock()
                    b_lock = threading.Lock()

                    def forward():
                        with a_lock:
                            with b_lock:
                                return 1

                    def backward():
                        with b_lock:
                            with a_lock:
                                return 2
                """
            },
        )
        assert ("A022", "a_lock<->b_lock") in lint_codes(root)

    def test_consistent_lock_order_allowed(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/locks.py": """
                    import threading

                    a_lock = threading.Lock()
                    b_lock = threading.Lock()

                    def forward():
                        with a_lock:
                            with b_lock:
                                return 1

                    def also_forward():
                        with a_lock, b_lock:
                            return 2
                """
            },
        )
        assert lint_codes(root) == set()


# -- service-errors analyzer (A023) -------------------------------------------


class TestServiceErrorsAnalyzer:
    def test_swallowed_connection_error_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(sock):
                        try:
                            return sock.recv(1)
                        except ConnectionError:
                            pass
                """
            },
        )
        assert ("A023", "ConnectionError") in lint_codes(root)

    def test_tuple_catch_reports_network_members_only(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(sock):
                        try:
                            return sock.recv(1)
                        except (ValueError, OSError, BrokenPipeError):
                            return None
                """
            },
        )
        assert ("A023", "BrokenPipeError,OSError") in lint_codes(root)

    def test_reraise_is_exempt(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(sock):
                        try:
                            return sock.recv(1)
                        except ConnectionResetError:
                            raise RuntimeError("replica gone")
                """
            },
        )
        assert lint_codes(root) == set()

    def test_record_call_is_exempt(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(replica, sock):
                        try:
                            return sock.recv(1)
                        except OSError as exc:
                            replica.record_failure(str(exc))
                            return None
                """
            },
        )
        assert lint_codes(root) == set()

    def test_counter_call_is_exempt(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(registry, sock):
                        try:
                            return sock.recv(1)
                        except ConnectionRefusedError:
                            registry.inc("balance.upstream_errors")
                            return None
                """
            },
        )
        assert lint_codes(root) == set()

    def test_timeout_and_non_network_errors_ignored(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/service/proxy.py": """
                    def forward(sock):
                        try:
                            return sock.recv(1)
                        except TimeoutError:
                            pass

                    def parse(raw):
                        try:
                            return int(raw)
                        except ValueError:
                            return None
                """
            },
        )
        assert lint_codes(root) == set()

    def test_same_swallow_outside_service_package_ignored(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/engine.py": """
                    def forward(sock):
                        try:
                            return sock.recv(1)
                        except ConnectionError:
                            pass
                """
            },
        )
        assert lint_codes(root) == set()


# -- fault-site analyzer (A030-A032) ------------------------------------------


class TestFaultSiteAnalyzer:
    def test_undeclared_site_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import faults

                    def risky():
                        faults.maybe_fail("other.site")
                """
            },
        )
        assert ("A030", "other.site") in lint_codes(root)

    def test_unfired_declared_site_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/faults.py": """
                    SITES = ("demo.site", "dead.site")

                    def decide(site, token=None):
                        return None

                    def maybe_fail(site, token=None):
                        return None
                """
            },
        )
        assert ("A031", "dead.site") in lint_codes(root)

    def test_chaos_uncovered_site_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/faults.py": """
                    SITES = ("demo.site", "quiet.site")

                    def decide(site, token=None):
                        return None

                    def maybe_fail(site, token=None):
                        return None
                """,
                "src/pkg/extra.py": """
                    from pkg import faults

                    def risky():
                        faults.decide("quiet.site")
                """,
            },
        )
        codes = lint_codes(root)
        assert ("A032", "quiet.site") in codes
        assert ("A031", "quiet.site") not in codes  # it *is* fired

    def test_real_sites_match_declaration(self):
        from repro import faults
        from repro.analysis import fault_sites

        project = Project(REPO_ROOT)
        sites, _ = fault_sites.declared_sites(project)
        assert tuple(sites) == faults.SITES
        used = {u.site for u in fault_sites.collect_uses(project)}
        assert used == set(faults.SITES)


# -- error-code analyzer (A040-A043) ------------------------------------------


class TestErrorCodeAnalyzer:
    def test_duplicate_code_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/more.py": """
                    MORE_CODES = {
                        "K901": "the same code again",
                    }
                """
            },
        )
        assert ("A040", "K901") in lint_codes(root)

    def test_undocumented_code_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/app.py": """
                    from pkg import faults, knobs

                    CODES = {
                        "K901": "demo diagnostic",
                        "K902": "documented nowhere",
                    }

                    def run():
                        if knobs.enabled("REPRO_DEMO"):
                            faults.maybe_fail("demo.site")
                        return knobs.get_int("REPRO_AUX")
                """,
                "tests/test_robustness.py": """
                    def test_demo_site_recovery():
                        assert "demo.site"

                    def test_codes_fire():
                        assert "K901" and "K902"
                """,
            },
        )
        codes = lint_codes(root)
        assert ("A041", "K902") in codes
        assert ("A042", "K902") not in codes  # the test references it

    def test_untested_code_flagged(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/app.py": """
                    from pkg import faults, knobs

                    CODES = {
                        "K901": "demo diagnostic",
                        "K903": "tested nowhere",
                    }

                    def run():
                        if knobs.enabled("REPRO_DEMO"):
                            faults.maybe_fail("demo.site")
                        return knobs.get_int("REPRO_AUX")
                """,
                "docs/codes.md": """
                    # Codes

                    * K901 — demo diagnostic.
                    * K903 — tested nowhere.
                """,
            },
        )
        codes = lint_codes(root)
        assert ("A042", "K903") in codes
        assert ("A041", "K903") not in codes  # the docs cover it

    def test_stale_doc_reference_is_warning(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "docs/codes.md": """
                    # Codes

                    * K901 — demo diagnostic.
                    * T909 — removed long ago.
                """
            },
        )
        report = run_lint(root)
        assert report.findings == []  # warnings never fail the run
        assert [(f.code, f.subject) for f in report.warnings] == [
            ("A043", "T909")
        ]


# -- findings, baseline, report mechanics -------------------------------------


class TestFindingMechanics:
    def test_fingerprint_excludes_line(self):
        a = Finding("A010", "src/x.py", 10, "REPRO_Z", "m")
        b = Finding("A010", "src/x.py", 99, "REPRO_Z", "other")
        assert a.fingerprint == b.fingerprint

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Finding("A999", "src/x.py", 1, "s", "m")

    def test_every_analyzer_code_is_catalogued(self):
        assert set(ANALYSIS_CODES) == {
            "A010", "A011", "A012", "A013",
            "A020", "A021", "A022", "A023",
            "A030", "A031", "A032",
            "A040", "A041", "A042", "A043",
        }
        assert set(ANALYZERS) == {
            "knob-registry", "concurrency", "service-errors",
            "fault-sites", "error-codes",
        }

    def test_baseline_round_trip(self, tmp_path):
        findings = [Finding("A010", "src/x.py", 1, "REPRO_Z", "m")]
        path = tmp_path / "baseline.json"
        Baseline().write(path, findings)
        loaded = Baseline.load(path)
        assert loaded.suppresses(findings[0])

    def test_baseline_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "suppressions": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_baseline_suppression_moves_finding(self, tmp_path):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import knobs

                    def hidden():
                        return knobs.raw("REPRO_OTHER")
                """
            },
        )
        dirty = run_lint(root)
        assert not dirty.ok
        baseline = Baseline.from_findings(dirty.findings)
        clean = run_lint(root, baseline=baseline)
        assert clean.ok
        assert [f.code for f in clean.suppressed] == ["A010"]


# -- CLI ----------------------------------------------------------------------


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = seed(tmp_path)
        assert main(["lint", "--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import knobs

                    def hidden():
                        return knobs.raw("REPRO_OTHER")
                """
            },
        )
        assert main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "[A010] REPRO_OTHER" in out

    def test_json_output(self, tmp_path, capsys):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import knobs

                    def hidden():
                        return knobs.raw("REPRO_OTHER")
                """
            },
        )
        assert main(["lint", "--root", str(root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [f["code"] for f in payload["findings"]] == ["A010"]
        assert payload["files_scanned"] > 0

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        root = seed(
            tmp_path,
            {
                "src/pkg/extra.py": """
                    from pkg import knobs

                    def hidden():
                        return knobs.raw("REPRO_OTHER")
                """
            },
        )
        assert main(["lint", "--root", str(root)]) == 1
        assert main(["lint", "--root", str(root), "--write-baseline"]) == 0
        assert (root / "lint_baseline.json").is_file()
        assert main(["lint", "--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        root = seed(tmp_path)
        (root / "lint_baseline.json").write_text("{\"version\": 99}")
        assert main(["lint", "--root", str(root)]) == 2


# -- the repository itself ----------------------------------------------------


class TestRepositoryClean:
    def test_repository_is_lint_clean(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        report = run_lint(REPO_ROOT, baseline=baseline)
        assert report.ok, "\n" + report.render()
        assert report.warnings == [], "\n" + report.render()
