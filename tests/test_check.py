"""Tests for the ``repro.check`` legality & invariant subsystem.

Covers all three layers: static verifiers (config/program/trace),
per-scheme packet rules driven by injected illegal packets (mutation
tests), and the opt-in pipeline sanitizer — including the guarantee
that a sanitized run produces bit-identical statistics.
"""

from types import SimpleNamespace

import pytest

from repro.check import (
    CODES,
    CheckError,
    CheckFailure,
    PacketChecker,
    check_config,
    check_packet,
    check_program,
    check_trace,
    rules_for,
    validate_config,
)
from repro.check.api import check_matrix
from repro.check.errors import CheckReport
from repro.check.sanitizer import PipelineSanitizer, sanitize_enabled
from repro.cli import main
from repro.fetch.base import FetchPlan
from repro.fetch.factory import HARDWARE_SCHEMES, create_fetch_unit
from repro.machines.presets import PI4, PI8, get_machine
from repro.program.basic_block import TermKind
from repro.sim.simulator import Simulator
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace

ALL_PACKET_SCHEMES = HARDWARE_SCHEMES + ("perfect", "trace_cache")


def _trace(benchmark="compress", length=2_000, seed=0):
    workload = load_workload(benchmark)
    return workload.program, generate_trace(
        workload.program, workload.behavior, length, seed=seed
    )


def _unit(scheme, machine=PI8, benchmark="compress", length=2_000):
    _, trace = _trace(benchmark, length)
    return create_fetch_unit(scheme, machine, trace), trace


def _codes(rules, addresses, *, fetch_address, limit=16, words=8, banks=2):
    errors = check_packet(
        rules,
        addresses,
        fetch_address=fetch_address,
        limit=limit,
        words_per_block=words,
        num_banks=banks,
    )
    return {e.code for e in errors}


# -- packet rules: generic mutations, every scheme ----------------------------


class TestPacketMutationsGeneric:
    """Illegal packets that every scheme must reject."""

    @pytest.mark.parametrize("scheme", ALL_PACKET_SCHEMES)
    def test_empty_packet_rejected(self, scheme):
        codes = _codes(rules_for(scheme), [], fetch_address=80)
        assert codes == {"K001"}

    @pytest.mark.parametrize("scheme", ALL_PACKET_SCHEMES)
    def test_over_limit_packet_rejected(self, scheme):
        start = 80  # block-aligned for words=8
        packet = list(range(start, start + 4))
        codes = _codes(rules_for(scheme), packet, fetch_address=start, limit=3)
        assert "K002" in codes

    @pytest.mark.parametrize("scheme", ALL_PACKET_SCHEMES)
    def test_wrong_start_rejected(self, scheme):
        codes = _codes(rules_for(scheme), [81, 82], fetch_address=80)
        assert "K003" in codes

    @pytest.mark.parametrize("scheme", ALL_PACKET_SCHEMES)
    def test_duplicate_address_rejected(self, scheme):
        codes = _codes(rules_for(scheme), [80, 81, 80], fetch_address=80)
        assert "K011" in codes

    @pytest.mark.parametrize("scheme", ALL_PACKET_SCHEMES)
    def test_negative_address_rejected(self, scheme):
        codes = _codes(rules_for(scheme), [80, -3], fetch_address=80)
        assert "K012" in codes


# -- packet rules: scheme-specific mutations ----------------------------------


class TestSequentialPacketRules:
    rules = rules_for("sequential")

    def test_taken_branch_inside_packet_rejected(self):
        codes = _codes(self.rules, [80, 81, 160], fetch_address=80)
        assert "K004" in codes

    def test_block_crossing_rejected(self):
        # Sequential run spilling into the next block: one block per cycle.
        codes = _codes(self.rules, [87, 88], fetch_address=87)
        assert "K005" in codes

    def test_full_single_block_run_legal(self):
        codes = _codes(self.rules, list(range(80, 88)), fetch_address=80)
        assert codes == set()


class TestInterleavedPacketRules:
    rules = rules_for("interleaved_sequential")

    def test_taken_branch_inside_packet_rejected(self):
        codes = _codes(self.rules, [80, 81, 200], fetch_address=80)
        assert "K004" in codes

    def test_non_neighbour_blocks_rejected(self):
        # Ends block 10, resumes in block 13: not the blind next-block
        # prefetch (and necessarily a taken step for a sequential scheme).
        codes = _codes(self.rules, [87, 104], fetch_address=87)
        assert "K006" in codes

    def test_three_blocks_rejected(self):
        packet = list(range(87, 97))  # spans blocks 10, 11 and 12
        codes = _codes(self.rules, packet, fetch_address=87)
        assert "K005" in codes

    def test_two_neighbour_blocks_legal(self):
        codes = _codes(self.rules, list(range(84, 92)), fetch_address=84)
        assert codes == set()


class TestBankedPacketRules:
    rules = rules_for("banked_sequential")

    def test_bank_conflict_rejected(self):
        # Blocks 10 and 12 both map to bank 0 of a 2-bank cache.
        codes = _codes(self.rules, [80, 81, 96, 97], fetch_address=80)
        assert "K010" in codes

    def test_two_crossings_rejected(self):
        # 80 -> 89 -> 100: two inter-block taken crossings in one cycle.
        codes = _codes(self.rules, [80, 89, 100], fetch_address=80)
        assert "K009" in codes

    def test_intra_block_branch_rejected(self):
        # A taken branch whose target is in the same block cannot be
        # realigned without a collapsing buffer.
        codes = _codes(self.rules, [80, 84], fetch_address=80)
        assert "K007" in codes

    def test_one_conflict_free_crossing_legal(self):
        # Block 10 (bank 0) into block 11 (bank 1) via one taken branch.
        codes = _codes(self.rules, [80, 81, 90, 91], fetch_address=80)
        assert codes == set()


class TestCollapsingPacketRules:
    rules = rules_for("collapsing_buffer")

    def test_backward_intra_block_merge_rejected(self):
        codes = _codes(self.rules, [84, 81], fetch_address=84)
        assert "K008" in codes

    def test_bank_conflict_rejected(self):
        codes = _codes(self.rules, [80, 96], fetch_address=80)
        assert "K010" in codes

    def test_two_crossings_rejected(self):
        codes = _codes(self.rules, [80, 89, 100], fetch_address=80)
        assert "K009" in codes

    def test_forward_intra_block_merge_legal(self):
        codes = _codes(self.rules, [80, 83, 86], fetch_address=80)
        assert codes == set()


class TestPerfectPacketRules:
    def test_arbitrary_path_legal(self):
        # Backward branches, many blocks, many crossings: all deliverable.
        codes = _codes(
            rules_for("perfect"), [80, 85, 82, 160, 40], fetch_address=80
        )
        assert codes == set()


# -- packet rules: injection through the fetch harness ------------------------


class TestPacketInjection:
    """An illegal plan injected into a real fetch unit is caught in
    ``fetch_cycle`` before it can be compared with the trace."""

    @pytest.mark.parametrize("scheme", HARDWARE_SCHEMES)
    def test_injected_packet_raises(self, scheme):
        unit, trace = _unit(scheme)
        PacketChecker.for_unit(unit)
        fetch_address = trace.instructions[0].address
        unit.plan = lambda address, limit: FetchPlan(
            addresses=[address + 1], next_address=address + 2
        )
        with pytest.raises(CheckFailure) as info:
            unit.fetch_cycle(0, PI8.issue_rate)
        assert "K003" in info.value.codes
        assert unit.checker.violations >= 1

    @pytest.mark.parametrize("scheme", HARDWARE_SCHEMES)
    def test_real_packets_pass(self, scheme):
        unit, trace = _unit(scheme)
        checker = PacketChecker.for_unit(unit)
        position = 0
        total = len(trace.instructions)
        while position < total:
            result = unit.fetch_cycle(position, PI8.issue_rate)
            position += max(result.delivered, 1)
        assert checker.packets_checked > 0
        assert checker.violations == 0

    def test_collect_mode_accumulates(self):
        unit, trace = _unit("sequential")
        collected = []
        PacketChecker.for_unit(unit, collect=collected)
        # Starts at the fetch address (so the harness still accepts it)
        # but jumps mid-packet: illegal for a sequential-only scheme.
        unit.plan = lambda address, limit: FetchPlan(
            addresses=[address, address + 50], next_address=address + 51
        )
        unit.fetch_cycle(0, PI8.issue_rate)
        unit.fetch_cycle(0, PI8.issue_rate)
        assert [e.code for e in collected].count("K004") == 2
        assert unit.checker.violations == len(collected)


# -- static config validation -------------------------------------------------


class _CorruptConfig:
    """Duck-typed MachineConfig double the frozen dataclass could never
    construct; fields default to PI4's legal values."""

    def __init__(self, **overrides):
        for name in (
            "name",
            "issue_rate",
            "window_size",
            "rob_factor",
            "icache_bytes",
            "icache_block_bytes",
            "icache_miss_latency",
            "btb_entries",
            "fetch_penalty",
            "num_fxu",
            "num_fpu",
            "num_branch_units",
            "num_load_units",
            "num_store_buffers",
            "speculation_depth",
            "fetch_queue_groups",
            "memory_ordering",
        ):
            setattr(self, name, getattr(PI4, name))
        for name, value in overrides.items():
            setattr(self, name, value)


class TestConfigChecks:
    def test_presets_are_clean(self):
        for name in ("PI4", "PI8", "PI12", "PI16"):
            assert check_config(get_machine(name)) == []

    @pytest.mark.parametrize(
        "overrides,code",
        [
            ({"icache_bytes": 3000}, "C001"),
            ({"icache_block_bytes": 24}, "C002"),
            ({"icache_block_bytes": 8}, "C003"),
            ({"btb_entries": 100}, "C004"),
            ({"window_size": 2}, "C005"),
            ({"rob_factor": 0}, "C005"),
            ({"num_branch_units": 0}, "C006"),
            ({"num_load_units": 0}, "C006"),
            ({"fetch_penalty": -1}, "C007"),
            ({"icache_miss_latency": 0}, "C007"),
            ({"fetch_queue_groups": 0}, "C007"),
            ({"memory_ordering": "relaxed"}, "C008"),
        ],
    )
    def test_corrupt_geometry_flagged(self, overrides, code):
        errors = check_config(_CorruptConfig(**overrides))
        assert code in {e.code for e in errors}

    def test_validate_config_raises(self):
        with pytest.raises(CheckFailure) as info:
            validate_config(_CorruptConfig(icache_bytes=3000))
        assert "C001" in info.value.codes


# -- static program & trace verification --------------------------------------


class TestProgramChecks:
    def test_suite_programs_are_clean(self):
        for benchmark in ("compress", "li", "doduc"):
            program, _ = _trace(benchmark, length=10)
            assert check_program(program, PI8) == []

    def test_corrupt_branch_target_flagged(self):
        program, _ = _trace()
        victim = next(
            b for b in program.cfg.blocks if b.terminator is not None
        )
        original = victim.terminator.target
        victim.terminator.target = original + 1  # mid-block address
        try:
            codes = {e.code for e in check_program(program, roundtrip=False)}
            assert codes & {"P001", "P002"}
        finally:
            victim.terminator.target = original

    def test_corrupt_layout_flagged(self):
        program, _ = _trace()
        instr = program.instructions[5]
        original = instr.address
        instr.address = original + 7
        try:
            codes = {e.code for e in check_program(program, roundtrip=False)}
            assert "P004" in codes
        finally:
            instr.address = original

    def test_corrupt_fallthrough_flagged(self):
        program, _ = _trace()
        start = program.block_start
        victim = next(
            b for b in program.cfg.blocks if b.term_kind is TermKind.COND
        )
        expected = start[victim.block_id] + victim.size
        decoy = next(
            b for b in program.cfg.blocks if start[b.block_id] != expected
        )
        original = victim.fall_id
        victim.fall_id = decoy.block_id
        try:
            codes = {e.code for e in check_program(program, roundtrip=False)}
            assert "P003" in codes
        finally:
            victim.fall_id = original

    def test_corrupt_encoding_flagged(self):
        program, _ = _trace()
        instr = next(i for i in program.instructions if not i.is_control)
        original = instr.dest
        instr.dest = 200  # beyond the 7-bit register field
        try:
            codes = {e.code for e in check_program(program)}
            assert "P005" in codes
        finally:
            instr.dest = original

    def test_broken_cfg_structure_flagged(self):
        program, _ = _trace()
        victim = program.cfg.conditional_blocks()[0]
        original = victim.taken_id
        victim.taken_id = 10_000  # no such block
        try:
            errors = check_program(program, roundtrip=False)
            assert [e.code for e in errors] == ["P006"]
        finally:
            victim.taken_id = original

    def test_trace_is_legal(self):
        program, trace = _trace(length=3_000)
        assert check_trace(program, trace) == []

    def test_spliced_trace_flagged(self):
        program, trace = _trace(length=3_000)
        # Splice a bogus jump: repeat the first 10 instructions after a
        # non-control instruction deep in the stream.
        instructions = list(trace.instructions)
        splice = next(
            i
            for i in range(100, len(instructions))
            if not instructions[i].is_control
        )
        corrupt = type(trace)(
            name=trace.name,
            seed=trace.seed,
            instructions=instructions[: splice + 1] + instructions[:10],
        )
        codes = {e.code for e in check_trace(program, corrupt)}
        assert "T003" in codes

    def test_illegal_conditional_successor_flagged(self):
        program, trace = _trace(length=3_000)
        instructions = list(trace.instructions)
        cfg, start = program.cfg, program.block_start
        # Repeat a conditional branch right after itself: its own address
        # is neither the taken target nor the fall-through.
        position = next(
            i
            for i, instr in enumerate(instructions[:-1])
            if instr.is_control
            and cfg.block(instr.block_id).term_kind is TermKind.COND
            and start[cfg.block(instr.block_id).taken_id] != instr.address
        )
        corrupt = type(trace)(
            name=trace.name,
            seed=trace.seed,
            instructions=instructions[: position + 1]
            + [instructions[position]],
        )
        codes = {e.code for e in check_trace(program, corrupt)}
        assert "T002" in codes

    def test_corrupt_return_continuation_flagged(self):
        program, trace = _trace(length=3_000)
        instructions = list(trace.instructions)
        cfg, start = program.cfg, program.block_start
        # Walk the call stack exactly like the checker and cut the trace
        # after a matched return, repeating the return itself: its own
        # address cannot be the continuation its call pushed.
        stack = []
        position = None
        for i, instr in enumerate(instructions[:-1]):
            if not instr.is_control:
                continue
            block = cfg.block(instr.block_id)
            if block.term_kind is TermKind.CALL:
                stack.append(start[block.fall_id])
            elif block.term_kind is TermKind.RET and stack:
                if stack.pop() != instr.address:
                    position = i
                    break
        assert position is not None, "no matched return in the trace"
        corrupt = type(trace)(
            name=trace.name,
            seed=trace.seed,
            instructions=instructions[: position + 1]
            + [instructions[position]],
        )
        codes = {e.code for e in check_trace(program, corrupt)}
        assert "T004" in codes

    def test_foreign_instruction_flagged(self):
        program, trace = _trace(length=500)
        foreign_program, _ = _trace("li", length=10)
        instructions = list(trace.instructions)
        instructions[3] = foreign_program.instructions[
            instructions[3].address - foreign_program.base_address
        ]
        corrupt = type(trace)(
            name=trace.name, seed=trace.seed, instructions=instructions
        )
        codes = {e.code for e in check_trace(program, corrupt)}
        assert codes & {"T001", "T005"}


# -- pipeline sanitizer -------------------------------------------------------


def _simulator(sanitize=None, scheme="sequential", machine=PI4, length=2_500):
    _, trace = _trace(length=length)
    return Simulator(machine, trace, scheme, warmup=500, sanitize=sanitize)


class TestSanitizer:
    def test_env_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert _simulator().sanitizer is None
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert _simulator().sanitizer is not None

    @pytest.mark.parametrize("scheme", HARDWARE_SCHEMES)
    def test_sanitized_run_is_bit_identical(self, scheme):
        plain = _simulator(scheme=scheme).run()
        sanitized = _simulator(sanitize=True, scheme=scheme).run()
        assert sanitized == plain

    def test_sanitized_reference_run_matches(self):
        sim = _simulator(sanitize=True, scheme="banked_sequential")
        reference = sim.run_reference()
        assert reference == _simulator(scheme="banked_sequential").run()

    def test_clean_run_counts_checks(self):
        sim = _simulator(sanitize=True)
        sim.run()
        sanitizer = sim.sanitizer
        assert sanitizer.cycles_checked > 0
        assert sanitizer.deep_checks > 0
        assert sanitizer.packet_checker.packets_checked > 0
        assert sanitizer.packet_checker.violations == 0

    def test_corrupt_retire_counter_caught(self):
        sim = _simulator(sanitize=True)
        sim.core.stats.retired = 10  # retired > dispatched from cycle one
        with pytest.raises(CheckFailure) as info:
            sim.run()
        assert "S001" in info.value.codes

    def test_queue_range_violation_caught(self):
        sim = _simulator(sanitize=True)
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer.on_cycle(0, position=5, dispatch_head=7)
        assert "S003" in info.value.codes

    def test_window_occupancy_violation_caught(self):
        sim = _simulator(sanitize=True)
        sim.core.window._occupied = 3  # nothing is actually in the window
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer._deep_check(0)
        assert "S002" in info.value.codes

    def test_undrained_finish_caught(self):
        sim = _simulator(sanitize=True)
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer.on_finish(0)  # nothing retired yet
        assert "S001" in info.value.codes

    def test_negative_branch_counter_caught(self):
        sim = _simulator(sanitize=True)
        sim.core.unresolved_branches = -1
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer.on_cycle(0, position=0, dispatch_head=0)
        assert "S004" in info.value.codes

    def test_rob_order_violation_caught(self):
        sim = _simulator(sanitize=True)
        # Two retirement-order entries with regressing sequence numbers.
        sim.core.rob._entries.extend(
            SimpleNamespace(
                seq=seq, instruction=SimpleNamespace(op=None), state=None
            )
            for seq in (5, 3)
        )
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer._deep_check(0)
        assert "S005" in info.value.codes

    def test_rob_overflow_caught(self):
        sim = _simulator(sanitize=True)
        rob = sim.core.rob
        rob._entries.extend([None] * (rob.capacity + 1))
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer.on_cycle(0, position=0, dispatch_head=0)
        assert "S006" in info.value.codes

    def test_undrained_state_after_full_retire_caught(self):
        sim = _simulator(sanitize=True)
        sim.core.stats.retired = sim.sanitizer.total  # S001 satisfied
        sim.core.window._occupied = 1  # but the window never drained
        with pytest.raises(CheckFailure) as info:
            sim.sanitizer.on_finish(0)
        assert "S007" in info.value.codes

    def test_deep_period_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_DEEP_PERIOD", "1")
        sim = _simulator(sanitize=True, length=600)
        sim.run()
        assert sim.sanitizer.deep_checks == sim.sanitizer.cycles_checked


# -- matrix driver and CLI ----------------------------------------------------


class TestCheckMatrix:
    def test_small_matrix_clean(self):
        report = check_matrix(
            benchmarks=["compress"], machines=["PI4"], length=1_000
        )
        assert report.ok
        assert report.errors == []
        assert report.checks_run > 0

    def test_unknown_names_reported(self):
        report = check_matrix(
            benchmarks=["no_such_bench"],
            machines=["PI99"],
            schemes=["no_such_scheme"],
            length=500,
            fetch=False,
        )
        codes = {e.code for e in report.errors}
        assert codes == {"A001", "A002", "A003"}

    def test_report_severity_split(self):
        report = CheckReport()
        report.add([CheckError("P007", "s", "big block", "warning")])
        assert report.ok and len(report.warnings) == 1
        report.add([CheckError("P001", "s", "bad target")])
        assert not report.ok
        with pytest.raises(CheckFailure):
            report.raise_if_failed()


class TestCheckCli:
    def test_clean_matrix_exits_zero(self, capsys):
        code = main(
            [
                "check",
                "--benchmarks", "compress",
                "--machines", "PI4",
                "--length", "1000",
            ]
        )
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_corrupt_matrix_exits_nonzero(self, capsys, monkeypatch):
        import repro.check.api as api

        real = api.get_machine

        def corrupt(name):
            machine = real(name)
            return _CorruptConfig(name=machine.name, icache_bytes=3000)

        monkeypatch.setattr(api, "get_machine", corrupt)
        code = main(
            [
                "check",
                "--benchmarks", "compress",
                "--machines", "PI4",
                "--length", "500",
                "--no-fetch",
            ]
        )
        assert code == 1
        assert "[C001]" in capsys.readouterr().out

    def test_unknown_benchmark_exits_nonzero(self, capsys):
        code = main(
            ["check", "--benchmarks", "no_such", "--no-fetch"]
        )
        assert code == 1
        assert "[A003]" in capsys.readouterr().out


# -- result-cache interaction -------------------------------------------------


class TestCacheSalting:
    def test_sanitize_knob_changes_cache_key(self, tmp_path, monkeypatch):
        from repro.sim import cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        cache.store("sim_stats", ("k",), "plain-result")
        assert cache.load("sim_stats", ("k",)) == "plain-result"
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert cache.load("sim_stats", ("k",)) is None
        cache.store("sim_stats", ("k",), "sanitized-result")
        assert cache.load("sim_stats", ("k",)) == "sanitized-result"
        monkeypatch.delenv("REPRO_SANITIZE")
        assert cache.load("sim_stats", ("k",)) == "plain-result"


# -- error catalogue ----------------------------------------------------------


class TestCatalogue:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            CheckError("Z999", "s", "m")

    def test_every_code_documented(self):
        import pathlib

        catalogue = pathlib.Path("docs/checking.md").read_text()
        for code in CODES:
            assert code in catalogue, f"{code} missing from docs/checking.md"
