"""Tests using the micro-workloads: precise expectations per scheme."""

import pytest

from repro.machines import PI4, PI8
from repro.sim import Simulator, measure_eir
from repro.workloads import generate_trace
from repro.workloads.micro import (
    MICRO_WORKLOADS,
    branch_storm,
    call_chain,
    hammock_farm,
    straightline,
    tiny_loop,
)


def trace_of(workload, n=6000, seed=0):
    return generate_trace(workload.program, workload.behavior, n, seed=seed)


class TestRegistry:
    def test_all_build_and_run(self):
        for name, build in MICRO_WORKLOADS.items():
            workload = build()
            assert workload.name == name
            workload.program.cfg.validate()
            stats = Simulator(PI4, trace_of(workload, 2000), "sequential").run()
            assert stats.retired == 2000


class TestStraightline:
    def test_every_scheme_near_full_delivery(self):
        workload = straightline()
        trace = trace_of(workload, 8000)
        for scheme in ("interleaved_sequential", "banked_sequential",
                       "collapsing_buffer", "perfect"):
            eir = measure_eir(trace, PI8, scheme).eir
            assert eir > 0.85 * PI8.issue_rate, scheme

    def test_sequential_limited_by_block_boundaries(self):
        # Plain sequential cannot cross block boundaries; from a random
        # offset it averages well under the full rate but above half.
        workload = straightline()
        eir = measure_eir(trace_of(workload, 8000), PI8, "sequential").eir
        assert 0.5 * PI8.issue_rate < eir <= PI8.issue_rate


class TestTinyLoop:
    def test_backward_intra_block_defeats_collapsing(self):
        """The tiny loop's back edge is backward intra-block: the
        collapsing buffer gains nothing over banked sequential."""
        workload = tiny_loop(body=2)
        trace = trace_of(workload, 6000)
        banked = measure_eir(trace, PI8, "banked_sequential").eir
        collapsing = measure_eir(trace, PI8, "collapsing_buffer").eir
        assert collapsing == pytest.approx(banked, rel=0.02)

    def test_eir_bounded_by_loop_size(self):
        # Each iteration supplies ~body+1 instructions at best.
        workload = tiny_loop(body=2)
        eir = measure_eir(trace_of(workload, 6000), PI8, "collapsing_buffer").eir
        assert eir < 4.0


class TestHammockFarm:
    def test_collapsing_buffer_shines(self):
        workload = hammock_farm(count=8, gap=2, taken_prob=0.92)
        trace = trace_of(workload, 8000)
        banked = measure_eir(trace, PI8, "banked_sequential").eir
        collapsing = measure_eir(trace, PI8, "collapsing_buffer").eir
        assert collapsing > banked * 1.25

    def test_ordering_strict_here(self):
        workload = hammock_farm()
        trace = trace_of(workload, 8000)
        eirs = [
            measure_eir(trace, PI8, s).eir
            for s in ("sequential", "banked_sequential",
                      "collapsing_buffer", "perfect")
        ]
        assert eirs == sorted(eirs)


class TestCallChain:
    def test_ras_removes_return_mispredicts(self):
        from repro.branch import ReturnAddressStack
        from repro.fetch import create_fetch_unit

        workload = call_chain(depth=5)
        trace = trace_of(workload, 8000)
        base = Simulator(PI8, trace, "collapsing_buffer", warmup=2000).run()
        unit = create_fetch_unit(
            "collapsing_buffer", PI8, trace,
            return_stack=ReturnAddressStack(depth=16),
        )
        with_ras = Simulator(PI8, trace, unit, warmup=2000).run()
        assert with_ras.fetch_mispredicts <= base.fetch_mispredicts
        assert with_ras.ipc >= base.ipc


class TestBranchStorm:
    def test_unpredictable_branches_crush_everyone(self):
        storm = branch_storm()
        calm = hammock_farm(taken_prob=0.95)
        for scheme in ("collapsing_buffer", "perfect"):
            stormy = Simulator(
                PI8, trace_of(storm, 6000), scheme, warmup=1500
            ).run()
            calm_run = Simulator(
                PI8, trace_of(calm, 6000), scheme, warmup=1500
            ).run()
            assert stormy.ipc < calm_run.ipc
            assert stormy.branch_mispredict_ratio > 0.15
