"""Telemetry subsystem tests.

The contracts locked in here:

* **Slot conservation** — an instrumented run charges every one of the
  machine's ``issue_rate`` fetch slots each cycle to exactly one cause,
  so the ledger sums to ``cycles * issue_rate`` for every scheme,
  machine and workload.
* **Zero interference** — telemetry is opt-in; with it off the fast
  loop runs untouched, ``SimStats.extra`` stays empty, and with it on
  the counted statistics still equal the uninstrumented run's.
* **Cross-checks** — the pipetrace's per-cycle attribution and the
  instrumented simulator agree total for total, and the EIR gap between
  ``sequential`` and ``perfect`` is fully explained by the per-cause
  rate differences.
"""

import dataclasses
import json

import pytest

from repro.cli import main as cli_main
from repro.machines.presets import get_machine
from repro.sim import cache as result_cache
from repro.sim.pipetrace import trace_pipeline
from repro.sim.simulator import Simulator
from repro.telemetry import (
    CAUSES,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    build_manifest,
    check_conservation,
    read_jsonl,
    to_csv,
    to_jsonl,
)
from repro.workloads.micro import MICRO_WORKLOADS
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace

LENGTH = 3_000
WARMUP = 500


@pytest.fixture(autouse=True)
def _isolated_env(tmp_path, monkeypatch):
    """Telemetry off by default, disk cache confined to the test."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    result_cache.reset_stats()


def _trace(benchmark: str, length: int = LENGTH):
    workload = load_workload(benchmark)
    return generate_trace(workload.program, workload.behavior, length, seed=0)


def _instrumented(machine, trace, scheme, **kwargs):
    sim = Simulator(machine, trace, scheme, telemetry=True, **kwargs)
    stats = sim.run()
    assert sim.telemetry_report is not None
    return stats, sim.telemetry_report


# -- slot conservation ---------------------------------------------------------


@pytest.mark.parametrize("machine_name", ("PI4", "PI12"))
@pytest.mark.parametrize(
    "scheme",
    (
        "sequential",
        "interleaved_sequential",
        "banked_sequential",
        "collapsing_buffer",
        "perfect",
        "trace_cache",
    ),
)
def test_conservation_across_schemes(machine_name, scheme):
    machine = get_machine(machine_name)
    stats, report = _instrumented(
        machine, _trace("espresso"), scheme, warmup=WARMUP
    )
    check_conservation(report.attribution, report.cycles, machine.issue_rate)
    # The ledger's delivered slots are exactly the delivered statistic.
    assert report.attribution["delivered"] == stats.delivered
    # ... and the stats.extra payload carries the same ledger.
    assert stats.slot_attribution() == report.attribution
    assert stats.extra["issue_rate"] == machine.issue_rate


@pytest.mark.parametrize("name", sorted(MICRO_WORKLOADS))
@pytest.mark.parametrize("scheme", ("sequential", "collapsing_buffer"))
def test_conservation_on_micro_workloads(name, scheme):
    machine = get_machine("PI8")
    workload = MICRO_WORKLOADS[name]()
    trace = generate_trace(workload.program, workload.behavior, 2_000, seed=0)
    _, report = _instrumented(machine, trace, scheme)
    check_conservation(report.attribution, report.cycles, machine.issue_rate)


def test_conservation_checker_rejects_bad_ledgers():
    with pytest.raises(AssertionError):
        check_conservation({"delivered": 7}, cycles=2, issue_rate=4)
    with pytest.raises(AssertionError):
        check_conservation({"delivered": 8, "idle": -2}, 2, 4)
    check_conservation({"delivered": 6, "idle": 2}, 2, 4)


# -- zero interference ---------------------------------------------------------


def test_off_by_default_and_extra_stays_empty():
    sim = Simulator(get_machine("PI4"), _trace("espresso"), "sequential")
    assert sim.telemetry is None
    stats = sim.run()
    assert stats.extra == {}
    assert sim.telemetry_report is None


def test_env_knob_enables_and_parameter_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    machine = get_machine("PI4")
    trace = _trace("espresso", 1_000)
    assert Simulator(machine, trace, "sequential").telemetry is not None
    assert Simulator(
        machine, trace, "sequential", telemetry=False
    ).telemetry is None


def test_instrumented_counts_match_fast_loop():
    machine = get_machine("PI4")
    trace = _trace("li")
    fast = Simulator(machine, trace, "sequential", warmup=WARMUP).run()
    instrumented, _ = _instrumented(
        machine, trace, "sequential", warmup=WARMUP
    )
    for field in dataclasses.fields(type(fast)):
        if field.name == "extra":
            continue
        assert getattr(fast, field.name) == getattr(instrumented, field.name)


# -- cache round-trip ----------------------------------------------------------


def test_extra_survives_the_result_cache():
    from repro.experiments.common import telemetry_sim_stats

    run = telemetry_sim_stats.__wrapped__  # bypass the lru memo
    kwargs = dict(length=2_000, warmup=400)
    first = run("espresso", "PI4", "sequential", **kwargs)
    assert first.slot_attribution()  # instrumented payload present
    assert result_cache.stats.stores == 1
    second = run("espresso", "PI4", "sequential", **kwargs)
    assert result_cache.stats.hits == 1
    assert second.extra == first.extra
    assert second == first


# -- pipetrace cross-check -----------------------------------------------------


@pytest.mark.parametrize("scheme", ("sequential", "collapsing_buffer"))
def test_pipetrace_attribution_matches_simulator(scheme):
    machine = get_machine("PI4")
    trace = _trace("espresso", 1_200)
    _, report = _instrumented(machine, trace, scheme)
    log = trace_pipeline(machine, trace, scheme, max_cycles=100_000)
    totals = log.attribution_totals()
    assert sum(totals.values()) == len(log.events) * machine.issue_rate
    expected = {cause: report.attribution.get(cause, 0) for cause in CAUSES}
    assert totals == expected


# -- gap decomposition ---------------------------------------------------------


def test_gap_between_sequential_and_perfect_is_explained():
    machine = get_machine("PI8")
    trace = _trace("espresso", 4_000)
    seq, seq_report = _instrumented(
        machine, trace, "sequential", warmup=WARMUP
    )
    perf, perf_report = _instrumented(
        machine, trace, "perfect", warmup=WARMUP
    )
    gap = perf.eir - seq.eir
    assert gap > 0
    seq_rates = seq_report.rates()
    perf_rates = perf_report.rates()
    explained = sum(
        seq_rates.get(cause, 0.0) - perf_rates.get(cause, 0.0)
        for cause in CAUSES
        if cause != "delivered"
    )
    # Slot conservation makes the decomposition exact (well above the
    # >= 95% acceptance bar).
    assert explained == pytest.approx(gap, rel=1e-9)


# -- metrics core --------------------------------------------------------------


def test_histogram_moments():
    histogram = Histogram()
    assert histogram.as_dict()["count"] == 0
    for value in (2.0, 4.0, 6.0):
        histogram.observe(value)
    assert histogram.mean == 4.0
    assert histogram.as_dict() == {
        "count": 3,
        "total": 12.0,
        "min": 2.0,
        "max": 6.0,
        "mean": 4.0,
    }


def test_registry_and_null_registry():
    registry = MetricsRegistry()
    registry.inc("events")
    registry.inc("events", 2)
    registry.observe("sizes", 3.0)
    registry.add_time("phase", 0.5)
    with registry.timer("phase"):
        pass
    assert registry.counters["events"] == 3
    assert registry.histograms["sizes"].count == 1
    assert registry.timers["phase"] >= 0.5
    assert registry.as_dict()["counters"] == {"events": 3}

    null = NullRegistry()
    null.inc("events")
    null.observe("sizes", 3.0)
    null.add_time("phase", 0.5)
    with null.timer("phase"):
        pass
    assert null.counters == {} and null.timers == {}
    assert not null.enabled


# -- exporters and manifest ----------------------------------------------------


def test_jsonl_round_trip_and_csv_union(tmp_path):
    records = [{"a": 1, "b": "x"}, {"a": 2, "c": 3.5}]
    jsonl = to_jsonl(records, tmp_path / "records.jsonl")
    assert read_jsonl(jsonl) == records
    csv_path = to_csv(records, tmp_path / "records.csv")
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "a,b,c"
    assert lines[1] == "1,x,"
    assert lines[2] == "2,,3.5"


def test_manifest_schema(tmp_path):
    manifest = build_manifest(
        command="stats",
        arguments={"benchmark": "espresso"},
        seeds={"trace": 0},
        timings={"wall": 1.25},
        results=[{"ipc": 2.0}],
        cache_stats={"hits": 1},
    )
    for key in (
        "manifest_version",
        "created_unix",
        "created_utc",
        "command",
        "arguments",
        "source_version",
        "config_fingerprints",
        "seeds",
        "environment",
        "host",
        "timings_seconds",
        "result_cache",
        "results",
    ):
        assert key in manifest, key
    assert manifest["command"] == "stats"
    assert len(manifest["source_version"]) == 64
    # JSON-serialisable end to end.
    json.loads(json.dumps(manifest))


# -- CLI -----------------------------------------------------------------------


def test_cli_stats_json(capsys):
    rc = cli_main(
        [
            "stats",
            "espresso",
            "PI4",
            "--schemes",
            "sequential",
            "perfect",
            "--length",
            "2000",
            "--warmup",
            "400",
            "--json",
        ]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["issue_rate"] == 4
    schemes = payload["schemes"]
    assert schemes["sequential"]["attribution"]["delivered"] > 0
    assert schemes["perfect"]["eir"] >= schemes["sequential"]["eir"]


def test_cli_stats_table_chart_and_exports(tmp_path, capsys):
    rc = cli_main(
        [
            "stats",
            "espresso",
            "PI4",
            "--schemes",
            "sequential",
            "perfect",
            "--length",
            "2000",
            "--warmup",
            "400",
            "--export-jsonl",
            str(tmp_path / "t.jsonl"),
            "--export-csv",
            str(tmp_path / "t.csv"),
            "--manifest",
            str(tmp_path / "manifest.json"),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fetch-slot attribution" in out
    assert "EIR gap vs perfect" in out
    assert "% explained" in out
    assert "slots/cyc" in out  # the bar chart rendered
    records = read_jsonl(tmp_path / "t.jsonl")
    assert {r["scheme"] for r in records} == {"sequential", "perfect"}
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["command"] == "stats"
    assert manifest["results"]


def test_cli_simulate_telemetry(tmp_path, capsys):
    out_dir = tmp_path / "out"
    rc = cli_main(
        [
            "simulate",
            "espresso",
            "PI4",
            "sequential",
            "--length",
            "6000",
            "--telemetry",
            str(out_dir),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "slot attribution" in out
    assert "phase wall-clock" in out
    (record,) = read_jsonl(out_dir / "telemetry.jsonl")
    assert record["slot_delivered"] > 0
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["command"] == "simulate"
    assert "fetch" in manifest["timings_seconds"]


def test_cli_sweep_telemetry(tmp_path, capsys):
    out_dir = tmp_path / "out"
    rc = cli_main(
        [
            "sweep",
            "--benchmarks",
            "espresso",
            "--machines",
            "PI4",
            "--schemes",
            "sequential",
            "perfect",
            "--length",
            "2000",
            "--warmup",
            "400",
            "--jobs",
            "1",
            "--telemetry",
            str(out_dir),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "result cache:" in out
    records = read_jsonl(out_dir / "telemetry.jsonl")
    assert len(records) == 2
    assert all("slot_delivered" in record for record in records)
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["command"] == "sweep"
    assert manifest["result_cache"]
