"""Tests for the persistent simulation result cache."""

import os
import pickle
import threading
import time

import pytest

from repro.sim import cache


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    return tmp_path


def test_round_trip(cache_env):
    key = ("espresso", "PI4", "sequential", 1000)
    assert cache.load("sim_stats", key) is None
    cache.store("sim_stats", key, {"ipc": 2.5})
    assert cache.load("sim_stats", key) == {"ipc": 2.5}


def test_kinds_are_namespaced(cache_env):
    key = ("espresso", "PI4")
    cache.store("sim_stats", key, "a")
    cache.store("eir_stats", key, "b")
    assert cache.load("sim_stats", key) == "a"
    assert cache.load("eir_stats", key) == "b"


def test_corrupt_entry_is_dropped(cache_env):
    key = ("li", "PI12", "collapsing_buffer")
    cache.store("sim_stats", key, 42)
    (entry,) = cache_env.glob("**/*.pkl")
    entry.write_bytes(b"not a pickle")
    assert cache.load("sim_stats", key) is None
    assert not entry.exists()  # damaged file removed
    # ... and the slot heals on the next store.
    cache.store("sim_stats", key, 43)
    assert cache.load("sim_stats", key) == 43


def test_key_mismatch_is_a_miss(cache_env):
    key = ("li", "PI4", "sequential")
    cache.store("sim_stats", key, 1)
    (entry,) = cache_env.glob("**/*.pkl")
    entry.write_bytes(
        pickle.dumps({"key": ("sim_stats", ("other",)), "value": 99})
    )
    assert cache.load("sim_stats", key) is None


def test_disable_via_env(cache_env, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    key = ("ora", "PI4", "sequential")
    cache.store("sim_stats", key, 7)
    assert cache.load("sim_stats", key) is None
    assert not list(cache_env.glob("**/*.pkl"))


def test_clear_removes_entries(cache_env):
    for i in range(3):
        cache.store("sim_stats", ("bench", i), i)
    assert cache.clear() == 3
    assert cache.load("sim_stats", ("bench", 0)) is None


def test_source_version_is_stable():
    assert cache.source_version() == cache.source_version()
    assert len(cache.source_version()) == 64


def test_counters_track_miss_store_hit(cache_env):
    cache.reset_stats()
    key = ("espresso", "PI4", "sequential", 500)
    assert cache.load("sim_stats", key) is None
    cache.store("sim_stats", key, 1)
    assert cache.load("sim_stats", key) == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.hits == 1


def test_counters_track_corruption(cache_env):
    cache.reset_stats()
    key = ("li", "PI8", "perfect")
    cache.store("sim_stats", key, 42)
    (entry,) = cache_env.glob("**/*.pkl")
    entry.write_bytes(b"junk")
    assert cache.load("sim_stats", key) is None
    assert cache.stats.corrupt_dropped == 1
    assert cache.stats.misses == 1


def test_stats_snapshot_delta_and_merge(cache_env):
    cache.reset_stats()
    before = cache.stats.snapshot()
    cache.store("sim_stats", ("a",), 1)
    cache.load("sim_stats", ("a",))
    delta = cache.stats.since(before)
    assert delta["stores"] == 1
    assert delta["hits"] == 1
    # A worker's delta folds into a fresh parent-side accumulator.
    fresh = cache.ResultCacheStats()
    fresh.add(delta)
    assert (fresh.hits, fresh.stores) == (1, 1)


def test_telemetry_knob_salts_the_key(cache_env, monkeypatch):
    key = ("espresso", "PI4", "sequential")
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    cache.store("sim_stats", key, "plain")
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert cache.load("sim_stats", key) is None  # different generation


# -- single-flight (get_or_compute) -------------------------------------------


def test_get_or_compute_miss_then_hit(cache_env):
    cache.reset_stats()
    calls = []
    value = cache.get_or_compute("sim_stats", ("k",), lambda: calls.append(1) or 41)
    assert value == 41 and calls == [1]
    assert cache.get_or_compute("sim_stats", ("k",), lambda: 99) == 41
    assert calls == [1]  # second call served from the cache
    assert cache.stats.coalesced == 0
    assert not list(cache_env.glob("**/*.claim"))  # claim released


def test_concurrent_misses_coalesce_to_one_compute(cache_env):
    cache.reset_stats()
    calls = []
    barrier = threading.Barrier(2)
    results = {}

    def compute():
        calls.append(threading.get_ident())
        time.sleep(0.2)  # hold the claim long enough for the waiter
        return 42

    def miss(name):
        barrier.wait()
        results[name] = cache.get_or_compute("sim_stats", ("c",), compute)

    threads = [
        threading.Thread(target=miss, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10.0)
    assert results == {"a": 42, "b": 42}
    assert len(calls) == 1  # single flight: exactly one simulation
    assert cache.stats.coalesced == 1


def test_stale_claim_is_broken(cache_env, monkeypatch):
    cache.reset_stats()
    monkeypatch.setenv("REPRO_CACHE_CLAIM_TTL", "0.1")
    lock = cache._claim_path("sim_stats", ("stale",))
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("99999")
    old = time.time() - 60
    os.utime(lock, (old, old))
    start = time.monotonic()
    value = cache.get_or_compute("sim_stats", ("stale",), lambda: 7)
    assert value == 7
    assert time.monotonic() - start < 5.0  # did not wait out a dead claim


def test_failed_compute_releases_the_claim(cache_env):
    cache.reset_stats()
    with pytest.raises(RuntimeError):
        cache.get_or_compute(
            "sim_stats", ("boom",), lambda: (_ for _ in ()).throw(RuntimeError())
        )
    assert not list(cache_env.glob("**/*.claim"))
    assert cache.get_or_compute("sim_stats", ("boom",), lambda: 5) == 5


def test_get_or_compute_with_cache_disabled(cache_env, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    calls = []
    for _ in range(2):
        assert cache.get_or_compute(
            "sim_stats", ("off",), lambda: calls.append(1) or 3
        ) == 3
    assert len(calls) == 2  # no memoisation, but no claims either
    assert not list(cache_env.glob("**/*"))
