"""Calibration regression locks.

The workload profiles were calibrated against the paper's Table 2 and
Table 3 (see ``repro.workloads.calibration`` and DESIGN.md).  These
tests pin each benchmark's measured signature to the values captured at
calibration time, so an accidental change to a profile, the generator,
or the behaviour model shows up immediately.  Tolerances are generous —
the lock guards against *structural* drift, not RNG noise.
"""

import pytest

from repro.fetch import HARDWARE_SCHEMES
from repro.machines import PI12
from repro.sim import measure_eir
from repro.workloads import generate_trace, load_workload
from repro.workloads.calibration import measure_intra_block

#: Intra-block percentages (16B/32B/64B) measured at calibration time
#: over 30k-instruction traces of the held-out test seed.
LOCKED_INTRA_BLOCK = {
    "bison": (5.3, 21.7, 47.1),
    "compress": (11.6, 16.3, 18.9),
    "eqntott": (0.0, 21.5, 44.9),
    "espresso": (0.3, 12.4, 42.1),
    "flex": (0.0, 6.8, 22.0),
    "gcc": (6.6, 13.6, 21.1),
    "li": (0.0, 4.8, 14.5),
    "mpeg_play": (0.0, 9.2, 13.8),
    "sc": (0.0, 13.6, 20.6),
    "doduc": (0.0, 14.5, 30.9),
    "mdljdp2": (0.0, 19.8, 69.6),
    "nasa7": (0.0, 0.0, 0.0),
    "ora": (0.0, 5.6, 18.7),
    "tomcatv": (0.0, 0.0, 13.7),
    "wave5": (0.4, 40.5, 59.5),
}


@pytest.mark.parametrize("bench_name", sorted(LOCKED_INTRA_BLOCK))
def test_intra_block_signature_locked(bench_name):
    measured = measure_intra_block(load_workload(bench_name), 30_000)
    for value, locked in zip(measured, LOCKED_INTRA_BLOCK[bench_name]):
        assert value == pytest.approx(locked, abs=3.0), (
            f"{bench_name} drifted: measured {measured}, "
            f"locked {LOCKED_INTRA_BLOCK[bench_name]}"
        )


@pytest.mark.parametrize("bench_name", sorted(LOCKED_INTRA_BLOCK))
def test_eir_dominance_holds_suite_wide(bench_name):
    """sequential <= interleaved and banked <= collapsing <= perfect, by
    fetch-only EIR, for every benchmark at the widest machine."""
    workload = load_workload(bench_name)
    trace = generate_trace(workload.program, workload.behavior, 8_000)
    eirs = {
        scheme: measure_eir(trace, PI12, scheme).eir
        for scheme in (*HARDWARE_SCHEMES, "perfect")
    }
    slack = 1.02  # small tolerance for prediction-order noise
    assert eirs["sequential"] <= eirs["interleaved_sequential"] * slack
    assert eirs["interleaved_sequential"] <= eirs["collapsing_buffer"] * slack
    assert eirs["banked_sequential"] <= eirs["collapsing_buffer"] * slack
    assert eirs["collapsing_buffer"] <= eirs["perfect"] * slack
