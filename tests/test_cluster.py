"""Tests for the multi-replica cluster: hash ring, balancer, chaos.

Three layers, cheapest first:

* pure-logic tests of :class:`~repro.hashring.ConsistentRing` and the
  balancer's :class:`~repro.service.balancer.ReplicaState` machine;
* in-process cluster tests — several real :class:`ServiceServer`
  replicas plus a real :class:`Balancer` on daemon-thread event loops —
  covering routing, coalescing preservation, readiness gating, ejection
  and failover without a single subprocess;
* the **chaos gauntlet** — a real :class:`ClusterManager` fleet of
  ``repro serve`` subprocesses under a deterministic ``REPRO_FAULTS``
  schedule (``service.replica`` crash/hang injections, a ``cache.shard``
  poisoning) with ``loadgen --cluster`` asserting that every request
  completes bit-identical to the in-process reference run.

The sharded result-cache tier (consistent hashing over
``REPRO_CACHE_SHARDS``, per-shard health) is tested here too: shard
takeover must degrade *one* shard to compute-through, never the whole
process.
"""

import asyncio
import contextlib
import errno
import json
import os
import signal
import tempfile
import threading
import time

import pytest

from repro import faults
from repro.hashring import ConsistentRing
from repro.service.balancer import Balancer, ReplicaState
from repro.service.client import ServiceClient, ServiceError
from repro.service.cluster import ClusterManager
from repro.service.loadgen import run_loadgen
from repro.service.protocol import job_key, validate_job
from repro.service.scheduler import JobScheduler
from repro.service.server import ServiceServer
from repro.sim import cache
from repro.sim.batch import _run_job
from repro.sim.supervisor import SupervisorConfig, WorkerPool

FAST = SupervisorConfig(
    max_attempts=3,
    backoff_base=0.01,
    backoff_max=0.05,
    backoff_jitter=0.1,
    poll_interval=0.01,
)

JOB = {
    "benchmark": "ora",
    "machine": "PI4",
    "scheme": "sequential",
    "length": 2_000,
    "warmup": 400,
}


def arm(spec: str) -> None:
    os.environ["REPRO_FAULTS"] = spec
    faults.reload()


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    """Isolated caches, fast balancer knobs, faults disarmed on exit."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_BALANCE_PROBE_INTERVAL", "0.05")
    monkeypatch.setenv("REPRO_BALANCE_TRY_TIMEOUT", "3")
    monkeypatch.setenv("REPRO_CACHE_CLAIM_TTL", "1")
    faults.reload()
    yield
    # Tests set these two via os.environ directly (so subprocesses
    # inherit them); delenv-on-absent registers no monkeypatch undo,
    # so pop them ourselves.
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_CACHE_SHARDS", None)
    faults.reload()
    cache.reset_runtime_disable()
    cache.reset_stats()


# -- consistent hash ring -----------------------------------------------------


def test_ring_owner_is_deterministic_and_spread():
    ring = ConsistentRing(["r1", "r2", "r3"])
    keys = [f"key-{i}" for i in range(300)]
    owners = [ring.owner(k) for k in keys]
    assert owners == [ring.owner(k) for k in keys]  # stable
    by_node = {n: owners.count(n) for n in ("r1", "r2", "r3")}
    assert all(count > 30 for count in by_node.values())  # spread


def test_ring_removal_only_remaps_lost_nodes_keys():
    full = ConsistentRing(["r1", "r2", "r3"])
    reduced = ConsistentRing(["r1", "r3"])
    moved = 0
    for i in range(300):
        key = f"key-{i}"
        before, after = full.owner(key), reduced.owner(key)
        if before == "r2":
            assert after in ("r1", "r3")
            moved += 1
        else:
            assert after == before  # consistency: survivors keep keys
    assert moved > 0


def test_ring_preference_is_distinct_failover_order():
    ring = ConsistentRing(["r1", "r2", "r3"])
    pref = ring.preference("some-key")
    assert pref[0] == ring.owner("some-key")
    assert sorted(pref) == ["r1", "r2", "r3"]  # all nodes, no dupes
    with pytest.raises(ValueError):
        ConsistentRing([])
    with pytest.raises(ValueError):
        ConsistentRing(["a", "a"])


# -- replica state machine ----------------------------------------------------


def test_replica_state_ejects_on_consecutive_errors_and_recovers():
    replica = ReplicaState("r1", "127.0.0.1", 1234)
    assert replica.routable
    for _ in range(2):
        replica.record_failure("ConnectionRefusedError")
    assert replica.should_eject() is None  # threshold is 3
    replica.record_failure("ConnectionRefusedError")
    assert replica.should_eject() == "consecutive_errors"
    replica.eject(time.monotonic(), "consecutive_errors")
    assert not replica.routable and replica.state == "ejected"
    first_window = replica.ejected_until
    replica.recover()
    assert replica.routable and replica.recoveries == 1
    assert replica.consecutive_errors == 0
    # A second ejection backs off longer than the first.
    replica.eject(time.monotonic(), "again")
    assert replica.ejected_until - time.monotonic() > (
        first_window - time.monotonic()
    )


def test_replica_state_ejects_on_ewma_latency():
    replica = ReplicaState("r1", "127.0.0.1", 1234)
    for _ in range(50):
        replica.record_success(30.0)  # pathologically slow but "working"
    assert replica.should_eject() == "ewma_latency"
    replica.record_success(0.001)
    # One fast response decays the EWMA but does not clear it outright.
    assert replica.ewma_latency > 1.0


# -- in-process cluster -------------------------------------------------------


class _Replica:
    """One in-process ServiceServer on its own daemon-thread loop."""

    def __init__(self, name: str, max_queue: int = 16) -> None:
        self.name = name
        self.pool = WorkerPool(_run_job, processes=0, config=FAST)
        self.scheduler = JobScheduler(self.pool, max_queue=max_queue, name=name)
        self.server = ServiceServer(self.scheduler, port=0)
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_until_complete(
                self.server.run(install_signal_handlers=False)
            )
            self.loop.close()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(10), f"replica {name} did not start"

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
            self.thread.join(60)
        assert not self.thread.is_alive()


@contextlib.contextmanager
def cluster(replicas=2, max_queue=16):
    """N in-process replicas fronted by a real Balancer."""
    fleet = [_Replica(f"r{i + 1}", max_queue) for i in range(replicas)]
    balancer = Balancer(
        [ReplicaState(r.name, "127.0.0.1", r.port) for r in fleet],
        port=0,
    )
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(balancer.start())
        ready.set()
        loop.run_until_complete(balancer.run())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "balancer did not start"
    try:
        yield balancer, fleet
    finally:
        loop.call_soon_threadsafe(balancer.request_shutdown)
        thread.join(60)
        assert not thread.is_alive(), "balancer did not shut down"
        for replica in fleet:
            replica.stop()


def _wait_until(predicate, timeout=10.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_balancer_routes_by_job_key_and_preserves_coalescing():
    spec_a = dict(JOB)
    spec_b = dict(JOB, machine="PI8")
    with cluster(replicas=3) as (balancer, fleet):
        with ServiceClient(port=balancer.port) as client:
            runs = [
                client.run_job(spec, wait=30)
                for spec in (spec_a, spec_a, spec_b, spec_b)
            ]
    # Identical specs landed on the same replica (same job id), so the
    # scheduler memo/coalescing still collapsed them to one simulation.
    assert runs[0]["id"] == runs[1]["id"]
    assert runs[2]["id"] == runs[3]["id"]
    for record, spec in zip(runs, (spec_a, spec_a, spec_b, spec_b)):
        assert record["status"] == "done"
        assert record["result"] == json.loads(
            json.dumps(_run_job(validate_job(dict(spec))).as_dict())
        )
        # The ring routed by job key, and said so.
        expected = balancer.ring.owner(job_key(validate_job(dict(spec))))
        assert record["balancer"]["replica"] == expected
        assert record["id"].startswith(expected + "-job-")


def test_balancer_routes_polls_by_job_id_prefix():
    with cluster(replicas=2) as (balancer, fleet):
        with ServiceClient(port=balancer.port) as client:
            record = client.run_job(JOB, wait=30)
            again = client.poll(record["id"], wait=5)
            assert again["id"] == record["id"]
            assert again["status"] == "done"
            # A poll for a replica that does not exist is a lost job.
            with pytest.raises(ServiceError) as excinfo:
                client.poll("r9-job-000001")
            assert excinfo.value.status == 404
            assert excinfo.value.payload.get("lost") is True


def test_readyz_gates_routing_away_from_draining_replica():
    with cluster(replicas=2) as (balancer, fleet):
        with ServiceClient(port=balancer.port) as client:
            assert client.request("GET", "/readyz").status == 200
            # Drain r1: alive (healthz answers) but not ready.
            fleet[0].scheduler.drain(timeout=10)
            assert _wait_until(
                lambda: not balancer.replicas["r1"].routable
            ), "draining replica was never gated out"
            # The balancer itself stays ready on the surviving replica,
            # and every submission now lands on r2.
            assert client.request("GET", "/readyz").status == 200
            for seed in range(3):
                record = client.run_job(dict(JOB, seed=seed), wait=30)
                assert record["id"].startswith("r2-job-")
                assert record["status"] == "done"


def test_dead_replica_is_ejected_and_submissions_fail_over():
    with cluster(replicas=2) as (balancer, fleet):
        # Find a spec the ring assigns to r1, then kill r1.
        spec = None
        for seed in range(50):
            candidate = dict(JOB, seed=seed)
            if balancer.ring.owner(job_key(validate_job(dict(candidate)))) == "r1":
                spec = candidate
                break
        assert spec is not None
        fleet[0].stop()
        with ServiceClient(port=balancer.port) as client:
            # Whether the submit raced the probe loop (balancer-side
            # failover) or came after ejection (routed straight past
            # r1), the job completes on the survivor.
            record = client.run_job(spec, wait=30, deadline=60)
            assert record["status"] == "done"
            assert record["balancer"]["replica"] == "r2"
            assert _wait_until(
                lambda: balancer.replicas["r1"].state == "ejected"
            ), "dead replica was never ejected"
            metrics = client.metrics()
            counters = metrics["balancer"]["counters"]
            assert counters["balance.ejections"] >= 1
            states = {
                r["name"]: r["state"] for r in metrics["replicas"]
            }
            assert states == {"r1": "ejected", "r2": "healthy"}


def test_ejected_replica_recovers_through_half_open_probe():
    with cluster(replicas=2) as (balancer, fleet):
        port = fleet[0].port
        fleet[0].stop()
        assert _wait_until(
            lambda: balancer.replicas["r1"].state == "ejected"
        ), "dead replica was never ejected"
        # Resurrect r1 on the same port; after the cooldown the next
        # probe runs the half-open trial and promotes it back.
        pool = WorkerPool(_run_job, processes=0, config=FAST)
        scheduler = JobScheduler(pool, max_queue=16, name="r1")
        server = ServiceServer(scheduler, port=port)
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            ready.set()
            loop.run_until_complete(server.run(install_signal_handlers=False))
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:
            assert _wait_until(
                lambda: balancer.replicas["r1"].state == "healthy",
                timeout=15.0,
            ), "ejected replica never recovered"
            assert balancer.replicas["r1"].recoveries >= 1
            assert balancer.registry.as_dict()["counters"][
                "balance.recoveries"
            ] >= 1
        finally:
            loop.call_soon_threadsafe(server.request_shutdown)
            thread.join(60)


def test_client_retry_honors_total_deadline_budget():
    with cluster(replicas=1) as (balancer, fleet):
        fleet[0].scheduler.drain(timeout=10)
        assert _wait_until(lambda: not balancer.replicas["r1"].routable)
        # Every try now yields 503 + Retry-After; without a budget the
        # client would sleep through max_retries backoffs.
        with ServiceClient(
            port=balancer.port, max_retries=8, backoff=5.0
        ) as client:
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST",
                    "/v1/jobs",
                    JOB,
                    deadline=time.monotonic() + 0.5,
                )
            elapsed = time.monotonic() - started
    assert excinfo.value.status == 503
    assert elapsed < 3.0  # gave up at the budget, not after 8 x 5s


# -- sharded result cache -----------------------------------------------------


def _shard_roots(tmp_path, count=3):
    roots = [tmp_path / f"shard{i}" for i in range(count)]
    os.environ["REPRO_CACHE_SHARDS"] = os.pathsep.join(str(r) for r in roots)
    return roots


def test_cache_shards_partition_keys_consistently(tmp_path, monkeypatch):
    _shard_roots(tmp_path)
    keys = [("k", i) for i in range(60)]
    for key in keys:
        cache.store("sim_stats", key, {"v": key[1]})
    for key in keys:
        assert cache.load("sim_stats", key) == {"v": key[1]}
    populated = [s for s in cache.shard_stats() if s["stores"] > 0]
    assert len(populated) == 3  # keys spread over every shard
    assert sum(s["stores"] for s in cache.shard_stats()) == len(keys)


def test_readonly_shard_degrades_to_compute_through_per_shard(
    tmp_path, monkeypatch
):
    """Satellite: mid-sweep EROFS on one shard must disable *that shard
    only* — siblings keep caching and the process keeps computing."""
    roots = _shard_roots(tmp_path)
    keys = [("k", i) for i in range(60)]
    for key in keys:
        cache.store("sim_stats", key, {"v": key[1]})
    shards = cache.shards()
    victim = shards[0]
    victim_keys = [
        key
        for key in keys
        if cache._entry(  # noqa: SLF001 - routing oracle for the test
            "sim_stats", key
        )[0]
        is victim
    ]
    assert victim_keys, "no keys routed to the victim shard"
    # Remount the victim read-only, as far as the cache can tell: its
    # temp-file creation raises EROFS (chmod is no use — the suite may
    # run as root, which ignores permission bits).
    real_mkstemp = tempfile.mkstemp

    def readonly_mkstemp(*args, **kwargs):
        if str(kwargs.get("dir", "")).startswith(str(victim.root)):
            raise OSError(errno.EROFS, "read-only file system")
        return real_mkstemp(*args, **kwargs)

    monkeypatch.setattr(tempfile, "mkstemp", readonly_mkstemp)
    cache.reset_stats()
    for key in victim_keys:
        cache.store("sim_stats", ("fresh",) + key, {"v": 1})
    assert victim.disabled, "victim shard was not auto-disabled"
    assert victim.auto_disabled == 1
    # Scoped per shard, not process-global:
    assert [s.disabled for s in shards].count(True) == 1
    assert cache.cache_enabled()  # the tier as a whole stays on
    assert cache.stats.auto_disabled == 1
    # Sibling shards still store and load.
    healthy_key = next(
        key
        for key in keys
        if cache._entry("sim_stats", key)[0] is not victim
    )
    assert cache.load("sim_stats", healthy_key) is not None
    # The disabled shard's keys compute through (no claim, no I/O).
    calls = []
    value = cache.get_or_compute(
        "sim_stats", victim_keys[0] + ("more",), lambda: calls.append(1) or 7
    )
    assert value == 7 and calls == [1]
    cache.reset_runtime_disable()
    assert not victim.disabled  # re-armed for the next run


def test_cache_shard_fault_injection_poisons_exactly_one_shard(tmp_path):
    _shard_roots(tmp_path, count=2)
    shards = cache.shards()
    arm("seed=2;cache.shard=oserror:p=1:n=1")
    cache.reset_stats()
    value = cache.get_or_compute("sim_stats", ("chaos", 1), lambda: 42)
    assert value == 42  # the injected EROFS never surfaced to the caller
    assert [s.disabled for s in shards].count(True) == 1
    assert cache.stats.auto_disabled == 1
    assert cache.cache_enabled()
    # The surviving shard still round-trips.
    healthy = next(s for s in shards if not s.disabled)
    for i in range(40):
        key = ("after", i)
        if cache._entry("sim_stats", key)[0] is healthy:
            cache.store("sim_stats", key, {"ok": True})
            assert cache.load("sim_stats", key) == {"ok": True}
            break


# -- chaos gauntlet: subprocess fleet under deterministic fault schedule ------


def _start_balancer_thread(manager):
    balancer = Balancer(
        [
            ReplicaState(r.name, r.host, r.port)
            for r in manager.replicas
        ],
        port=0,
    )
    balancer.cluster = manager
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(balancer.start())
        ready.set()
        loop.run_until_complete(balancer.run())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "balancer did not start"
    return balancer, loop, thread


def test_run_job_reroutes_when_poll_comes_back_404():
    """Unit test of the client's reroute loop: a 404 poll (the serving
    replica died and took its record) resubmits the identical job and
    surfaces the reroute on the returned record."""
    client = ServiceClient(port=1)  # stubs below; never connects
    calls = {"submit": 0, "poll": 0}

    def fake_submit(job, wait=0.0, deadline=None):
        calls["submit"] += 1
        if calls["submit"] == 1:
            return {"id": "r1-job-000001", "status": "running"}
        return {
            "id": "r2-job-000001",
            "status": "done",
            "result": {"ok": 1},
            "server_seconds": 0.01,
        }

    def fake_poll(job_id, wait=0.0, deadline=None):
        calls["poll"] += 1
        raise ServiceError(404, {"error": "job unreachable", "lost": True})

    client.submit = fake_submit
    client.poll = fake_poll
    record = client.run_job(JOB, wait=0.1, deadline=10)
    assert record["status"] == "done"
    assert record["result"] == {"ok": 1}
    assert record["rerouted"] == 1
    assert calls == {"submit": 2, "poll": 1}


def test_lost_job_is_rerouted_and_bit_identical():
    """SIGKILL the replica that owns an in-flight job mid-poll: the
    client's next poll 404s, it resubmits, and the job completes
    bit-identically on the survivor — zero client-visible failures."""
    manager = ClusterManager(count=2, workers=0, max_queue=16)
    manager.start()
    try:
        manager.wait_ready(timeout=60)
        balancer, loop, thread = _start_balancer_thread(manager)
        slow = dict(JOB, length=2_000_000, warmup=1_000, seed=77)
        owner = balancer.ring.owner(job_key(validate_job(dict(slow))))
        victim = next(r for r in manager.replicas if r.name == owner)
        # ~5s of simulation; the kill lands while the client polls.
        killer = threading.Timer(
            1.5, os.kill, args=(victim.proc.pid, signal.SIGKILL)
        )
        killer.start()
        with ServiceClient(port=balancer.port) as client:
            record = client.run_job(slow, wait=0.5, deadline=120)
        killer.cancel()
        assert record["status"] == "done"
        reference = json.loads(
            json.dumps(_run_job(validate_job(dict(slow))).as_dict())
        )
        assert record["result"] == reference
        loop.call_soon_threadsafe(balancer.request_shutdown)
        thread.join(60)
    finally:
        manager.stop()


def test_chaos_gauntlet_zero_lost_requests_bit_identical(tmp_path):
    """The acceptance gauntlet: 3 replicas under a deterministic
    ``service.replica`` crash+hang schedule with one ``cache.shard``
    poisoned, hammered by ``loadgen --cluster`` — every request must
    complete, bit-identical to the faultless reference."""
    _shard_roots(tmp_path)
    # Deterministic schedule: SIGKILL one replica (n=1 crash), SIGSTOP
    # another for 3 seconds (n=1 hang), poison one cache shard per
    # replica process (n=1 oserror).  Seeded: same kills every run.
    arm(
        "seed=13;service.replica=crash:p=0.08:n=1;"
        "cache.shard=oserror:p=1:n=1"
    )
    mix = [dict(JOB), dict(JOB, machine="PI8")]
    manager = ClusterManager(count=3, workers=0, max_queue=32)
    manager.start()
    try:
        manager.wait_ready(timeout=60)
        balancer, loop, thread = _start_balancer_thread(manager)

        stop_monitor = threading.Event()

        def monitor() -> None:
            while not stop_monitor.is_set():
                try:
                    manager.tick()
                except faults.FaultInjected:
                    manager.registry.inc("cluster.monitor_faults")
                time.sleep(0.1)

        ticker = threading.Thread(target=monitor, daemon=True)
        ticker.start()
        report = run_loadgen(
            port=balancer.port,
            clients=4,
            duration=3.0,
            mix=mix,
            wait=2.0,
            output=None,
            quiet=True,
            cluster=True,
        )
        # Phase 2: hang injection (a wedged-but-alive replica).
        arm("seed=7;service.replica=hang:p=0.1:n=1:s=3")
        report2 = run_loadgen(
            port=balancer.port,
            clients=4,
            duration=3.0,
            mix=mix,
            wait=2.0,
            output=None,
            quiet=True,
            cluster=True,
        )
        # Let the last ejection heal: the faults are exhausted (n=1
        # each), so every ejected replica must come back through a
        # half-open probe — possibly after its 1-2 s cooldown.
        if balancer.registry.as_dict()["counters"].get(
            "balance.ejections", 0
        ):
            _wait_until(
                lambda: balancer.registry.as_dict()["counters"].get(
                    "balance.recoveries", 0
                )
                >= 1,
                timeout=20,
            )
        stop_monitor.set()
        ticker.join(10)
        counters = manager.registry.as_dict()["counters"]
        balance_counters = balancer.registry.as_dict()["counters"]
        loop.call_soon_threadsafe(balancer.request_shutdown)
        thread.join(60)
    finally:
        os.environ.pop("REPRO_FAULTS", None)
        faults.reload()
        manager.stop()

    for phase, rep in (("crash", report), ("hang", report2)):
        section = rep["cluster"]
        assert section["requests_failed"] == 0, (phase, rep)
        assert section["bit_identical"] is True, (phase, rep)
        assert rep["timed_phase"]["requests_completed"] > 0, phase
    # The faults really happened and the cluster really healed.
    assert counters.get("cluster.crashes_injected", 0) >= 1
    assert counters.get("cluster.hangs_injected", 0) >= 1
    assert counters.get("cluster.respawns", 0) >= 1
    assert balance_counters.get("balance.ejections", 0) >= 1
    assert balance_counters.get("balance.recoveries", 0) >= 1
