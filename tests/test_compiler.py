"""Tests for the compiler subsystem: profiling, trace selection, layout,
padding, and the local scheduler."""

import pytest

from repro.compiler import (
    collect_profile,
    pad_all,
    pad_trace,
    reorder_program,
    schedule_block_body,
    schedule_program,
    select_traces,
)
from repro.isa import Instruction, OpClass
from repro.program import ProgramBuilder, TermKind
from repro.workloads import generate_trace, load_workload


def hot_hammock_program(taken_prob=0.9):
    """main: loop { if (cond) skip 3 cold instructions } — the taken
    branch should be flipped by reordering."""
    b = ProgramBuilder("hammock")
    b.begin_function("main")
    loop = b.new_label()
    skip = b.new_label()
    b.bind(loop)
    b.ialu(1, 1)
    b.branch_if(1, skip, probability=taken_prob)
    b.ialu(2, 1)
    b.ialu(2, 2)
    b.ialu(2, 2)
    b.bind(skip)
    b.ialu(3, 1)
    b.branch_if(3, loop, probability=0.95)
    b.ret()
    b.end_function()
    return b, b.finish()


class TestProfile:
    def test_counts_follow_probabilities(self):
        from repro.workloads import BehaviorModel

        builder, program = hot_hammock_program(taken_prob=0.9)
        behavior = BehaviorModel.from_probabilities(
            builder.branch_probabilities
        )
        profile = collect_profile(program, behavior, seeds=(1, 2, 3))
        cond_blocks = program.cfg.conditional_blocks()
        hammock = min(cond_blocks, key=lambda blk: blk.block_id)
        taken = profile.edge_counts.get(
            (hammock.block_id, hammock.taken_id), 0
        )
        fall = profile.edge_counts.get(
            (hammock.block_id, hammock.fall_id), 0
        )
        assert taken > 5 * fall  # ~9:1 expected

    def test_all_executed_blocks_counted(self):
        workload = load_workload("ora")
        profile = collect_profile(
            workload.program, workload.behavior, seeds=(1,), max_transitions=5000
        )
        assert sum(profile.block_counts.values()) == 5000


class TestTraceSelection:
    def test_traces_partition_blocks(self):
        workload = load_workload("compress")
        profile = collect_profile(workload.program, workload.behavior)
        traces = select_traces(workload.program.cfg, profile)
        order = traces.layout_order()
        assert sorted(order) == list(range(len(workload.program.cfg.blocks)))

    def test_traces_stay_within_functions(self):
        workload = load_workload("li")
        profile = collect_profile(workload.program, workload.behavior)
        traces = select_traces(workload.program.cfg, profile)
        cfg = workload.program.cfg
        for trace in traces.traces:
            funcs = {cfg.block(bid).func_id for bid in trace}
            assert len(funcs) == 1

    def test_hot_path_grouped(self):
        from repro.workloads import BehaviorModel

        builder, program = hot_hammock_program(taken_prob=0.95)
        behavior = BehaviorModel.from_probabilities(
            builder.branch_probabilities
        )
        profile = collect_profile(program, behavior, seeds=(1,))
        traces = select_traces(program.cfg, profile)
        cond = min(program.cfg.conditional_blocks(), key=lambda b: b.block_id)
        # The hot trace contains the branch followed by its (hot) taken
        # successor.
        for trace in traces.traces:
            if cond.block_id in trace:
                index = trace.index(cond.block_id)
                assert trace[index + 1] == cond.taken_id
                break
        else:  # pragma: no cover
            pytest.fail("branch block not in any trace")


class TestReordering:
    def test_semantics_preserved(self):
        """Original and reordered programs execute the same logical
        instruction stream from the same seed."""
        for name in ("compress", "espresso", "ora"):
            workload = load_workload(name)
            result = reorder_program(workload.program, workload.behavior)
            original = generate_trace(
                workload.program, workload.behavior, 15000, seed=0
            )
            reordered = generate_trace(
                result.program, workload.behavior, 15000, seed=0
            )

            def signature(trace):
                return [
                    (i.op, i.dest, i.src1, i.src2)
                    for i in trace.instructions
                    if not i.is_control and not i.is_nop
                ]

            a, b = signature(original), signature(reordered)
            n = min(len(a), len(b))
            assert a[:n] == b[:n]

    def test_hot_branch_flipped(self):
        from repro.workloads import BehaviorModel

        builder, program = hot_hammock_program(taken_prob=0.9)
        behavior = BehaviorModel.from_probabilities(
            builder.branch_probabilities
        )
        result = reorder_program(program, behavior)
        assert result.flipped_branches >= 1
        flipped = [b for b in result.program.cfg.blocks if b.flipped]
        assert flipped

    def test_reduces_taken_branches_on_suite(self):
        from repro.metrics import taken_branch_reduction

        workload = load_workload("compress")
        result = reorder_program(workload.program, workload.behavior)
        original = generate_trace(workload.program, workload.behavior, 40000)
        reordered = generate_trace(result.program, workload.behavior, 40000)
        assert taken_branch_reduction(original, reordered) > 0.10

    def test_layout_is_valid_program(self):
        workload = load_workload("gcc")
        result = reorder_program(workload.program, workload.behavior)
        result.program.cfg.validate()
        # Addresses dense.
        addresses = [i.address for i in result.program.instructions]
        assert addresses == list(range(len(addresses)))


class TestPadding:
    def test_pad_all_aligns_every_block(self):
        workload = load_workload("ora")
        padded = pad_all(workload.program, 4)
        cfg = padded.program.cfg
        starts = [
            padded.program.block_start[bid]
            for bid in padded.program.block_order
            if cfg.block(bid).body and not cfg.block(bid).body[0].is_nop
        ]
        assert all(s % 4 == 0 for s in starts)

    def test_pad_trace_aligns_hot_trace_heads(self):
        workload = load_workload("compress")
        reordered = reorder_program(workload.program, workload.behavior)
        padded = pad_trace(reordered, 4)
        assert padded.nops_inserted > 0
        threshold = max(1, int(0.05 * max(reordered.trace_heats)))
        position = 0
        for trace, heat in zip(reordered.traces, reordered.trace_heats):
            if heat >= threshold and position > 0:
                start = padded.program.block_start[trace[0]]
                assert start % 4 == 0
            position += len(trace)

    def test_padding_preserves_semantics(self):
        workload = load_workload("eqntott")
        padded = pad_all(workload.program, 8)
        original = generate_trace(workload.program, workload.behavior, 10000)
        after = generate_trace(padded.program, workload.behavior, 12000)

        def signature(trace):
            return [
                (i.op, i.dest, i.src1, i.src2)
                for i in trace.instructions
                if not i.is_control and not i.is_nop
            ]

        a, b = signature(original), signature(after)
        n = min(len(a), len(b))
        assert a[:n] == b[:n]

    def test_pad_trace_much_cheaper_than_pad_all(self):
        workload = load_workload("sc")
        reordered = reorder_program(workload.program, workload.behavior)
        all_cost = pad_all(workload.program, 8).expansion
        trace_cost = pad_trace(reordered, 8).expansion
        assert trace_cost < all_cost / 4

    def test_expansion_grows_with_block_size(self):
        workload = load_workload("li")
        costs = [pad_all(workload.program, k).expansion for k in (4, 8, 16)]
        assert costs[0] < costs[1] < costs[2]

    def test_rejects_bad_block_size(self):
        workload = load_workload("li")
        with pytest.raises(ValueError):
            pad_all(workload.program, 0)


class TestScheduler:
    def test_preserves_instruction_multiset(self):
        body = [
            Instruction(OpClass.IALU, dest=1, src1=2),
            Instruction(OpClass.LOAD, dest=2, src1=1),
            Instruction(OpClass.IALU, dest=3, src1=1, src2=2),
            Instruction(OpClass.STORE, src1=3, src2=2),
        ]
        scheduled = schedule_block_body(body)
        assert sorted(id(i) for i in scheduled) == sorted(id(i) for i in body)

    def test_respects_raw_dependency(self):
        producer = Instruction(OpClass.IALU, dest=1)
        consumer = Instruction(OpClass.IALU, dest=2, src1=1)
        scheduled = schedule_block_body([producer, consumer])
        assert scheduled.index(producer) < scheduled.index(consumer)

    def test_respects_memory_order(self):
        store = Instruction(OpClass.STORE, src1=1, src2=2)
        load = Instruction(OpClass.LOAD, dest=3, src1=4)
        filler = Instruction(OpClass.IALU, dest=5)
        scheduled = schedule_block_body([store, filler, load])
        assert scheduled.index(store) < scheduled.index(load)

    def test_hoists_independent_work_past_long_latency(self):
        load = Instruction(OpClass.LOAD, dest=1, src1=9)
        dependent = Instruction(OpClass.IALU, dest=2, src1=1)
        independent = Instruction(OpClass.IALU, dest=3, src1=9)
        scheduled = schedule_block_body([load, dependent, independent])
        # The independent op fills the load shadow.
        assert scheduled.index(independent) < scheduled.index(dependent)

    def test_schedule_program_keeps_semantics(self):
        workload = load_workload("wave5")
        scheduled = schedule_program(workload.program)
        scheduled.cfg.validate()
        assert (
            scheduled.num_instructions == workload.program.num_instructions
        )
        original = generate_trace(workload.program, workload.behavior, 5000)
        after = generate_trace(scheduled, workload.behavior, 5000)
        # Same blocks execute in the same order (bodies permuted within).
        assert original.block_sequence() == after.block_sequence()


class TestSuperblocks:
    def test_semantics_preserved(self):
        from repro.compiler import form_superblocks

        for name in ("compress", "ora"):
            workload = load_workload(name)
            result = form_superblocks(workload.program, workload.behavior)
            original = generate_trace(
                workload.program, workload.behavior, 12000, seed=0
            )
            formed = generate_trace(
                result.program, workload.behavior, 12000, seed=0
            )

            def signature(trace):
                return [
                    (i.op, i.dest, i.src1, i.src2)
                    for i in trace.instructions
                    if not i.is_control and not i.is_nop
                ]

            a, b = signature(original), signature(formed)
            n = min(len(a), len(b))
            assert a[:n] == b[:n]

    def test_duplicates_counted_and_bounded(self):
        from repro.compiler import form_superblocks

        workload = load_workload("espresso")
        result = form_superblocks(workload.program, workload.behavior)
        assert result.duplicated_blocks > 0
        assert 0 < result.code_growth < 0.5  # modest duplication only
        assert (
            result.program.num_instructions
            == result.original_size + result.duplicated_instructions
            + result.reorder.inserted_jumps - result.reorder.removed_jumps
        )

    def test_hot_superblocks_have_single_entry(self):
        """After formation, a hot trace's non-head blocks have exactly one
        static predecessor (the previous trace block)."""
        from repro.compiler import form_superblocks

        workload = load_workload("compress")
        result = form_superblocks(workload.program, workload.behavior)
        cfg = result.program.cfg
        predecessors = {}
        for block in cfg.blocks:
            for successor in block.successors():
                predecessors.setdefault(successor, set()).add(block.block_id)
        heats = result.reorder.trace_heats
        threshold = max(1, int(0.05 * max(heats)))
        checked = 0
        for trace, heat in zip(result.reorder.traces, heats):
            if heat < threshold or len(trace) < 2:
                continue
            for prev, here in zip(trace, trace[1:]):
                block = cfg.block(here)
                if block.block_id < len(workload.program.cfg.blocks):
                    continue  # an original block (head section), skip
                preds = predecessors.get(here, set())
                assert preds <= {prev}, (trace, here, preds)
                checked += 1
        assert checked > 0

    def test_cold_traces_left_alone(self):
        from repro.compiler import form_superblocks

        workload = load_workload("ora")
        result = form_superblocks(
            workload.program, workload.behavior, min_trace_heat=1.1
        )
        # Threshold above every trace: nothing duplicated.
        assert result.duplicated_blocks == 0
