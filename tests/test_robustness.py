"""Chaos tests for the resilient sweep engine.

Covers the deterministic fault harness (``repro.faults``), the
supervised batch executor (``repro.sim.supervisor``) — crash, hang,
transient-exception and serial-degrade recovery with bit-identical
results — the sweep journal and ``--resume``, and the hardened result
cache (injected corruption, injected ``ENOSPC`` degrade-to-off).
"""

import json
import multiprocessing
import os

import pytest

from repro import faults
from repro.sim import cache
from repro.sim.batch import (
    BatchError,
    SimJob,
    SupervisorConfig,
    SweepJournal,
    _run_job,
    run_batch,
    run_batch_report,
    suite_jobs,
)
from repro.sim.supervisor import run_supervised

#: Fast supervision policy so retries/backoff cost milliseconds.
FAST = SupervisorConfig(
    max_attempts=3,
    backoff_base=0.01,
    backoff_max=0.05,
    backoff_jitter=0.1,
    poll_interval=0.02,
)

FORK_ONLY = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def make_jobs(schemes=("sequential", "collapsing_buffer"), length=3000):
    return suite_jobs(
        ("ora",), ("PI4",), tuple(schemes), length=length, warmup=800
    )


def disarm() -> None:
    os.environ.pop("REPRO_FAULTS", None)
    faults.reload()


def arm(spec: str) -> None:
    os.environ["REPRO_FAULTS"] = spec
    faults.reload()


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every test leaves the harness off and the cache re-armed, however
    it exits (monkeypatch teardown ordering is not enough because the
    parsed plan is memoised per process)."""
    yield
    os.environ.pop("REPRO_FAULTS", None)
    faults.reload()
    cache.reset_runtime_disable()
    cache.reset_stats()


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    return tmp_path


# -- fault spec and schedule --------------------------------------------------


class TestFaultSpec:
    def test_parse_full_grammar(self):
        plan = faults.parse_spec(
            "seed=9; batch.worker=crash:p=0.5:n=3:a=1; cache.load=corrupt; "
            "sim.run=hang:s=2.5"
        )
        assert plan is not None and plan.seed == 9
        rule = plan.rules["batch.worker"]
        assert (rule.kind, rule.probability, rule.max_injections, rule.max_attempt) == (
            "crash",
            0.5,
            3,
            1,
        )
        assert plan.rules["cache.load"].probability == 1.0
        assert plan.rules["sim.run"].seconds == 2.5

    def test_empty_spec_is_off(self):
        assert faults.parse_spec("") is None
        assert faults.parse_spec(" ; ") is None

    @pytest.mark.parametrize(
        "spec",
        [
            "batch.worker",  # no '='
            "batch.worker=explode",  # unknown kind
            "batch.worker=exc:p=2.0",  # probability out of range
            "batch.worker=exc:q=1",  # unknown parameter
            "batch.worker=exc:p",  # parameter without value
            "seed=xyz",  # bad seed
            "a=exc;a=exc",  # duplicate site
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(spec)

    def test_off_by_default(self):
        os.environ.pop("REPRO_FAULTS", None)
        faults.reload()
        assert faults.plan() is None
        faults.maybe_fail("batch.worker")  # no-op
        assert faults.decide("cache.load") is None


class TestFaultDeterminism:
    def test_untokened_schedule_reproducible(self):
        spec = "seed=11;cache.load=corrupt:p=0.5"
        first = faults.parse_spec(spec).schedule("cache.load", 64)
        second = faults.parse_spec(spec).schedule("cache.load", 64)
        assert first == second
        assert any(first) and not all(first)  # p=0.5 mixes both
        other_seed = faults.parse_spec("seed=12;cache.load=corrupt:p=0.5")
        assert other_seed.schedule("cache.load", 64) != first

    def test_schedule_matches_live_decisions(self):
        spec = "seed=11;cache.load=corrupt:p=0.5"
        plan = faults.parse_spec(spec)
        live = [plan.decide("cache.load") is not None for _ in range(64)]
        assert live == faults.parse_spec(spec).schedule("cache.load", 64)

    def test_tokened_decisions_cross_process_stable(self):
        spec = "seed=4;batch.worker=crash:p=0.5"
        reference = [
            faults.parse_spec(spec).decide("batch.worker", token=i) is not None
            for i in range(32)
        ]
        # A "different process" is just a fresh plan: decisions must match.
        plan = faults.parse_spec(spec)
        assert [
            plan.decide("batch.worker", token=i) is not None for i in range(32)
        ] == reference
        assert any(reference) and not all(reference)

    def test_attempt_gate_and_injection_cap(self):
        plan = faults.parse_spec("batch.worker=exc:a=1")
        assert plan.decide("batch.worker", token=0, attempt=1) is not None
        assert plan.decide("batch.worker", token=0, attempt=2) is None
        capped = faults.parse_spec("sim.run=exc:n=2")
        fired = sum(capped.decide("sim.run") is not None for _ in range(10))
        assert fired == 2


# -- supervised execution under chaos ----------------------------------------


class TestSupervisorChaos:
    @FORK_ONLY
    def test_worker_crashes_are_retried_bit_identically(self):
        jobs = make_jobs()
        baseline = run_batch(jobs, processes=1)
        arm("seed=7;batch.worker=crash:a=1")
        report = run_batch_report(jobs, processes=2, config=FAST)
        assert report.results == baseline  # SimStats dataclass equality
        assert all(o.status == "retried" for o in report.outcomes)
        assert all(o.attempts == 2 for o in report.outcomes)
        failures = [line for o in report.outcomes for line in o.failures]
        assert any("worker died" in line for line in failures)

    @FORK_ONLY
    def test_hung_worker_times_out_and_recovers(self):
        jobs = make_jobs(schemes=("sequential",))
        baseline = run_batch(jobs, processes=1)
        arm("seed=7;batch.worker=hang:a=1:s=60")
        config = SupervisorConfig(
            timeout=1.0,
            max_attempts=3,
            backoff_base=0.01,
            backoff_max=0.05,
            poll_interval=0.02,
        )
        report = run_batch_report(jobs, processes=2, config=config)
        assert report.results == baseline
        (outcome,) = report.outcomes
        assert outcome.status == "retried"
        assert any("timed out after 1s" in line for line in outcome.failures)

    def test_transient_exception_retried_serially(self):
        # Unique trace length: ``sim_stats`` is lru-cached per process,
        # and the ``sim.stats`` site only fires when the body runs.
        jobs = make_jobs(schemes=("sequential",), length=3100)
        arm("seed=7;sim.stats=exc:n=1")
        report = run_batch_report(jobs, processes=1, config=FAST)
        disarm()
        assert report.results == run_batch(jobs, processes=1)
        (outcome,) = report.outcomes
        assert outcome.status == "retried"
        assert "FaultInjected" in outcome.failures[0]

    def test_exhausted_retries_raise_batch_error_naming_jobs(self):
        jobs = make_jobs(schemes=("sequential",))
        arm("batch.worker=exc")  # every attempt of every job fails
        with pytest.raises(BatchError) as excinfo:
            run_batch(jobs, processes=1, config=FAST)
        assert "ora" in str(excinfo.value) and "sequential" in str(excinfo.value)
        assert [o.status for o in excinfo.value.outcomes] == ["crashed"]
        assert excinfo.value.outcomes[0].attempts == FAST.max_attempts

    @FORK_ONLY
    def test_degrades_to_serial_after_repeated_worker_failures(self):
        jobs = make_jobs()
        baseline = run_batch(jobs, processes=1)
        arm("seed=7;batch.worker=crash:a=1")
        config = SupervisorConfig(
            max_attempts=3,
            backoff_base=0.01,
            backoff_max=0.05,
            poll_interval=0.02,
            max_worker_failures=0,  # first crash abandons the pool
        )
        report = run_batch_report(jobs, processes=2, config=config)
        assert report.degraded_serial
        assert report.results == baseline
        assert all(o.status in ("ok", "retried") for o in report.outcomes)

    @FORK_ONLY
    def test_mixed_chaos_sweep_is_bit_identical(self, cache_env):
        # The acceptance scenario: worker crashes + transient simulator
        # exceptions + corrupt cache entries in one sweep, results still
        # exact.  Unique trace length keeps the parent's lru memo cold,
        # so the forked workers genuinely execute the faulted paths; the
        # no-fault baseline runs afterwards (served via the disk cache
        # the workers populated, proving that round trip too).
        jobs = make_jobs(length=3300)
        arm(
            "seed=5;batch.worker=crash:p=0.5:a=1;sim.run=exc:p=0.3:n=2;"
            "cache.load=corrupt:p=0.3:n=2"
        )
        config = SupervisorConfig(
            timeout=20.0,
            max_attempts=6,
            backoff_base=0.01,
            backoff_max=0.05,
            poll_interval=0.02,
        )
        report = run_batch_report(jobs, processes=2, config=config)
        disarm()
        assert report.results == run_batch(jobs, processes=1)
        assert all(o.status in ("ok", "retried") for o in report.outcomes)

    def test_injected_kernel_fault_degrades_to_interpreted_loop(self):
        # The compiled kernel's chaos contract: an injected ``sim.kernel``
        # fault must not fail or corrupt the run — ``Simulator.run()``
        # falls back to the interpreted loop with bit-identical results.
        from repro.machines.presets import get_machine
        from repro.sim.simulator import Simulator
        from repro.workloads.suite import load_workload
        from repro.workloads.trace import generate_trace

        workload = load_workload("ora")
        trace = generate_trace(workload.program, workload.behavior, 3000)
        machine = get_machine("PI4")

        disarm()
        clean_sim = Simulator(machine, trace, "sequential", warmup=800)
        clean = clean_sim.run()
        assert clean_sim.kernel_used

        arm("seed=5;sim.kernel=exc")
        try:
            faulted_sim = Simulator(machine, trace, "sequential", warmup=800)
            faulted = faulted_sim.run()
        finally:
            disarm()
        assert not faulted_sim.kernel_used
        assert faulted_sim.kernel_decline_reason == "fault-injected"
        assert faulted == clean
        assert faulted_sim._snapshot == clean_sim._snapshot

    def test_faults_off_results_unchanged(self):
        # With the harness disarmed the engine must behave like the
        # plain batch runner: identical results, all-ok outcomes.
        jobs = make_jobs()
        serial = run_batch(jobs, processes=1)
        report = run_batch_report(jobs, processes=2)
        assert report.results == serial
        assert report.outcome_counts == {"ok": len(jobs)}

    @FORK_ONLY
    def test_crash_storm_sweep_never_deadlocks(self, tmp_path):
        # Regression: the engine once shared a single result
        # multiprocessing.Queue across workers.  A worker that died
        # between its feeder thread's acquire and release of the queue's
        # cross-process write lock leaked the lock forever, wedging every
        # surviving worker's result delivery and hanging the supervisor
        # at result_queue.get() (reproduced ~1 in 3 runs of exactly this
        # sweep on a single-CPU host).  Results now travel over private
        # per-worker pipes, so a death can sever only its own channel.
        # Run the original repro end to end a few times under a hard
        # timeout: any hang fails the test instead of freezing the suite.
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env["REPRO_FAULTS"] = "seed=2;batch.worker=crash:p=0.4:a=1"
        for _ in range(3):
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "sweep",
                    "--benchmarks", "espresso", "li",
                    "--machines", "PI4",
                    "--schemes", "sequential", "perfect",
                    "--jobs", "2", "--retries", "2", "--length", "8000",
                ],
                capture_output=True,
                text=True,
                timeout=120,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            assert "job outcomes" in proc.stdout

    def test_empty_batch(self):
        assert run_batch([]) == []
        assert run_batch_report([]).outcomes == []


# -- journal + resume ---------------------------------------------------------


class TestJournalResume:
    def test_journal_records_every_completion(self, cache_env, tmp_path):
        jobs = make_jobs()
        journal = SweepJournal(tmp_path / "sweep")
        run_batch_report(jobs, processes=1, journal=journal)
        journal.close()
        lines = (tmp_path / "sweep" / "journal.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["source_version"] == cache.source_version()
        records = [json.loads(line) for line in lines[1:]]
        assert len(records) == len(jobs)
        assert {r["key"] for r in records} == {
            SweepJournal.job_key(job) for job in jobs
        }
        assert all(r["outcome"]["status"] == "ok" for r in records)

    def test_resume_skips_and_reproduces_bit_identically(self, cache_env, tmp_path):
        jobs = make_jobs()
        journal = SweepJournal(tmp_path / "sweep")
        first = run_batch_report(jobs, processes=1, journal=journal)
        journal.close()
        resumed = run_batch_report(
            jobs,
            processes=1,
            journal=SweepJournal(tmp_path / "sweep"),
            resume=True,
        )
        assert resumed.results == first.results
        assert resumed.outcome_counts == {"skipped": len(jobs)}

    def test_partial_journal_resumes_only_missing_work(self, cache_env, tmp_path):
        jobs = make_jobs() + suite_jobs(
            ("li",), ("PI4",), ("sequential",), length=3000, warmup=800
        )
        uninterrupted = run_batch(jobs, processes=1)
        # Simulate an interrupted sweep: only the first two jobs made it
        # into the journal before the "crash".
        journal = SweepJournal(tmp_path / "sweep")
        run_batch_report(jobs[:2], processes=1, journal=journal)
        journal.close()
        resumed = run_batch_report(
            jobs,
            processes=1,
            journal=SweepJournal(tmp_path / "sweep"),
            resume=True,
        )
        assert resumed.results == uninterrupted
        assert resumed.outcome_counts == {"skipped": 2, "ok": len(jobs) - 2}

    def test_torn_and_foreign_lines_are_skipped(self, cache_env, tmp_path):
        jobs = make_jobs(schemes=("sequential",))
        journal = SweepJournal(tmp_path / "sweep")
        run_batch_report(jobs, processes=1, journal=journal)
        journal.close()
        path = tmp_path / "sweep" / "journal.jsonl"
        with path.open("a") as handle:
            foreign = '{"type": "result", "key": "x", "digest": "0", "stats": "!"}'
            handle.write(foreign + "\n")
            handle.write('{"type": "result", "key"')  # torn final line
        completed = SweepJournal(tmp_path / "sweep").load_completed()
        assert set(completed) == {SweepJournal.job_key(jobs[0])}

    def test_stale_journal_ignored_and_truncated(self, cache_env, tmp_path):
        jobs = make_jobs(schemes=("sequential",))
        journal = SweepJournal(tmp_path / "sweep")
        run_batch_report(jobs, processes=1, journal=journal)
        journal.close()
        path = tmp_path / "sweep" / "journal.jsonl"
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["source_version"] = "someone-else's-code"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        stale = SweepJournal(tmp_path / "sweep")
        assert stale.load_completed() == {}
        # The next write starts the journal over under the real header.
        report = run_batch_report(jobs, processes=1, journal=stale, resume=True)
        stale.close()
        assert report.outcome_counts == {"ok": 1}
        fresh_header = json.loads(path.read_text().splitlines()[0])
        assert fresh_header["source_version"] == cache.source_version()

    def test_interrupt_flushes_journal_before_propagating(self, cache_env, tmp_path):
        jobs = make_jobs()
        journal = SweepJournal(tmp_path / "sweep")

        def interrupt_after_first(outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_supervised(
                jobs,
                _run_job,
                processes=1,
                config=FAST,
                journal=journal,
                on_complete=interrupt_after_first,
            )
        journal.close()
        completed = SweepJournal(tmp_path / "sweep").load_completed()
        assert len(completed) == 1  # the finished job survived the Ctrl-C


# -- hardened result cache ----------------------------------------------------


class TestCacheHardening:
    def test_injected_corruption_heals(self, cache_env):
        key = ("ora", "PI4", "sequential", 3000)
        cache.store("sim_stats", key, {"ipc": 3.4})
        arm("cache.load=corrupt:n=1")
        cache.reset_stats()
        assert cache.load("sim_stats", key) is None  # corrupt -> miss
        assert cache.stats.corrupt_dropped == 1
        # The slot healed: a fresh store/load round-trips (n=1 spent).
        cache.store("sim_stats", key, {"ipc": 3.4})
        assert cache.load("sim_stats", key) == {"ipc": 3.4}

    def test_injected_enospc_degrades_to_cache_off(self, cache_env, capsys):
        arm("cache.store=oserror:n=1")
        cache.reset_stats()
        cache.store("sim_stats", ("k",), 1)
        assert cache.stats.store_errors == 1
        assert cache.stats.auto_disabled == 1
        assert not cache.cache_enabled()  # off for the rest of the process
        cache.store("sim_stats", ("k2",), 2)
        assert cache.stats.store_errors == 1  # no further doomed writes
        assert cache.load("sim_stats", ("k",)) is None
        assert "result-cache shard 0" in capsys.readouterr().err
        cache.reset_runtime_disable()
        assert cache.cache_enabled()

    def test_worker_cache_disable_is_counted_in_batch(self, cache_env):
        # The auto-disable counter rides the worker->parent delta like
        # every other cache counter.  Unique length: the store only
        # happens when the lru-cold ``sim_stats`` body runs.
        jobs = make_jobs(schemes=("sequential",), length=3200)
        arm("cache.store=oserror:n=1")
        report = run_batch_report(jobs, processes=1, config=FAST)
        assert report.cache_stats.get("auto_disabled") == 1
        assert report.outcome_counts == {"ok": 1}


# -- CLI ----------------------------------------------------------------------


class TestSweepCLI:
    SWEEP = [
        "sweep",
        "--benchmarks",
        "ora",
        "--machines",
        "PI4",
        "--schemes",
        "sequential",
        "--length",
        "3000",
        "--warmup",
        "800",
        "--jobs",
        "1",
    ]

    def test_journal_then_resume_round_trip(self, cache_env, tmp_path, capsys):
        from repro.cli import main

        journal_dir = str(tmp_path / "sweep")
        assert main(self.SWEEP + ["--journal", journal_dir]) == 0
        first = capsys.readouterr().out
        assert main(self.SWEEP + ["--resume", journal_dir]) == 0
        second = capsys.readouterr().out
        assert "1 skipped" in second

        def table(text):
            return [
                line for line in text.splitlines() if line.startswith("ora")
            ]

        assert table(first) == table(second)

    def test_permanent_failure_exits_nonzero(self, cache_env, capsys):
        from repro.cli import main

        arm("sim.stats=exc")
        # Unique length so the lru-cold sim_stats body (and its fault
        # site) actually runs.
        args = [a if a != "3000" else "3400" for a in self.SWEEP]
        code = main(args + ["--retries", "0"])
        assert code == 1
        assert "sweep failed" in capsys.readouterr().err

    def test_manifest_carries_job_outcomes(self, cache_env, tmp_path):
        from repro.cli import main

        out = tmp_path / "telemetry"
        assert main(self.SWEEP + ["--telemetry", str(out)]) == 0
        manifest = json.loads((out / "manifest.json").read_text())
        (outcome,) = manifest["job_outcomes"]
        assert outcome["status"] == "ok"
        assert manifest["arguments"]["retries"] == 2


# -- tracing under chaos ------------------------------------------------------


class TestTracingChaos:
    """The flight recorder's no-silent-span-loss guarantees: crashed
    workers' spans survive on disk and reach the parent on retry, and an
    injected ``telemetry.trace`` fault drops spans without ever touching
    simulation results."""

    @pytest.fixture(autouse=True)
    def _traced(self, monkeypatch, tmp_path, cache_env):
        from repro.telemetry import trace as tracing

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "spans"))
        tracing.reload()
        tracing.recorder.clear()
        yield tmp_path / "spans"
        tracing.recorder.clear()
        os.environ.pop("REPRO_TRACE", None)
        os.environ.pop("REPRO_TRACE_DIR", None)
        tracing.reload()

    @FORK_ONLY
    def test_crashed_worker_spans_reach_parent_and_disk(self, _traced):
        from repro.telemetry import timeline
        from repro.telemetry import trace as tracing

        # Unique length so no earlier test warmed the in-process memo:
        # the whole sim.* span tree must really run in the workers.
        jobs = make_jobs(length=3_100)
        arm("seed=7;batch.worker=crash:a=1")
        report = run_batch_report(jobs, processes=2, config=FAST)
        assert all(o.status == "retried" for o in report.outcomes)
        # Every job's successful attempt shipped its spans back to the
        # parent recorder despite the first-attempt crashes...
        recorded = tracing.recorder.spans()
        job_spans = [s for s in recorded if s.name == "batch.job"]
        assert sorted(s.attributes["index"] for s in job_spans) == [0, 1]
        assert all(s.attributes["attempt"] == 2 for s in job_spans)
        assert {s.name for s in recorded} >= {
            "batch.run",
            "batch.job",
            "sim.run",
            "sim.kernel",
            "sim.cache",
        }
        # ...and the same spans are on disk (spilled at their origin
        # before the result message was even sent): no silent span loss.
        spilled = timeline.load_dir(_traced)
        spilled_ids = {s.span_id for s in spilled}
        for span in recorded:
            assert span.span_id in spilled_ids
        # One trace covers supervisor and both (respawned) workers.
        assert len({s.trace_id for s in recorded}) == 1
        assert len({s.pid for s in recorded}) >= 2
        # And the chaos run changed no simulation result.
        disarm()
        assert report.results == run_batch(jobs, processes=1)

    def test_injected_trace_fault_drops_spans_not_results(self):
        from repro.telemetry import trace as tracing

        jobs = make_jobs()
        disarm()
        baseline = run_batch(jobs, processes=1)
        tracing.recorder.clear()
        before_dropped = tracing.recorder.dropped
        arm("seed=11;telemetry.trace=exc:p=1")
        assert run_batch(jobs, processes=1) == baseline
        assert tracing.recorder.dropped > before_dropped
        assert tracing.recorder.spans() == []
