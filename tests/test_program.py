"""Unit tests for basic blocks, the CFG, layout, and the builder."""

import pytest

from repro.isa import Instruction, OpClass
from repro.program import (
    BasicBlock,
    BuildError,
    ControlFlowGraph,
    LayoutError,
    Program,
    ProgramBuilder,
    TermKind,
    clone_cfg,
)


def simple_loop_program(trip_probability: float = 0.8) -> Program:
    """main: 3 ALU ops, loop back once, then return."""
    b = ProgramBuilder("loop")
    b.begin_function("main")
    loop = b.new_label()
    b.bind(loop)
    b.ialu(1, 1)
    b.ialu(2, 1)
    b.ialu(3, 2)
    b.branch_if(3, loop, probability=trip_probability)
    b.ialu(4, 3)
    b.ret()
    b.end_function()
    return b.finish()


class TestBasicBlock:
    def test_validate_rejects_control_in_body(self):
        block = BasicBlock(body=[Instruction(OpClass.JUMP)])
        with pytest.raises(ValueError, match="control instruction inside"):
            block.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            BasicBlock(fall_id=1).validate()

    def test_validate_rejects_kind_mismatch(self):
        block = BasicBlock(
            body=[Instruction(OpClass.IALU, dest=1)],
            term_kind=TermKind.JUMP,
            terminator=Instruction(OpClass.BR_COND),
            taken_id=0,
        )
        with pytest.raises(ValueError, match="does not match"):
            block.validate()

    def test_successors(self):
        cond = BasicBlock(
            body=[Instruction(OpClass.IALU, dest=1)],
            term_kind=TermKind.COND,
            terminator=Instruction(OpClass.BR_COND, src1=1),
            taken_id=3,
            fall_id=4,
        )
        assert cond.successors() == (3, 4)
        ret = BasicBlock(
            term_kind=TermKind.RET, terminator=Instruction(OpClass.RET)
        )
        assert ret.successors() == ()

    def test_taken_probability_flip(self):
        block = BasicBlock()
        assert block.taken_probability(0.3) == 0.3
        block.flipped = True
        assert block.taken_probability(0.3) == pytest.approx(0.7)


class TestBuilderAndLayout:
    def test_simple_loop_layout(self):
        prog = simple_loop_program()
        assert prog.num_instructions == 6
        # Addresses are dense from base 0.
        assert [i.address for i in prog.instructions] == list(range(6))
        # The backward branch targets the loop head.
        branch = prog.instructions[3]
        assert branch.op is OpClass.BR_COND
        assert branch.target == 0

    def test_entry_address(self):
        prog = simple_loop_program()
        assert prog.entry_address == 0

    def test_instruction_at_and_block_at(self):
        prog = simple_loop_program()
        assert prog.instruction_at(3).op is OpClass.BR_COND
        assert prog.block_at(0).block_id == prog.instruction_at(0).block_id
        with pytest.raises(IndexError):
            prog.instruction_at(99)

    def test_branch_probability_recorded(self):
        b = ProgramBuilder()
        b.begin_function("main")
        skip = b.new_label()
        b.ialu(1)
        b.branch_if(1, skip, probability=0.25)
        b.ialu(2)
        b.bind(skip)
        b.ialu(3)
        b.ret()
        b.end_function()
        prog = b.finish()
        cond_blocks = prog.cfg.conditional_blocks()
        assert len(cond_blocks) == 1
        assert b.branch_probabilities[cond_blocks[0].branch_key] == 0.25

    def test_forward_branch_target(self):
        b = ProgramBuilder()
        b.begin_function("main")
        skip = b.new_label()
        b.ialu(1)
        b.branch_if(1, skip, probability=0.5)
        b.ialu(2)
        b.ialu(2)
        b.bind(skip)
        b.ialu(3)
        b.ret()
        b.end_function()
        prog = b.finish()
        branch = next(i for i in prog.instructions if i.is_conditional_branch)
        # Skips the two filler instructions.
        assert branch.target == branch.address + 3

    def test_call_and_ret(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        b.call("helper")
        b.ialu(2)
        b.ret()
        b.end_function()
        b.begin_function("helper")
        b.ialu(3)
        b.ret()
        b.end_function()
        prog = b.finish()
        call = next(i for i in prog.instructions if i.op is OpClass.CALL)
        helper_entry = prog.cfg.functions[1].entry_id
        assert call.target == prog.block_start[helper_entry]

    def test_unbound_label_rejected(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        b.jump(b.new_label())
        b.end_function()
        with pytest.raises(BuildError, match="never bound"):
            b.finish()

    def test_unknown_callee_rejected(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        b.call("nowhere")
        b.ialu(1)
        b.ret()
        b.end_function()
        with pytest.raises(BuildError, match="unknown function"):
            b.finish()

    def test_function_must_end_in_control(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        with pytest.raises(BuildError, match="control transfer"):
            b.end_function()

    def test_double_bind_rejected(self):
        b = ProgramBuilder()
        b.begin_function("main")
        label = b.new_label()
        b.bind(label)
        b.ialu(1)
        with pytest.raises(BuildError, match="bound twice"):
            b.bind(label)

    def test_layout_rejects_broken_fallthrough(self):
        prog = simple_loop_program()
        order = list(prog.block_order)
        order.reverse()
        with pytest.raises(LayoutError):
            Program.from_order(prog.cfg, order)

    def test_layout_rejects_non_permutation(self):
        prog = simple_loop_program()
        with pytest.raises(LayoutError, match="permutation"):
            Program.from_order(prog.cfg, prog.block_order[:-1])

    def test_image_size(self):
        prog = simple_loop_program()
        assert len(prog.image()) == 4 * prog.num_instructions

    def test_clone_cfg_is_independent(self):
        prog = simple_loop_program()
        cloned = clone_cfg(prog.cfg)
        cloned.block(0).body[0].dest = 31
        assert prog.cfg.block(0).body[0].dest != 31
        # Relayout of the clone must not disturb the original's addresses.
        Program.from_order(cloned, None, base_address=100)
        assert prog.instructions[0].address == 0

    def test_nop_fraction(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        b.nop()
        b.nop()
        b.ialu(1)
        b.ret()
        b.end_function()
        prog = b.finish()
        assert prog.static_nop_fraction() == pytest.approx(2 / 5)


class TestCFG:
    def test_num_instructions(self):
        prog = simple_loop_program()
        assert prog.cfg.num_instructions() == 6

    def test_call_to_non_entry_rejected(self):
        cfg = ControlFlowGraph()
        func = cfg.add_function("main")
        b0 = BasicBlock(
            body=[Instruction(OpClass.IALU, dest=1)],
            term_kind=TermKind.CALL,
            terminator=Instruction(OpClass.CALL),
        )
        cfg.add_block(b0, func)
        b1 = BasicBlock(
            term_kind=TermKind.RET, terminator=Instruction(OpClass.RET)
        )
        cfg.add_block(b1, func)
        b0.taken_id = b1.block_id  # not a function entry
        b0.fall_id = b1.block_id
        with pytest.raises(ValueError, match="non-entry"):
            cfg.validate()


class TestLayoutEdgeCases:
    def test_call_continuation_must_be_adjacent(self):
        """A CALL's return continuation (fall_id) must physically follow
        the call block."""
        b = ProgramBuilder()
        b.begin_function("main")
        b.ialu(1)
        b.call("helper")
        b.ialu(2)
        b.ret()
        b.end_function()
        b.begin_function("helper")
        b.ialu(3)
        b.ret()
        b.end_function()
        prog = b.finish()
        call_block = next(
            blk for blk in prog.cfg.blocks if blk.term_kind is TermKind.CALL
        )
        order = list(prog.block_order)
        # Move the continuation away from the call.
        order.remove(call_block.fall_id)
        order.append(call_block.fall_id)
        with pytest.raises(LayoutError):
            Program.from_order(prog.cfg, order)

    def test_base_address_offsets_everything(self):
        prog = simple_loop_program()
        shifted = Program.from_order(
            clone_cfg(prog.cfg), list(prog.block_order), base_address=1000
        )
        assert shifted.entry_address == 1000
        assert shifted.instructions[0].address == 1000
        assert shifted.end_address == 1000 + shifted.num_instructions

    def test_branch_targets_follow_relayout(self):
        prog = simple_loop_program()
        shifted = Program.from_order(
            clone_cfg(prog.cfg), list(prog.block_order), base_address=500
        )
        branch = next(
            i for i in shifted.instructions if i.is_conditional_branch
        )
        assert branch.target == 500  # loop head moved with the base

    def test_block_start_map_consistent(self):
        prog = simple_loop_program()
        for block_id, start in prog.block_start.items():
            block = prog.cfg.block(block_id)
            if block.instructions:
                assert block.instructions[0].address == start
