"""ASCII bar charts for rendering the paper's figures in a terminal.

The experiment harness produces tables; the figure-type artifacts
(Figures 3, 9-13) read better as grouped bar charts, which is how the
paper prints them.  ``bar_chart`` renders one group of labelled values
per row, scaled to a common axis.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

#: Glyph used for bar bodies.
BAR = "█"
HALF = "▌"


@dataclass(slots=True)
class BarGroup:
    """One labelled group of bars (e.g. one machine model)."""

    label: str
    values: list[float]


def bar_chart(
    series_names: Sequence[str],
    groups: Sequence[BarGroup],
    width: int = 46,
    title: str = "",
    unit: str = "",
) -> str:
    """Render grouped horizontal bars.

    Args:
        series_names: Name of each bar within a group (legend order).
        groups: The groups, each carrying one value per series.
        width: Character width of the longest bar.
        title: Optional chart title.
        unit: Suffix printed after each value (e.g. ``" IPC"``).
    """
    if not groups:
        raise ValueError("no groups to chart")
    for group in groups:
        if len(group.values) != len(series_names):
            raise ValueError(
                f"group {group.label!r} has {len(group.values)} values for "
                f"{len(series_names)} series"
            )
    peak = max(max(group.values) for group in groups)
    if peak <= 0:
        raise ValueError("chart values must include a positive maximum")

    name_width = max(len(name) for name in series_names)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for group in groups:
        lines.append(f"{group.label}:")
        for name, value in zip(series_names, group.values):
            cells = value / peak * width
            body = BAR * int(cells)
            if cells - int(cells) >= 0.5:
                body += HALF
            lines.append(
                f"  {name.rjust(name_width)} |{body.ljust(width)} "
                f"{value:.2f}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def result_chart(
    result,
    label: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render an :class:`~repro.experiments.common.ExperimentResult` whose
    numeric columns form one bar group per row.

    Leading non-numeric columns become group labels; the remaining
    headers are the series names.  *columns* optionally restricts the
    charted series by header name (e.g. to drop a "gap %" column whose
    unit differs from the rest).
    """
    first_numeric = None
    for index, value in enumerate(result.rows[0]):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            first_numeric = index
            break
    if first_numeric is None:
        raise ValueError("result has no numeric columns to chart")
    indices = list(range(first_numeric, len(result.headers)))
    if columns is not None:
        wanted = set(columns)
        indices = [i for i in indices if str(result.headers[i]) in wanted]
        if not indices:
            raise ValueError("no requested columns found in the result")
    series = [str(result.headers[i]) for i in indices]
    groups = [
        BarGroup(
            label=" ".join(str(cell) for cell in row[:first_numeric]),
            values=[float(row[i]) for i in indices],
        )
        for row in result.rows
    ]
    return bar_chart(series, groups, title=label or result.title)
