"""ASCII bar charts for rendering the paper's figures in a terminal.

The experiment harness produces tables; the figure-type artifacts
(Figures 3, 9-13) read better as grouped bar charts, which is how the
paper prints them.  ``bar_chart`` renders one group of labelled values
per row, scaled to a common axis.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

#: Glyph used for bar bodies.
BAR = "█"
HALF = "▌"


@dataclass(slots=True)
class BarGroup:
    """One labelled group of bars (e.g. one machine model)."""

    label: str
    values: list[float]


def bar_chart(
    series_names: Sequence[str],
    groups: Sequence[BarGroup],
    width: int = 46,
    title: str = "",
    unit: str = "",
) -> str:
    """Render grouped horizontal bars.

    Args:
        series_names: Name of each bar within a group (legend order).
        groups: The groups, each carrying one value per series.
        width: Character width of the longest bar.
        title: Optional chart title.
        unit: Suffix printed after each value (e.g. ``" IPC"``).
    """
    if not groups:
        raise ValueError("no groups to chart")
    for group in groups:
        if len(group.values) != len(series_names):
            raise ValueError(
                f"group {group.label!r} has {len(group.values)} values for "
                f"{len(series_names)} series"
            )
    peak = max(max(group.values) for group in groups)
    if peak <= 0:
        raise ValueError("chart values must include a positive maximum")

    name_width = max(len(name) for name in series_names)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for group in groups:
        lines.append(f"{group.label}:")
        for name, value in zip(series_names, group.values):
            cells = value / peak * width
            body = BAR * int(cells)
            if cells - int(cells) >= 0.5:
                body += HALF
            lines.append(
                f"  {name.rjust(name_width)} |{body.ljust(width)} "
                f"{value:.2f}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def tornado_chart(
    entries: Sequence[tuple[str, float]],
    width: int = 40,
    title: str = "",
    unit: str = "",
    sort: bool = True,
) -> str:
    """Render signed horizontal bars around a centre axis.

    The classic sensitivity-analysis "tornado": one labelled signed
    value per row, bars extending left (negative) or right (positive)
    of a shared axis, sorted by magnitude so the most influential
    entries sit on top (disable with ``sort=False`` to keep caller
    order).

    Args:
        entries: ``(label, value)`` rows.
        width: Total character width of the bar field (split in half
            around the axis).
        unit: Suffix printed after each value (e.g. ``" EIR"``).
    """
    rows = list(entries)
    if not rows:
        raise ValueError("no entries to chart")
    if sort:
        rows.sort(key=lambda row: (-abs(row[1]), row[0]))
    peak = max(abs(value) for _, value in rows)
    half = max(1, width // 2)
    label_width = max(len(label) for label, _ in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for label, value in rows:
        cells = 0.0 if peak == 0 else abs(value) / peak * half
        body = BAR * int(cells)
        if cells - int(cells) >= 0.5:
            body += HALF
        if value < 0:
            left, right = body.rjust(half), " " * half
        else:
            left, right = " " * half, body.ljust(half)
        lines.append(
            f"{label.rjust(label_width)} {left}│{right} "
            f"{value:+.3f}{unit}"
        )
    return "\n".join(lines)


def scatter_chart(
    points: Sequence[tuple[float, float, str]],
    width: int = 56,
    height: int = 14,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    mark: frozenset | set = frozenset(),
) -> str:
    """Render an ASCII scatter plot of ``(x, y, label)`` points.

    Point indices in *mark* render as ``●`` (e.g. a Pareto frontier),
    the rest as ``·``; when several points share a cell, a marked one
    wins.  Axis extremes are printed on the frame.
    """
    if not points:
        raise ValueError("no points to chart")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (x, y, _label) in enumerate(points):
        column = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_min) / y_span * (height - 1)))
        row = height - 1 - row  # screen coordinates: y grows downward
        glyph = "●" if index in mark else "·"
        if grid[row][column] != "●":
            grid[row][column] = glyph
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    if ylabel:
        lines.append(ylabel)
    lines.append(f"{y_max:>10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "│" + "".join(row))
    if height > 1:
        lines.append(f"{y_min:>10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 11 + "└" + "─" * width)
    left = f"{x_min:.2f}"
    right = f"{x_max:.2f}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 12 + left + " " * pad + right)
    if xlabel:
        lines.append(" " * 12 + xlabel)
    return "\n".join(lines)


def result_chart(
    result,
    label: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render an :class:`~repro.experiments.common.ExperimentResult` whose
    numeric columns form one bar group per row.

    Leading non-numeric columns become group labels; the remaining
    headers are the series names.  *columns* optionally restricts the
    charted series by header name (e.g. to drop a "gap %" column whose
    unit differs from the rest).
    """
    first_numeric = None
    for index, value in enumerate(result.rows[0]):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            first_numeric = index
            break
    if first_numeric is None:
        raise ValueError("result has no numeric columns to chart")
    indices = list(range(first_numeric, len(result.headers)))
    if columns is not None:
        wanted = set(columns)
        indices = [i for i in indices if str(result.headers[i]) in wanted]
        if not indices:
            raise ValueError("no requested columns found in the result")
    series = [str(result.headers[i]) for i in indices]
    groups = [
        BarGroup(
            label=" ".join(str(cell) for cell in row[:first_numeric]),
            values=[float(row[i]) for i in indices],
        )
        for row in result.rows
    ]
    return bar_chart(series, groups, title=label or result.title)
