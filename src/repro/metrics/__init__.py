"""Metrics: aggregation helpers and dynamic branch statistics."""

from repro.metrics.chart import BarGroup, bar_chart, result_chart
from repro.metrics.branches import (
    TakenBranchStats,
    taken_branch_reduction,
    taken_branch_stats,
)
from repro.metrics.summary import (
    arithmetic_mean,
    format_table,
    harmonic_mean,
    percent,
)

__all__ = [
    "BarGroup",
    "TakenBranchStats",
    "bar_chart",
    "arithmetic_mean",
    "format_table",
    "harmonic_mean",
    "percent",
    "result_chart",
    "taken_branch_reduction",
    "taken_branch_stats",
]
