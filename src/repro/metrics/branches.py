"""Dynamic branch statistics over traces (paper Tables 2 and 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import DynamicTrace


@dataclass(slots=True)
class TakenBranchStats:
    """Dynamic taken-branch statistics for one trace."""

    total_taken: int
    intra_block: int
    work_instructions: int  #: non-control, non-nop instructions

    @property
    def intra_block_fraction(self) -> float:
        """Fraction of taken branches whose target is in the same cache
        block (paper Table 2)."""
        return self.intra_block / self.total_taken if self.total_taken else 0.0

    @property
    def taken_per_work_instruction(self) -> float:
        """Taken branches per unit of real work; layout-independent
        denominator used for the paper's Table 3 reduction metric."""
        if not self.work_instructions:
            return 0.0
        return self.total_taken / self.work_instructions


def taken_branch_stats(trace: DynamicTrace, block_words: int) -> TakenBranchStats:
    """Measure taken-branch statistics of *trace* at the given block size."""
    if block_words <= 0:
        raise ValueError("block_words must be positive")
    total = intra = work = 0
    instructions = trace.instructions
    for index, instr in enumerate(instructions):
        if not instr.is_control:
            if not instr.is_nop:
                work += 1
            continue
        next_address = trace.next_address(index)
        if next_address >= 0 and next_address != instr.address + 1:
            total += 1
            if instr.address // block_words == next_address // block_words:
                intra += 1
    return TakenBranchStats(
        total_taken=total, intra_block=intra, work_instructions=work
    )


def taken_branch_reduction(
    original: DynamicTrace,
    optimized: DynamicTrace,
    block_words: int = 4,
) -> float:
    """Fractional reduction in dynamic taken branches (paper Table 3).

    Normalised per *work* instruction so traces of differing lengths (the
    optimized layout adds/removes jumps and nops) compare fairly.
    """
    before = taken_branch_stats(original, block_words).taken_per_work_instruction
    after = taken_branch_stats(optimized, block_words).taken_per_work_instruction
    if before == 0:
        return 0.0
    return 1.0 - after / before
