"""Aggregation and tabulation helpers for experiment reports."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's aggregate for per-benchmark IPC).

    Raises ``ValueError`` on an empty or non-positive input.
    """
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a plain-text table (monospace, right-aligned numbers)."""
    cells = [[str(h) for h in headers]] + [
        [
            f"{value:.2f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render(cells[0]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def percent(numerator: float, denominator: float) -> float:
    """Percentage with a zero-denominator guard."""
    return 100.0 * numerator / denominator if denominator else 0.0
