"""Machine model configuration (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.instruction import BYTES_PER_INSTRUCTION


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Parameters of one simulated microarchitecture.

    The paper fixes issue rate, window size, I-cache geometry, functional
    unit counts and speculation depth per machine (Table 1); the remaining
    fields are parameters the paper leaves unstated, with documented
    defaults (see DESIGN.md section 4).
    """

    name: str
    issue_rate: int
    window_size: int
    icache_bytes: int
    icache_block_bytes: int
    num_fxu: int
    num_fpu: int
    num_branch_units: int
    speculation_depth: int
    # -- parameters the paper leaves unstated (documented defaults) --
    btb_entries: int = 1024
    fetch_penalty: int = 2
    icache_miss_latency: int = 10
    rob_factor: int = 4
    num_load_units: int = -1  # -1: same as num_fxu
    num_store_buffers: int = -1  # -1: same as num_fxu
    #: If True, misprediction recovery waits until the faulting branch
    #: *retires* from the reorder buffer (the literal reading of the
    #: paper's footnote 1); default is recovery at branch resolution
    #: (writeback), the conventional Tomasulo redirect point.
    recovery_at_retire: bool = False
    #: Memory-dependence policy.  The paper does not model the data
    #: cache; by default loads and stores order only through registers
    #: ("none").  "conservative" makes every load (and store) wait for
    #: the previous store to complete — no disambiguation hardware.
    memory_ordering: str = "none"
    #: Depth of the fetch/decode decoupling queue in fetch groups
    #: (paper §1: commercial designs "decouple the instruction fetch
    #: unit from the execution unit via queues").  Depth 1 means fetch
    #: waits for the previous group to fully dispatch.
    fetch_queue_groups: int = 1

    def __post_init__(self) -> None:
        if self.issue_rate <= 0:
            raise ValueError("issue rate must be positive")
        if self.icache_block_bytes % BYTES_PER_INSTRUCTION:
            raise ValueError("cache block must hold whole instructions")
        if self.icache_block_bytes < self.issue_rate * BYTES_PER_INSTRUCTION:
            # Paper Table 1: the block holds the issue rate of instructions
            # (rounded up to a power of two for PI12: 12 -> 64B/16 words).
            raise ValueError(
                "cache block must hold at least the issue rate in instructions "
                f"(got {self.icache_block_bytes}B for issue {self.issue_rate})"
            )
        if self.window_size < self.issue_rate:
            raise ValueError("window must hold at least one issue group")
        if self.speculation_depth < 1:
            raise ValueError("speculation depth must be at least 1")
        if self.memory_ordering not in ("none", "conservative"):
            raise ValueError(
                f"unknown memory ordering: {self.memory_ordering!r}"
            )
        if self.fetch_queue_groups < 1:
            raise ValueError("fetch queue must hold at least one group")

    @property
    def words_per_block(self) -> int:
        """Instructions per cache block (>= issue rate; 16 for PI12)."""
        return self.icache_block_bytes // BYTES_PER_INSTRUCTION

    @property
    def rob_size(self) -> int:
        """Reorder buffer entries."""
        return self.rob_factor * self.window_size

    @property
    def retire_width(self) -> int:
        """Instructions retired per cycle (the issue rate)."""
        return self.issue_rate

    @property
    def load_units(self) -> int:
        return self.num_load_units if self.num_load_units > 0 else self.num_fxu

    @property
    def store_buffers(self) -> int:
        return self.num_store_buffers if self.num_store_buffers > 0 else self.num_fxu

    @property
    def num_result_buses(self) -> int:
        """Result buses equal the total function unit count (paper §2)."""
        return (
            self.num_fxu
            + self.num_fpu
            + self.num_branch_units
            + self.load_units
            + self.store_buffers
        )

    def with_fetch_penalty(self, penalty: int) -> "MachineConfig":
        """A copy with a different fetch misprediction penalty (Figure 11)."""
        return replace(self, fetch_penalty=penalty)
