"""Machine models (paper Table 1)."""

from repro.machines.config import MachineConfig
from repro.machines.presets import (
    MACHINES,
    MACHINES_BY_NAME,
    PI4,
    PI8,
    PI12,
    PI16,
    get_machine,
)

__all__ = [
    "MACHINES",
    "MACHINES_BY_NAME",
    "MachineConfig",
    "PI4",
    "PI8",
    "PI12",
    "PI16",
    "get_machine",
]
