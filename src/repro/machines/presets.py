"""The three machine models of the paper: PI4, PI8, PI12 (Table 1)."""

from __future__ import annotations

from repro.machines.config import MachineConfig

KB = 1024

PI4 = MachineConfig(
    name="PI4",
    issue_rate=4,
    window_size=16,
    icache_bytes=32 * KB,
    icache_block_bytes=16,
    num_fxu=2,
    num_fpu=2,
    num_branch_units=2,
    speculation_depth=2,
)

PI8 = MachineConfig(
    name="PI8",
    issue_rate=8,
    window_size=24,
    icache_bytes=64 * KB,
    icache_block_bytes=32,
    num_fxu=4,
    num_fpu=4,
    num_branch_units=4,
    speculation_depth=4,
)

PI12 = MachineConfig(
    name="PI12",
    issue_rate=12,
    window_size=32,
    icache_bytes=128 * KB,
    icache_block_bytes=64,
    num_fxu=6,
    num_fpu=6,
    num_branch_units=6,
    speculation_depth=6,
)

#: Beyond the paper: the "next generation" the introduction anticipates
#: ("higher issue rates expected") — a 16-issue machine scaled by the
#: same rules as Table 1.  Used by the issue-scaling ablation; not part
#: of the paper's experiment matrix.
PI16 = MachineConfig(
    name="PI16",
    issue_rate=16,
    window_size=40,
    icache_bytes=256 * KB,
    icache_block_bytes=64,
    num_fxu=8,
    num_fpu=8,
    num_branch_units=8,
    speculation_depth=8,
)

#: The paper's three machine models, in issue-rate order.
MACHINES: tuple[MachineConfig, ...] = (PI4, PI8, PI12)

MACHINES_BY_NAME: dict[str, MachineConfig] = {
    m.name: m for m in (*MACHINES, PI16)
}


def get_machine(name: str) -> MachineConfig:
    """Look up a machine model by name ('PI4', 'PI8', 'PI12')."""
    try:
        return MACHINES_BY_NAME[name]
    except KeyError:
        known = ", ".join(MACHINES_BY_NAME)
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None
