"""Input-seed sensitivity of the headline results.

The paper uses one held-out test input per benchmark; our synthetic
workloads make input variation cheap (a behaviour seed), so this module
reports how stable the reproduced quantities are across inputs — the
error bars the paper could not print.
"""

from __future__ import annotations

import statistics

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    eir_stats,
    sim_stats,
)
from repro.machines.presets import PI8

#: Seeds standing in for different program inputs (0 is the default
#: held-out test input; the rest overlap the profiling seeds by design —
#: variance, not train/test hygiene, is the question here).
VARIANCE_SEEDS: tuple[int, ...] = (0, 11, 12, 13, 14)

#: Benchmarks spanning the suite's behaviour space.
VARIANCE_BENCHMARKS: tuple[str, ...] = ("compress", "espresso", "li", "tomcatv")


def run_ipc_variance(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """IPC mean +/- sample stddev across input seeds (PI8)."""
    result = ExperimentResult(
        experiment="variance_ipc",
        title="Input-seed variance of IPC (PI8)",
        headers=["benchmark", "scheme", "mean", "stddev", "cv %"],
        notes=(
            "Coefficients of variation in the low single digits mean the "
            "headline comparisons are stable across inputs."
        ),
    )
    for benchmark in VARIANCE_BENCHMARKS:
        for scheme in ("sequential", "collapsing_buffer", "perfect"):
            values = [
                sim_stats(
                    benchmark,
                    PI8.name,
                    scheme,
                    length=config.trace_length,
                    warmup=config.warmup,
                    seed=seed,
                ).useful_ipc
                for seed in VARIANCE_SEEDS
            ]
            mean = statistics.mean(values)
            stddev = statistics.stdev(values)
            result.rows.append(
                [benchmark, scheme, mean, stddev, 100.0 * stddev / mean]
            )
    return result


def run_eir_ratio_variance(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """EIR/EIR(perfect) variance for the collapsing buffer (PI8)."""
    result = ExperimentResult(
        experiment="variance_eir",
        title="Input-seed variance of collapsing-buffer EIR ratio (PI8)",
        headers=["benchmark", "mean %", "stddev %", "min %", "max %"],
    )
    for benchmark in VARIANCE_BENCHMARKS:
        ratios = []
        for seed in VARIANCE_SEEDS:
            perfect = eir_stats(
                benchmark, PI8.name, "perfect",
                length=config.eir_length, seed=seed,
            ).eir
            collapsing = eir_stats(
                benchmark, PI8.name, "collapsing_buffer",
                length=config.eir_length, seed=seed,
            ).eir
            ratios.append(100.0 * collapsing / perfect)
        result.rows.append(
            [
                benchmark,
                statistics.mean(ratios),
                statistics.stdev(ratios),
                min(ratios),
                max(ratios),
            ]
        )
    return result
