"""Table 4: static nop expansion of pad-all versus pad-trace.

pad-all aligns every basic block to a cache-block boundary; pad-trace
aligns only trace ends (after reordering).  Expansion is reported as
inserted nops over original code size, per block size (16B/32B/64B).
Paper: pad-trace stays cheap (0.1-42%), pad-all explodes (16-255%).
"""

from __future__ import annotations

from repro.compiler import pad_all, pad_trace
from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    _reorder_cached,
)
from repro.experiments.common import all_machines
from repro.workloads.profiles import INTEGER_BENCHMARKS
from repro.workloads.suite import load_workload

#: Paper Table 4 (percent of nops vs original code size) at 16B blocks.
PAPER_TABLE4_16B = {
    "bison": (28.45, 2.22),
    "compress": (29.53, 0.08),
    "eqntott": (40.15, 7.17),
    "espresso": (28.85, 5.60),
    "flex": (27.75, 5.27),
    "gcc": (32.31, 5.94),
    "li": (33.20, 8.68),
    "mpeg_play": (16.07, 3.45),
    "sc": (37.89, 3.44),
}


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    block_sizes = [m.words_per_block for m in all_machines()]
    headers = ["benchmark"]
    for words in block_sizes:
        headers += [f"pad-all {words * 4}B %", f"pad-trace {words * 4}B %"]
    result = ExperimentResult(
        experiment="table4",
        title="Table 4: nop expansion of pad-all vs pad-trace",
        headers=headers,
        notes=(
            "Expected shape: pad-trace an order of magnitude cheaper than "
            "pad-all; both grow with block size."
        ),
    )
    for benchmark in INTEGER_BENCHMARKS:
        workload = load_workload(benchmark)
        reordered = _reorder_cached(benchmark)
        row = [benchmark]
        for words in block_sizes:
            row.append(100.0 * pad_all(workload.program, words).expansion)
            row.append(100.0 * pad_trace(reordered, words).expansion)
        result.rows.append(row)
    return result
