"""Figure 3: sequential versus perfect IPC bounds.

"Figure 3 presents the harmonic mean of the IPC for sequential and
perfect for the integer and floating-point benchmarks" — the motivation
figure: the gap between the realistic lower bound and the fetch-bandwidth
upper bound justifies better fetch mechanisms, especially for integer
code at higher issue rates.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    hmean_ipc,
)
from repro.workloads.profiles import FP_BENCHMARKS, INTEGER_BENCHMARKS

#: Paper's qualitative claims for this figure.
PAPER_NOTES = (
    "Paper: the sequential-vs-perfect gap widens with issue rate and is "
    "larger for integer code; loop-intensive FP code on PI4 has the least "
    "need for better fetch mechanisms."
)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig03",
        title="Figure 3: harmonic-mean IPC, sequential vs perfect",
        headers=["class", "machine", "sequential", "perfect", "gap %"],
        notes=PAPER_NOTES,
    )
    for class_name, benchmarks in (
        ("int", INTEGER_BENCHMARKS),
        ("fp", FP_BENCHMARKS),
    ):
        for machine in all_machines():
            seq = hmean_ipc(benchmarks, machine, "sequential", config)
            perfect = hmean_ipc(benchmarks, machine, "perfect", config)
            gap = 100.0 * (perfect - seq) / perfect
            result.rows.append(
                [class_name, machine.name, seq, perfect, gap]
            )
    return result
