"""Ablation studies for the design choices DESIGN.md documents.

These go beyond the paper's published artifacts, probing (a) parameters
the paper fixes by experiment but does not plot (speculation depth), (b)
parameters it leaves unstated (misprediction recovery point, cache
banking, BTB size, steady-state warm-up), and (c) the questions its
conclusion raises (does a better predictor make the shifter collapsing
buffer viable?  where did this line of work lead — the trace cache?).

Each function returns an :class:`ExperimentResult`; the benchmark target
is ``benchmarks/test_ablations.py``.

Most of these tables are one-factor-off grids, and those are now *ports*:
the grid lives as a declarative :class:`~repro.study.spec.StudySpec` in
:mod:`repro.study.presets`, the study engine executes it, and the thin
``run_*`` wrappers here re-render the exact legacy table (same titles,
headers, notes, values, row order).  The four ablations whose shape the
declarative grammar cannot express — a three-factor cross
(``recovery``), a custom idealised fetch unit (``cb_crossings``),
compiler metrics (``superblock``) and per-benchmark EIR ratios
(``issue_scaling``) — remain hand-written below.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    variant_trace,
)
from repro.fetch.collapsing import CollapsingBufferFetch
from repro.machines.presets import PI16
from repro.metrics.summary import harmonic_mean
from repro.sim.eir import measure_eir
from repro.sim.simulator import Simulator
from repro.workloads.profiles import INTEGER_BENCHMARKS

#: Integer subset used by the heavier ablations (keeps wall-clock sane
#: while spanning branchy/call-heavy/large-footprint behaviours).
ABLATION_BENCHMARKS = ("compress", "espresso", "li", "gcc")


def _hmean_ipc_custom(
    machine,
    scheme: str,
    config: ExperimentConfig,
    benchmarks=ABLATION_BENCHMARKS,
    unit_factory=None,
    prewarm_cache: bool = True,
) -> float:
    """Harmonic-mean IPC with a non-standard machine or fetch unit."""
    values = []
    for benchmark in benchmarks:
        trace = variant_trace(
            benchmark, "orig", config.trace_length, config.seed
        )
        unit = (
            unit_factory(machine, trace) if unit_factory is not None else scheme
        )
        sim = Simulator(
            machine,
            trace,
            unit,
            warmup=config.warmup,
            prewarm_cache=prewarm_cache,
        )
        values.append(sim.run().useful_ipc)
    return harmonic_mean(values)


def _ported(preset: str, config: ExperimentConfig) -> ExperimentResult:
    """Run a legacy table through its declarative port (imported lazily
    so loading this module never pulls in the supervisor stack)."""
    from repro.study.presets import run_preset_table

    return run_preset_table(preset, config)


# -- 1. speculation depth -------------------------------------------------------


def run_speculation_depth(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """IPC versus speculation depth (paper §2: "speculative execution
    beyond two branches was required to keep the pipeline full" at PI4,
    beyond four at PI8, six at PI12).

    Ported: declarative preset ``spec-depth``.
    """
    return _ported("spec-depth", config)


# -- 2. cache banking ---------------------------------------------------------------


def run_bank_sensitivity(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Banked sequential's bank-interference sensitivity (paper §3.2).

    More banks make the successor-block conflict rarer; the collapsing
    buffer's per-slot banking (Figure 7) is the limit case.

    Ported: declarative preset ``banks``.
    """
    return _ported("banks", config)


# -- 3. predictors vs the shifter collapsing buffer -----------------------------------


def run_predictor_ablation(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """The conclusion's open question: with a more sophisticated
    predictor, is the shifter (3-cycle penalty) collapsing buffer viable?

    Compares the 2-bit BTB baseline against gshare and gshare+RAS for the
    crossbar (2-cycle) and shifter (3-cycle) collapsing buffers on PI8.

    Ported: declarative preset ``predictors``.
    """
    return _ported("predictors", config)


# -- 4. misprediction recovery point ------------------------------------------------------


def run_recovery_point(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Recovery at branch resolution (writeback) versus at retirement.

    The paper's footnote 1 reads literally as recovery at retirement;
    DESIGN.md documents why the default is resolution.  This ablation
    quantifies the difference.
    """
    result = ExperimentResult(
        experiment="ablation_recovery",
        title="Ablation: misprediction recovery point (integer subset)",
        headers=[
            "machine",
            "seq @resolution",
            "seq @retire",
            "collapsing @resolution",
            "collapsing @retire",
        ],
        notes="Expected: retirement recovery costs IPC across the board.",
    )
    for machine in all_machines():
        retire_machine = dataclasses.replace(machine, recovery_at_retire=True)
        result.rows.append(
            [
                machine.name,
                _hmean_ipc_custom(machine, "sequential", config),
                _hmean_ipc_custom(retire_machine, "sequential", config),
                _hmean_ipc_custom(machine, "collapsing_buffer", config),
                _hmean_ipc_custom(retire_machine, "collapsing_buffer", config),
            ]
        )
    return result


# -- 5. cold-start behaviour --------------------------------------------------------------------


def run_cold_start(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Steady-state versus cold-start I-cache behaviour (PI8).

    With a cold cache, interleaved sequential's blind next-block prefetch
    hides most compulsory misses, while banked/collapsing chase predicted
    targets into unfetched blocks — a genuinely different ranking from
    the steady-state one the paper (full SPEC runs) reports.

    Ported: declarative preset ``cold-start``.
    """
    return _ported("cold-start", config)


# -- 6. BTB size ---------------------------------------------------------------------------------------


def run_btb_size(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """BTB capacity sweep around the paper's 1024 entries.

    The paper compares its 1024-entry buffer with commercial designs
    (Pentium 512, PowerPC 604 256/512); this sweep shows the sensitivity.

    Ported: declarative preset ``btb-size``.
    """
    return _ported("btb-size", config)


# -- 7. where the field went: the trace cache --------------------------------------------------------------


def run_trace_cache(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """The trace-cache extension versus the paper's best scheme.

    Ported: declarative preset ``trace-cache``.
    """
    return _ported("trace-cache", config)


# -- 8. the collapsing buffer's two-block limit -------------------------------------------------------------------


class _UnlimitedCrossingCollapsingBuffer(CollapsingBufferFetch):
    """Idealised collapsing buffer that may cross any number of taken
    inter-block branches per cycle (a multi-ported cache).  Used to
    quantify how much of the PI12 EIR gap the strict two-block fetch
    accounts for (see EXPERIMENTS.md, Figure 10 notes)."""

    name = "collapsing_buffer_unlimited"

    def plan(self, fetch_address: int, limit: int):
        from repro.fetch.base import FetchPlan

        block = self._block_of(fetch_address)
        if not self.cache.access(block):
            self.cache.fill(block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)
        plan = FetchPlan()
        start = fetch_address
        while len(plan.addresses) < limit:
            target = self._walk_collapsing(start, block, limit, plan)
            if target >= 0:
                successor = self._block_of(target)
                if successor == block:
                    break  # backward intra-block: still unsupported
                start = target
            else:
                successor = block + 1
                start = self._block_end(block)
            if not self.cache.access(successor):
                self.cache.fill(successor)
                break
            block = successor
        return plan


def run_cb_crossing_limit(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """EIR ratio of the real collapsing buffer versus an idealised
    unlimited-crossing variant, per machine (integer benchmarks)."""
    result = ExperimentResult(
        experiment="ablation_cb_crossings",
        title=(
            "Ablation: collapsing-buffer EIR/EIR(perfect) %, two-block "
            "fetch vs unlimited crossings"
        ),
        headers=["machine", "two-block %", "unlimited %"],
        notes=(
            "The unlimited variant isolates the one-inter-block-crossing "
            "restriction as the dominant PI12 alignment loss."
        ),
    )
    for machine in all_machines():
        ratios_real = []
        ratios_ideal = []
        for benchmark in INTEGER_BENCHMARKS:
            trace = variant_trace(
                benchmark, "orig", config.eir_length, config.seed
            )
            perfect = measure_eir(trace, machine, "perfect").eir
            real = measure_eir(trace, machine, "collapsing_buffer").eir
            ideal = measure_eir(
                trace,
                machine,
                _UnlimitedCrossingCollapsingBuffer(machine, trace),
            ).eir
            ratios_real.append(real / perfect)
            ratios_ideal.append(ideal / perfect)
        result.rows.append(
            [
                machine.name,
                100.0 * harmonic_mean(ratios_real),
                100.0 * harmonic_mean(ratios_ideal),
            ]
        )
    return result


# -- 9. memory ordering ---------------------------------------------------------------------------------------


def run_memory_ordering(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Register-only versus conservative store-ordered memory.

    The paper does not model the data cache; this ablation bounds how
    much a no-disambiguation memory pipeline (every load/store waits for
    the previous store) would cost the same machines.

    Ported: declarative preset ``memory-ordering``.
    """
    return _ported("memory-ordering", config)


# -- 10. window size and decoupling queue --------------------------------------------------------------------


def run_window_size(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """ILP sensitivity to the scheduling-window size around Table 1's
    16/24/32 entries (collapsing buffer).

    Ported: declarative preset ``window-size``.
    """
    return _ported("window-size", config)


def run_fetch_queue(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Depth of the fetch/decode decoupling queue (paper §1: commercial
    designs decouple fetch from execution via queues).

    Ported: declarative preset ``fetch-queue``.
    """
    return _ported("fetch-queue", config)


# -- 11. superblock formation (paper ref [18]) ----------------------------------------------------------------


def run_superblock(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Superblock formation (tail duplication) versus plain trace layout.

    The paper cites the superblock [18] as the scheduling-oriented sibling
    of its trace layout.  For *fetch* metrics the tail duplication buys
    nothing by itself — side entrances are redirected to displaced
    originals, adding jumps — which is consistent with the paper choosing
    plain reordering for its study.
    """
    from repro.compiler.superblock import form_superblocks
    from repro.metrics.branches import taken_branch_reduction
    from repro.workloads.suite import load_workload
    from repro.workloads.trace import generate_trace

    result = ExperimentResult(
        experiment="ablation_superblock",
        title="Extension: superblock formation vs plain trace layout",
        headers=[
            "benchmark",
            "reorder taken red. %",
            "superblock taken red. %",
            "code growth %",
            "duplicated blocks",
        ],
        notes=(
            "Finding: without a global scheduler to exploit single-entry "
            "regions, tail duplication costs a little code and a few "
            "taken branches versus plain trace layout — consistent with "
            "the paper studying plain reordering for fetch."
        ),
    )
    for benchmark in ABLATION_BENCHMARKS:
        workload = load_workload(benchmark)
        superblocked = form_superblocks(workload.program, workload.behavior)
        from repro.compiler.layout_opt import reorder_program

        reordered = reorder_program(workload.program, workload.behavior)
        original = generate_trace(
            workload.program, workload.behavior, config.stats_length
        )
        re_trace = generate_trace(
            reordered.program, workload.behavior, config.stats_length
        )
        sb_trace = generate_trace(
            superblocked.program, workload.behavior, config.stats_length
        )
        result.rows.append(
            [
                benchmark,
                100.0 * taken_branch_reduction(original, re_trace),
                100.0 * taken_branch_reduction(original, sb_trace),
                100.0 * superblocked.code_growth,
                superblocked.duplicated_blocks,
            ]
        )
    return result


# -- 12. issue-rate scaling beyond the paper ---------------------------------------------------------------


def run_issue_scaling(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Extend the paper's trend line to a 16-issue machine.

    The introduction anticipates issue rates beyond four "with higher
    issue rates expected"; PI16 scales Table 1's rules one more step.
    The EIR ratios show whether the collapsing buffer's scalability
    claim keeps holding.
    """
    machines = (*all_machines(), PI16)
    schemes = ("sequential", "banked_sequential", "collapsing_buffer")
    result = ExperimentResult(
        experiment="ablation_issue_scaling",
        title="Extension: EIR/EIR(perfect) % through a 16-issue machine",
        headers=["machine", "EIR(perfect)"] + [f"{s} %" for s in schemes],
        notes=(
            "Expected: sequential keeps collapsing; the collapsing buffer "
            "degrades gently — the paper's scalability claim extrapolates."
        ),
    )
    for machine in machines:
        ratios = {scheme: [] for scheme in schemes}
        perfects = []
        for benchmark in ABLATION_BENCHMARKS:
            trace = variant_trace(
                benchmark, "orig", config.eir_length, config.seed
            )
            perfect = measure_eir(trace, machine, "perfect").eir
            perfects.append(perfect)
            for scheme in schemes:
                ratios[scheme].append(
                    measure_eir(trace, machine, scheme).eir / perfect
                )
        row = [machine.name, harmonic_mean(perfects)]
        row += [100.0 * harmonic_mean(ratios[s]) for s in schemes]
        result.rows.append(row)
    return result


#: All ablations, for the benchmark harness and the CLI.
ABLATIONS = {
    "spec_depth": run_speculation_depth,
    "banks": run_bank_sensitivity,
    "predictors": run_predictor_ablation,
    "recovery": run_recovery_point,
    "cold_start": run_cold_start,
    "btb_size": run_btb_size,
    "trace_cache": run_trace_cache,
    "cb_crossings": run_cb_crossing_limit,
    "superblock": run_superblock,
    "memory_ordering": run_memory_ordering,
    "window_size": run_window_size,
    "fetch_queue": run_fetch_queue,
    "issue_scaling": run_issue_scaling,
}
