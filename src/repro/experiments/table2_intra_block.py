"""Table 2: percentage of taken branches with intra-block targets.

Measured over the dynamic trace at each machine's cache-block size
(16B/32B/64B -> 4/8/16 instructions).  These ratios motivate the
collapsing buffer: at PI12 nearly half the taken branches of eqntott,
espresso and wave5 stay inside one block.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    variant_trace,
)
from repro.metrics.branches import taken_branch_stats
from repro.workloads.profiles import ALL_BENCHMARKS, get_profile

#: The paper's published values (percent; PI4/PI8/PI12).  bison and doduc
#: are illegible in the source scan and omitted from comparisons.
PAPER_TABLE2: dict[str, tuple[float, float, float]] = {
    "compress": (14.58, 14.59, 34.63),
    "eqntott": (6.13, 29.26, 41.40),
    "espresso": (1.40, 14.86, 45.68),
    "flex": (1.29, 3.88, 24.79),
    "gcc": (4.98, 14.08, 24.73),
    "li": (0.00, 5.74, 19.07),
    "mpeg_play": (0.70, 7.66, 11.96),
    "sc": (0.17, 11.02, 21.59),
    "mdljdp2": (0.26, 24.37, 66.10),
    "nasa7": (0.03, 0.06, 0.08),
    "ora": (0.01, 19.01, 23.16),
    "tomcatv": (0.08, 0.17, 13.97),
    "wave5": (2.71, 35.21, 41.73),
}


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2",
        title="Table 2: % taken branches with target in the same cache block",
        headers=["class", "benchmark"]
        + [f"{m.name} ({m.icache_block_bytes}B)" for m in all_machines()],
        notes=(
            "Paper values in PAPER_TABLE2; workload profiles are "
            "calibrated against them (see DESIGN.md)."
        ),
    )
    for benchmark in ALL_BENCHMARKS:
        trace = variant_trace(
            benchmark, "orig", config.stats_length, config.seed
        )
        row = [get_profile(benchmark).workload_class, benchmark]
        for machine in all_machines():
            stats = taken_branch_stats(trace, machine.words_per_block)
            row.append(100.0 * stats.intra_block_fraction)
        result.rows.append(row)
    return result
