"""Figure 12: performance of the hardware schemes after code reordering.

Integer benchmarks only (the paper excludes SPECfp92: already highly
sequential).  Paper conclusions: sequential(reordered) nearly reaches
perfect(unordered) at PI4; interleaved(reordered) matches
perfect(unordered) across all machines — i.e. reordering lets simple
hardware match the hardware-only collapsing buffer; collapsing
buffer + reordering nearly reaches perfect(reordered) everywhere.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    hmean_ipc,
)
from repro.workloads.profiles import INTEGER_BENCHMARKS

#: (scheme, variant) series, in the paper's bar order.
SERIES = (
    ("sequential", "orig"),
    ("sequential", "reordered"),
    ("interleaved_sequential", "reordered"),
    ("banked_sequential", "reordered"),
    ("collapsing_buffer", "reordered"),
    ("perfect", "reordered"),
    ("perfect", "orig"),
)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig12",
        title="Figure 12: integer harmonic-mean IPC after code reordering",
        headers=["machine"]
        + [
            f"{scheme}({'unordered' if variant == 'orig' else variant})"
            for scheme, variant in SERIES
        ],
        notes=(
            "Expected shape: reordering lifts every scheme; "
            "interleaved(reordered) approaches perfect(unordered); "
            "collapsing(reordered) approaches perfect(reordered)."
        ),
    )
    for machine in all_machines():
        row = [machine.name]
        for scheme, variant in SERIES:
            row.append(
                hmean_ipc(
                    INTEGER_BENCHMARKS, machine, scheme, config, variant=variant
                )
            )
        result.rows.append(row)
    return result
