"""Figure 9: IPC of all four hardware schemes plus perfect.

Panel (a) integer benchmarks, panel (b) floating-point; harmonic means
per machine model.  The paper's conclusions: interleaving gives a slight
boost; banked and the collapsing buffer give distinct improvements,
especially for integer code at higher issue rates; the collapsing buffer
is the most successful mechanism across all designs.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    hmean_ipc,
)
from repro.fetch.factory import HARDWARE_SCHEMES
from repro.workloads.profiles import FP_BENCHMARKS, INTEGER_BENCHMARKS

ALL_SCHEMES = HARDWARE_SCHEMES + ("perfect",)


def run_detail(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Per-benchmark variant of Figure 9 (the paper plots harmonic means;
    this exposes the underlying distribution)."""
    from repro.experiments.common import sim_stats
    from repro.workloads.profiles import ALL_BENCHMARKS, get_profile

    result = ExperimentResult(
        experiment="fig09_detail",
        title="Figure 9 (detail): per-benchmark IPC per fetch scheme",
        headers=["class", "benchmark", "machine"] + list(ALL_SCHEMES),
    )
    for benchmark in ALL_BENCHMARKS:
        for machine in all_machines():
            row = [
                get_profile(benchmark).workload_class,
                benchmark,
                machine.name,
            ]
            for scheme in ALL_SCHEMES:
                row.append(
                    sim_stats(
                        benchmark,
                        machine.name,
                        scheme,
                        length=config.trace_length,
                        warmup=config.warmup,
                        seed=config.seed,
                    ).useful_ipc
                )
            result.rows.append(row)
    return result


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig09",
        title="Figure 9: harmonic-mean IPC per fetch scheme",
        headers=["class", "machine"] + list(ALL_SCHEMES),
        notes=(
            "Expected shape: sequential <= interleaved <= banked <= "
            "collapsing buffer <= perfect, with gaps widening from PI4 "
            "to PI12 (paper Section 3.4)."
        ),
    )
    for class_name, benchmarks in (
        ("int", INTEGER_BENCHMARKS),
        ("fp", FP_BENCHMARKS),
    ):
        for machine in all_machines():
            row = [class_name, machine.name]
            for scheme in ALL_SCHEMES:
                row.append(hmean_ipc(benchmarks, machine, scheme, config))
            result.rows.append(row)
    return result
