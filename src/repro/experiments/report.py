"""Run every experiment and render a combined report."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.experiments import (
    fig03_bounds,
    fig09_schemes,
    fig10_eir,
    fig11_shifter,
    fig12_reordering,
    fig13_padding,
    table2_intra_block,
    table3_taken_reduction,
    table4_nop_padding,
)
from repro.experiments.common import DEFAULT_CONFIG, ExperimentConfig, ExperimentResult
from repro.metrics.chart import result_chart

#: Chartable columns per figure-type experiment (tables stay tabular;
#: derived columns with different units are excluded from the bars).
FIGURE_CHART_COLUMNS: dict[str, list[str] | None] = {
    "fig03": ["sequential", "perfect"],
    "fig09": None,  # all numeric columns share the IPC axis
    "fig10": [
        "sequential %",
        "interleaved_sequential %",
        "banked_sequential %",
        "collapsing_buffer %",
    ],
    "fig11": None,
    "fig12": None,
    "fig13": None,
}


def render(result: ExperimentResult, chart: bool = False) -> str:
    """Text rendering of *result*; with *chart*, figure-type experiments
    are drawn as grouped bar charts instead of tables."""
    if chart and result.experiment in FIGURE_CHART_COLUMNS:
        text = result_chart(
            result, columns=FIGURE_CHART_COLUMNS[result.experiment]
        )
        if result.notes:
            text += f"\n\n{result.notes}"
        return text
    return result.as_text()


#: All experiments in the paper's presentation order.
EXPERIMENTS: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "fig03": fig03_bounds.run,
    "table2": table2_intra_block.run,
    "fig09": fig09_schemes.run,
    "fig10": fig10_eir.run,
    "fig11": fig11_shifter.run,
    "fig12": fig12_reordering.run,
    "table3": table3_taken_reduction.run,
    "table4": table4_nop_padding.run,
    "fig13": fig13_padding.run,
}


def run_experiments(
    names: Iterable[str] | None = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[ExperimentResult]:
    """Run the named experiments (all by default), in paper order."""
    selected = list(names) if names is not None else list(EXPERIMENTS)
    results = []
    for name in selected:
        try:
            runner = EXPERIMENTS[name]
        except KeyError:
            known = ", ".join(EXPERIMENTS)
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
        results.append(runner(config))
    return results


def full_report(
    names: Iterable[str] | None = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
    chart: bool = False,
) -> str:
    """Text report of the selected experiments (tables, or bar charts for
    the figure-type artifacts with *chart*)."""
    sections = [
        render(result, chart=chart)
        for result in run_experiments(names, config)
    ]
    rule = "\n\n" + "=" * 72 + "\n\n"
    return rule.join(sections)
