"""Figure 11: the shifter-implemented collapsing buffer (3-cycle penalty).

The shifter implementation of the collapsing buffer cannot keep the
2-cycle fetch misprediction penalty of the crossbar; this experiment
re-runs the integer comparison with the collapsing buffer at a 3-cycle
penalty while every other scheme keeps 2 cycles.  Paper finding: banked
sequential performs slightly *better* than the 3-cycle collapsing buffer
at PI4 and only slightly worse at PI12 — arguing for the crossbar.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    hmean_ipc,
)
from repro.workloads.profiles import INTEGER_BENCHMARKS

SCHEMES = (
    ("sequential", None),
    ("interleaved_sequential", None),
    ("banked_sequential", None),
    ("collapsing_buffer", 3),  # shifter implementation
    ("perfect", None),
)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        title=(
            "Figure 11: integer IPC with the collapsing buffer at a "
            "3-cycle fetch misprediction penalty (shifter implementation)"
        ),
        headers=["machine"]
        + [
            f"{scheme}(p{penalty})" if penalty else scheme
            for scheme, penalty in SCHEMES
        ],
        notes=(
            "Expected shape: the 3-cycle collapsing buffer loses most of "
            "its advantage over banked sequential (paper Section 3.4)."
        ),
    )
    for machine in all_machines():
        row = [machine.name]
        for scheme, penalty in SCHEMES:
            row.append(
                hmean_ipc(
                    INTEGER_BENCHMARKS,
                    machine,
                    scheme,
                    config,
                    fetch_penalty=penalty,
                )
            )
        result.rows.append(row)
    return result
