"""Figure 13: performance of pad-all and pad-trace for *sequential*.

pad-all augments the unordered program; pad-trace augments the reordered
one.  Paper findings: pad-all gains only at PI4 and *hurts* on larger
cache-block machines (excessive nop insertion destroys locality and eats
fetch slots); pad-trace is a cheap refinement of reordering with marginal
gains.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    hmean_ipc,
)
from repro.workloads.profiles import INTEGER_BENCHMARKS

SERIES = (
    ("sequential", "orig"),
    ("sequential", "pad_all"),
    ("sequential", "reordered"),
    ("sequential", "pad_trace"),
    ("perfect", "orig"),
)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig13",
        title="Figure 13: integer IPC of sequential with nop padding",
        headers=["machine"]
        + [
            f"{scheme}({'unordered' if variant == 'orig' else variant})"
            for scheme, variant in SERIES
        ],
        notes=(
            "Expected shape: pad-all helps at most on PI4 and degrades at "
            "larger block sizes; pad-trace stays at or slightly above "
            "sequential(reordered)."
        ),
    )
    for machine in all_machines():
        row = [machine.name]
        for scheme, variant in SERIES:
            row.append(
                hmean_ipc(
                    INTEGER_BENCHMARKS, machine, scheme, config, variant=variant
                )
            )
        result.rows.append(row)
    return result
