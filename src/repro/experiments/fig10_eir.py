"""Figure 10: EIR / EIR(perfect) — alignment efficiency.

The effective issue rate is measured fetch-only (see
:mod:`repro.sim.eir`): the scheme's raw supply of aligned correct-path
instructions per cycle.  ``EIR(perfect)`` falls short of the ideal only
through I-cache misses; the ratio isolates each scheme's alignment
ability.  Paper finding: the collapsing buffer is the most consistent
scheme, staying at/above ~90% from PI4 to PI12, while the others decay
with issue rate.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    all_machines,
    eir_stats,
)
from repro.fetch.factory import HARDWARE_SCHEMES
from repro.metrics.summary import harmonic_mean
from repro.workloads.profiles import FP_BENCHMARKS, INTEGER_BENCHMARKS

#: Paper's harmonic-mean ratios (percent), read from Figure 10.
PAPER_FIG10 = {
    ("int", "PI4"): {"sequential": 54.5, "collapsing_buffer": 93.5},
    ("int", "PI12"): {"sequential": 43.0, "collapsing_buffer": 90.6},
    ("fp", "PI4"): {"sequential": 96.5, "collapsing_buffer": 98.5},
    ("fp", "PI12"): {"sequential": 79.5, "collapsing_buffer": 90.2},
}


def run_detail(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Per-benchmark variant of Figure 10."""
    from repro.workloads.profiles import ALL_BENCHMARKS, get_profile

    result = ExperimentResult(
        experiment="fig10_detail",
        title="Figure 10 (detail): per-benchmark EIR/EIR(perfect) %",
        headers=["class", "benchmark", "machine", "EIR(perfect)"]
        + [f"{s} %" for s in HARDWARE_SCHEMES],
    )
    for benchmark in ALL_BENCHMARKS:
        for machine in all_machines():
            perfect = eir_stats(
                benchmark, machine.name, "perfect", length=config.eir_length
            ).eir
            row = [
                get_profile(benchmark).workload_class,
                benchmark,
                machine.name,
                perfect,
            ]
            for scheme in HARDWARE_SCHEMES:
                eir = eir_stats(
                    benchmark, machine.name, scheme, length=config.eir_length
                ).eir
                row.append(100.0 * eir / perfect)
            result.rows.append(row)
    return result


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title="Figure 10: EIR/EIR(perfect) percent, per fetch scheme",
        headers=["class", "machine", "EIR(perfect)"]
        + [f"{s} %" for s in HARDWARE_SCHEMES],
        notes=(
            "Expected shape: collapsing buffer most consistent and "
            "highest; sequential decays fastest with issue rate."
        ),
    )
    for class_name, benchmarks in (
        ("int", INTEGER_BENCHMARKS),
        ("fp", FP_BENCHMARKS),
    ):
        for machine in all_machines():
            perfect = {
                bench: eir_stats(
                    bench, machine.name, "perfect", length=config.eir_length
                ).eir
                for bench in benchmarks
            }
            row = [
                class_name,
                machine.name,
                harmonic_mean(perfect.values()),
            ]
            for scheme in HARDWARE_SCHEMES:
                ratios = [
                    eir_stats(
                        bench, machine.name, scheme, length=config.eir_length
                    ).eir
                    / perfect[bench]
                    for bench in benchmarks
                ]
                row.append(100.0 * harmonic_mean(ratios))
            result.rows.append(row)
    return result
