"""Reproductions of every table and figure in the paper's evaluation."""

from repro.experiments import ablations, variance
from repro.experiments import (
    fig03_bounds,
    fig09_schemes,
    fig10_eir,
    fig11_shifter,
    fig12_reordering,
    fig13_padding,
    table2_intra_block,
    table3_taken_reduction,
    table4_nop_padding,
)
from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    eir_stats,
    sim_stats,
    variant_program,
    variant_trace,
)

__all__ = [
    "DEFAULT_CONFIG",
    "ablations",
    "variance",
    "ExperimentConfig",
    "ExperimentResult",
    "eir_stats",
    "fig03_bounds",
    "fig09_schemes",
    "fig10_eir",
    "fig11_shifter",
    "fig12_reordering",
    "fig13_padding",
    "sim_stats",
    "table2_intra_block",
    "table3_taken_reduction",
    "table4_nop_padding",
    "variant_program",
    "variant_trace",
]
