"""Shared infrastructure for the paper-reproduction experiments.

Each experiment module exposes ``run(config) -> ExperimentResult`` that
regenerates one of the paper's tables or figures.  Simulation outputs are
memoised per (benchmark, program variant, machine, scheme) so composite
experiments and the benchmark harness can share work.

Trace lengths default to laptop-friendly excerpts; set the environment
variable ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=4``) to lengthen every trace
proportionally for higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro import faults, knobs
from repro.compiler import pad_all, pad_trace, reorder_program
from repro.machines.config import MachineConfig
from repro.machines.presets import MACHINES, get_machine
from repro.metrics.summary import format_table, harmonic_mean
from repro.sim import cache as result_cache
from repro.sim.eir import EIRResult, measure_eir
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats
from repro.workloads.suite import load_workload
from repro.workloads.trace import TEST_INPUT_SEED, generate_trace

#: Program variants produced by the compiler subsystem.
VARIANTS = ("orig", "reordered", "pad_all", "pad_trace")


def _scale() -> float:
    return max(0.1, knobs.get_float("REPRO_SCALE"))


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: Dynamic trace length for IPC simulations.
    trace_length: int = int(20_000 * _scale())
    #: Trace length for fetch-only EIR measurements.
    eir_length: int = int(30_000 * _scale())
    #: Trace length for pure trace statistics (Tables 2/3).
    stats_length: int = int(80_000 * _scale())
    #: Warmup instructions excluded from IPC statistics.
    warmup: int = int(4_000 * _scale())
    #: Behaviour seed of the held-out test input.
    seed: int = TEST_INPUT_SEED


DEFAULT_CONFIG = ExperimentConfig()


@dataclass(slots=True)
class ExperimentResult:
    """A regenerated table/figure: headers + rows + provenance notes."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def as_text(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def as_records(self) -> list[dict]:
        """Rows as header-keyed dictionaries."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_json(self, indent: int = 2) -> str:
        """JSON document with provenance, for downstream tooling."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=indent,
        )


# -- cached workload variants -------------------------------------------------


@lru_cache(maxsize=None)
def variant_program(benchmark: str, variant: str, block_words: int = 4):
    """The (program, behaviour) pair for a benchmark code variant.

    ``pad_all`` pads the original layout; ``pad_trace`` pads the reordered
    layout (paper Section 4.1).  *block_words* only matters for pads.
    """
    workload = load_workload(benchmark)
    if variant == "orig":
        return workload.program, workload.behavior
    if variant == "reordered":
        result = _reorder_cached(benchmark)
        return result.program, workload.behavior
    if variant == "pad_all":
        padded = pad_all(workload.program, block_words)
        return padded.program, workload.behavior
    if variant == "pad_trace":
        padded = pad_trace(_reorder_cached(benchmark), block_words)
        return padded.program, workload.behavior
    raise KeyError(f"unknown variant {variant!r}; known: {VARIANTS}")


@lru_cache(maxsize=None)
def _reorder_cached(benchmark: str):
    workload = load_workload(benchmark)
    return reorder_program(workload.program, workload.behavior)


@lru_cache(maxsize=None)
def variant_trace(
    benchmark: str,
    variant: str,
    length: int,
    seed: int,
    block_words: int = 4,
):
    program, behavior = variant_program(benchmark, variant, block_words)
    return generate_trace(program, behavior, length, seed=seed)


# -- cached simulations ----------------------------------------------------------


@lru_cache(maxsize=None)
def sim_stats(
    benchmark: str,
    machine_name: str,
    scheme: str,
    variant: str = "orig",
    length: int = DEFAULT_CONFIG.trace_length,
    warmup: int = DEFAULT_CONFIG.warmup,
    seed: int = DEFAULT_CONFIG.seed,
    fetch_penalty: int | None = None,
    block_words: int = 4,
    kernel: bool | None = None,
) -> SimStats:
    """Run (and memoise) one full IPC simulation.

    Memoised twice: per process via ``lru_cache``, and across processes
    via the persistent disk cache (:mod:`repro.sim.cache`) — batch
    workers, repeated experiment invocations and CI runs share results.

    ``REPRO_SANITIZE=1`` makes the simulation run under the pipeline
    sanitizer (:mod:`repro.check.sanitizer`); the disk-cache key is
    salted with that knob, but the in-process ``lru_cache`` is not —
    flip the environment before the first call, not between calls.

    *kernel* is forwarded to :class:`Simulator` (``None`` defers to the
    ``REPRO_KERNEL`` knob).  It joins the disk-cache key even though the
    kernel is bit-identical — so a result produced with the kernel
    forced off never masks (or is masked by) one produced with it on
    while either path is under suspicion.
    """
    # Chaos site: lets the harness prove a transient failure here is
    # retried (lru_cache does not memoise the raised exception).
    faults.maybe_fail("sim.stats")
    key = (
        benchmark,
        machine_name,
        scheme,
        variant,
        length,
        warmup,
        seed,
        fetch_penalty,
        block_words,
        kernel,
    )

    def compute() -> SimStats:
        machine = get_machine(machine_name)
        if fetch_penalty is not None:
            machine = machine.with_fetch_penalty(fetch_penalty)
        trace = variant_trace(benchmark, variant, length, seed, block_words)
        return Simulator(
            machine, trace, scheme, warmup=warmup, kernel=kernel
        ).run()

    return result_cache.get_or_compute("sim_stats", key, compute)


@lru_cache(maxsize=None)
def telemetry_sim_stats(
    benchmark: str,
    machine_name: str,
    scheme: str,
    variant: str = "orig",
    length: int = DEFAULT_CONFIG.trace_length,
    warmup: int = DEFAULT_CONFIG.warmup,
    seed: int = DEFAULT_CONFIG.seed,
    fetch_penalty: int | None = None,
    block_words: int = 4,
) -> SimStats:
    """:func:`sim_stats` under the instrumented telemetry loop.

    Returns the same counted statistics with ``extra`` carrying the
    ``slot_*`` attribution (deterministic integers, so they round-trip
    through the disk cache).  Cached under a separate kind
    (``telemetry_stats``) so plain and instrumented results never serve
    each other.  Wall-clock phase timings are *not* cached — a cache
    hit serves the attribution only.
    """
    key = (
        benchmark,
        machine_name,
        scheme,
        variant,
        length,
        warmup,
        seed,
        fetch_penalty,
        block_words,
    )
    def compute() -> SimStats:
        machine = get_machine(machine_name)
        if fetch_penalty is not None:
            machine = machine.with_fetch_penalty(fetch_penalty)
        trace = variant_trace(benchmark, variant, length, seed, block_words)
        return Simulator(
            machine, trace, scheme, warmup=warmup, telemetry=True
        ).run()

    return result_cache.get_or_compute("telemetry_stats", key, compute)


@lru_cache(maxsize=None)
def eir_stats(
    benchmark: str,
    machine_name: str,
    scheme: str,
    variant: str = "orig",
    length: int = DEFAULT_CONFIG.eir_length,
    seed: int = DEFAULT_CONFIG.seed,
) -> EIRResult:
    """Run (and memoise) one fetch-only EIR measurement.

    Disk-cached like :func:`sim_stats`.
    """
    key = (benchmark, machine_name, scheme, variant, length, seed)

    def compute() -> EIRResult:
        machine = get_machine(machine_name)
        trace = variant_trace(benchmark, variant, length, seed)
        return measure_eir(trace, machine, scheme)

    return result_cache.get_or_compute("eir_stats", key, compute)


def hmean_ipc(
    benchmarks: tuple[str, ...],
    machine: MachineConfig,
    scheme: str,
    config: ExperimentConfig,
    variant: str = "orig",
    fetch_penalty: int | None = None,
) -> float:
    """Harmonic-mean useful IPC over *benchmarks* (the paper's aggregate;
    nops retired by padded programs do not count as work)."""
    return harmonic_mean(
        sim_stats(
            bench,
            machine.name,
            scheme,
            variant=variant,
            length=config.trace_length,
            warmup=config.warmup,
            seed=config.seed,
            fetch_penalty=fetch_penalty,
            block_words=machine.words_per_block,
        ).useful_ipc
        for bench in benchmarks
    )


def all_machines() -> tuple[MachineConfig, ...]:
    return MACHINES
