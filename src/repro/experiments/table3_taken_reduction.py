"""Table 3: percent reduction in dynamic taken branches from reordering.

Profile-driven trace selection and layout (five profiling seeds, one
held-out test seed) flips likely-taken branches so the hot path falls
through.  Paper values range from 15.7% (li) to 44.2% (compress).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
    variant_trace,
)
from repro.metrics.branches import taken_branch_reduction
from repro.workloads.profiles import INTEGER_BENCHMARKS

#: Paper Table 3 (percent reduction).
PAPER_TABLE3: dict[str, float] = {
    "bison": 25.26,
    "compress": 44.20,
    "eqntott": 24.52,
    "espresso": 22.42,
    "flex": 25.17,
    "gcc": 37.20,
    "li": 15.72,
    "mpeg_play": 25.26,
    "sc": 28.84,
}


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table3",
        title="Table 3: % reduction in dynamic taken branches (reordering)",
        headers=["benchmark", "measured %", "paper %"],
        notes=(
            "Reduction is per work (non-control, non-nop) instruction so "
            "layouts of different code size compare fairly."
        ),
    )
    for benchmark in INTEGER_BENCHMARKS:
        original = variant_trace(
            benchmark, "orig", config.stats_length, config.seed
        )
        reordered = variant_trace(
            benchmark, "reordered", config.stats_length, config.seed
        )
        reduction = 100.0 * taken_branch_reduction(original, reordered)
        result.rows.append(
            [benchmark, reduction, PAPER_TABLE3[benchmark]]
        )
    return result
