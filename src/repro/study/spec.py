"""Declarative study specifications and their deterministic expansion.

A :class:`StudySpec` names one *baseline* fetch scenario (machine x
scheme x workload x scale) plus a set of :class:`Toggle`\\ s — the
components whose contribution the study measures.  :func:`expand` turns
the spec into the full run set in the style of classic one-factor-off
ablation design:

* the **baseline** run (no overrides),
* one **single** run per toggle value (that component flipped, all else
  at baseline),
* optional **pair** runs for every value combination of the toggle
  pairs listed in ``pairwise`` (interaction effects).

Every run gets a **content-hashed run ID**: the SHA-256 of the
canonical JSON of its *resolved* scenario (workload block + effective
overrides).  The hash sees only what the run computes — never the spec
name, toggle names, or declaration order — so IDs are stable across
processes, spec re-orderings and label edits, and two generated runs
that resolve to the same scenario (e.g. a toggle value equal to the
baseline's) collapse onto one ID and are executed once.

Validation speaks :mod:`repro.check`: structural problems surface as
:class:`~repro.check.errors.CheckError` findings with stable ``Dxxx``
codes (plus ``A001``–``A003`` for unknown scheme/machine/benchmark
names), and :func:`expand` raises
:class:`~repro.check.errors.CheckFailure` rather than building an
illegal run set.  See ``docs/studies.md`` for the spec grammar.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro import knobs
from repro.check.errors import CheckError, CheckFailure
from repro.fetch.factory import ALL_SCHEMES
from repro.machines.presets import MACHINES_BY_NAME, get_machine
from repro.workloads.profiles import ALL_BENCHMARKS
from repro.workloads.trace import TEST_INPUT_SEED

#: Direction-predictor configurations a study may toggle (the same
#: vocabulary the predictor ablation always used).
PREDICTOR_KINDS = (
    "btb-2bit",
    "btb+ras",
    "2level",
    "2level+ras",
    "gshare",
    "gshare+ras",
)

#: The predictor the simulator uses when none is requested.
DEFAULT_PREDICTOR = "btb-2bit"

#: ``MachineConfig`` fields a toggle may override, with the Python type
#: each value must carry.  ``bool`` values must be real bools (ints
#: would silently coerce and alias run IDs).
MACHINE_FIELDS: dict[str, type] = {
    "btb_entries": int,
    "speculation_depth": int,
    "window_size": int,
    "fetch_queue_groups": int,
    "fetch_penalty": int,
    "icache_bytes": int,
    "icache_block_bytes": int,
    "icache_miss_latency": int,
    "issue_rate": int,
    "rob_factor": int,
    "memory_ordering": str,
    "recovery_at_retire": bool,
}

#: Scenario-level parameters (not machine fields) a toggle may set.
SCENARIO_PARAMETERS = ("machine", "scheme", "variant", "prewarm",
                      "predictor", "num_banks")

#: Every legal ``Toggle.parameter`` value.
PARAMETERS: tuple[str, ...] = SCENARIO_PARAMETERS + tuple(MACHINE_FIELDS)

#: Program variants the compiler subsystem can produce (mirrors
#: ``repro.experiments.common.VARIANTS`` without importing it here).
VARIANTS = ("orig", "reordered", "pad_all", "pad_trace")

#: Metrics a study may request per run.
METRICS = ("ipc", "eir")

#: Hex digits kept of the scenario digest — plenty against collision in
#: any realistic study (a few thousand runs).
RUN_ID_LEN = 12


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def value_key(value) -> str:
    """Canonical hashable form of one toggle value (dict/index keys)."""
    return _canonical(value)


@dataclass(frozen=True, slots=True)
class Toggle:
    """One component the study flips: a named set of alternative values
    for a single parameter."""

    name: str
    parameter: str
    values: tuple = ()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "parameter": self.parameter,
            "values": list(self.values),
        }


@dataclass(frozen=True, slots=True)
class StudySpec:
    """A declarative ablation study: baseline scenario + toggles."""

    name: str
    benchmarks: tuple = ()
    machine: str = "PI8"
    scheme: str = "collapsing_buffer"
    variant: str = "orig"
    prewarm: bool = True
    #: Dynamic trace length for IPC simulations.
    length: int = 20_000
    #: Trace length for fetch-only EIR measurements.
    eir_length: int = 30_000
    warmup: int = 4_000
    seed: int = TEST_INPUT_SEED
    #: Which metrics every run computes (subset of :data:`METRICS`).
    metrics: tuple = ("ipc", "eir")
    toggles: tuple = ()
    #: Pairs of toggle *names* whose interaction the study measures.
    pairwise: tuple = ()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "machine": self.machine,
            "scheme": self.scheme,
            "variant": self.variant,
            "prewarm": self.prewarm,
            "length": self.length,
            "eir_length": self.eir_length,
            "warmup": self.warmup,
            "seed": self.seed,
            "metrics": list(self.metrics),
            "toggles": [toggle.as_dict() for toggle in self.toggles],
            "pairwise": [list(pair) for pair in self.pairwise],
        }

    @property
    def digest(self) -> str:
        """Content hash binding a manifest/journal to this exact spec."""
        return hashlib.sha256(
            _canonical(self.as_dict()).encode()
        ).hexdigest()[:16]


_SPEC_KEYS = frozenset(StudySpec.__dataclass_fields__)
_TOGGLE_KEYS = frozenset(("name", "parameter", "values"))


def spec_from_dict(payload: dict) -> StudySpec:
    """Build a :class:`StudySpec` from its JSON/dict form.

    Unknown keys are a ``D005`` failure rather than a silent drop — a
    typoed field must not quietly fall back to the default.
    """
    errors = []
    if not isinstance(payload, dict):
        raise CheckFailure(
            [CheckError("D005", "spec", "study spec must be a JSON object")]
        )
    for key in payload:
        if key not in _SPEC_KEYS:
            errors.append(
                CheckError("D005", str(key), "unknown study spec field")
            )
    toggles = []
    for index, entry in enumerate(payload.get("toggles", ())):
        if not isinstance(entry, dict) or set(entry) - _TOGGLE_KEYS:
            errors.append(
                CheckError(
                    "D003",
                    f"toggles[{index}]",
                    "toggle must be {name, parameter, values}",
                )
            )
            continue
        toggles.append(
            Toggle(
                name=str(entry.get("name", "")),
                parameter=str(entry.get("parameter", "")),
                values=tuple(entry.get("values", ())),
            )
        )
    if errors:
        raise CheckFailure(errors)
    fields = {
        key: value
        for key, value in payload.items()
        if key not in ("toggles", "pairwise")
    }
    for key in ("benchmarks", "metrics"):
        if key in fields:
            fields[key] = tuple(fields[key])
    return StudySpec(
        toggles=tuple(toggles),
        pairwise=tuple(tuple(pair) for pair in payload.get("pairwise", ())),
        **fields,
    )


def spec_from_json(text: str) -> StudySpec:
    return spec_from_dict(json.loads(text))


# -- validation ---------------------------------------------------------------


def _check_toggle_value(spec: StudySpec, toggle: Toggle, value) -> CheckError | None:
    """One value of one toggle: type + vocabulary + machine legality."""
    subject = f"{toggle.name}={value!r}"
    parameter = toggle.parameter
    if parameter == "machine":
        if value not in MACHINES_BY_NAME:
            return CheckError("A002", subject, "unknown machine model")
    elif parameter == "scheme":
        if value not in ALL_SCHEMES:
            return CheckError("A001", subject, "unknown fetch scheme")
    elif parameter == "variant":
        if value not in VARIANTS:
            return CheckError(
                "D002", subject, f"variant must be one of {VARIANTS}"
            )
    elif parameter == "prewarm":
        if not isinstance(value, bool):
            return CheckError("D002", subject, "prewarm must be a bool")
    elif parameter == "predictor":
        if value not in PREDICTOR_KINDS:
            return CheckError(
                "D002", subject, f"predictor must be one of {PREDICTOR_KINDS}"
            )
    elif parameter == "num_banks":
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            return CheckError(
                "D002", subject, "num_banks must be a positive integer"
            )
    else:  # machine field (parameter already known-legal)
        wanted = MACHINE_FIELDS[parameter]
        if wanted is bool:
            if not isinstance(value, bool):
                return CheckError(
                    "D002", subject, f"{parameter} must be a bool"
                )
        elif wanted is int and (
            not isinstance(value, int) or isinstance(value, bool)
        ):
            return CheckError("D002", subject, f"{parameter} must be an int")
        elif wanted is str and not isinstance(value, str):
            return CheckError("D002", subject, f"{parameter} must be a str")
        else:
            try:
                dataclasses.replace(
                    get_machine(spec.machine), **{parameter: value}
                )
            except ValueError as exc:
                return CheckError("D006", subject, str(exc))
    return None


def validate(spec: StudySpec) -> list[CheckError]:
    """Every structural problem with *spec* (empty list = legal)."""
    errors: list[CheckError] = []

    def flag(code: str, subject: str, message: str) -> None:
        errors.append(CheckError(code, subject, message))

    if not spec.name or not isinstance(spec.name, str):
        flag("D005", "name", "study name must be a non-empty string")
    if not spec.benchmarks:
        flag("D005", "benchmarks", "study needs at least one benchmark")
    for benchmark in spec.benchmarks:
        if benchmark not in ALL_BENCHMARKS:
            flag("A003", str(benchmark), "unknown benchmark")
    if spec.machine not in MACHINES_BY_NAME:
        flag("A002", str(spec.machine), "unknown machine model")
    if spec.scheme not in ALL_SCHEMES:
        flag("A001", str(spec.scheme), "unknown fetch scheme")
    if spec.variant not in VARIANTS:
        flag("D005", str(spec.variant), f"variant must be one of {VARIANTS}")
    for name, value in (
        ("length", spec.length),
        ("eir_length", spec.eir_length),
    ):
        if not isinstance(value, int) or value < 1:
            flag("D005", name, f"{name} must be a positive integer")
    if not isinstance(spec.warmup, int) or spec.warmup < 0:
        flag("D005", "warmup", "warmup must be a non-negative integer")
    if not spec.metrics or any(m not in METRICS for m in spec.metrics):
        flag(
            "D005",
            "metrics",
            f"metrics must be a non-empty subset of {METRICS}",
        )

    seen: set[str] = set()
    valid_machine = spec.machine in MACHINES_BY_NAME
    for toggle in spec.toggles:
        subject = toggle.name or "<unnamed>"
        if not toggle.name:
            flag("D003", subject, "toggle needs a name")
        elif toggle.name in seen:
            flag("D003", subject, "duplicate toggle name")
        seen.add(toggle.name)
        if not toggle.values:
            flag("D003", subject, "toggle needs at least one value")
        if len({value_key(v) for v in toggle.values}) != len(toggle.values):
            flag("D003", subject, "toggle values must be unique")
        if toggle.parameter not in PARAMETERS:
            flag(
                "D001",
                f"{subject}:{toggle.parameter}",
                f"parameter must be one of {PARAMETERS}",
            )
            continue
        if not valid_machine:
            continue  # value legality needs a resolvable base machine
        for value in toggle.values:
            error = _check_toggle_value(spec, toggle, value)
            if error is not None:
                errors.append(error)

    for pair in spec.pairwise:
        subject = "x".join(str(p) for p in pair)
        if len(pair) != 2 or pair[0] == pair[1]:
            flag("D004", subject, "pairwise entry must name two distinct toggles")
            continue
        undeclared = False
        for name in pair:
            if name not in seen:
                flag("D004", str(name), "pairwise names an undeclared toggle")
                undeclared = True
        if undeclared:
            continue
        by_name = {toggle.name: toggle for toggle in spec.toggles}
        if by_name[pair[0]].parameter == by_name[pair[1]].parameter:
            flag(
                "D004",
                subject,
                "paired toggles must flip distinct parameters",
            )

    if not errors and valid_machine:
        # Pairwise override *combinations* can be illegal even when each
        # override is legal alone (e.g. a small machine with a large
        # block): resolve every generated run once, dry.
        for overrides, _, _ in _generate(spec):
            try:
                resolve_scenario(spec, overrides)
            except ValueError as exc:
                label = ",".join(
                    f"{k}={v!r}" for k, v in sorted(overrides.items())
                )
                errors.append(CheckError("D006", label, str(exc)))
    return errors


# -- expansion ----------------------------------------------------------------


def resolve_scenario(spec: StudySpec, overrides: dict) -> dict:
    """The canonical scenario a run with *overrides* computes.

    Machine-field overrides equal to the (possibly overridden) base
    machine's value are dropped — they are no-ops, and dropping them is
    what makes equal-content runs hash to equal IDs.  Raises
    ``ValueError`` when the field combination builds an illegal
    :class:`~repro.machines.config.MachineConfig`.
    """
    machine_name = overrides.get("machine", spec.machine)
    base = get_machine(machine_name)
    fields = {
        key: value
        for key, value in overrides.items()
        if key in MACHINE_FIELDS and value != getattr(base, key)
    }
    if fields:
        dataclasses.replace(base, **fields)  # legality check (ValueError)
    return {
        "machine": machine_name,
        "fields": {key: fields[key] for key in sorted(fields)},
        "scheme": overrides.get("scheme", spec.scheme),
        "variant": overrides.get("variant", spec.variant),
        "prewarm": bool(overrides.get("prewarm", spec.prewarm)),
        "predictor": overrides.get("predictor", DEFAULT_PREDICTOR),
        "num_banks": int(overrides.get("num_banks", 0)),
    }


def _workload_block(spec: StudySpec) -> dict:
    return {
        "benchmarks": list(spec.benchmarks),
        "length": spec.length,
        "eir_length": spec.eir_length,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "metrics": list(spec.metrics),
    }


def run_id_of(spec: StudySpec, overrides: dict) -> str:
    """Content-hashed run ID (see module docstring)."""
    payload = {
        "scenario": resolve_scenario(spec, overrides),
        "workload": _workload_block(spec),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:RUN_ID_LEN]


@dataclass(frozen=True, slots=True)
class StudyRun:
    """One unique run of the expanded study."""

    run_id: str
    label: str
    scenario: dict
    #: Effective overrides: scenario components differing from baseline.
    overrides: tuple


@dataclass(slots=True)
class Expansion:
    """The deterministic run set of one spec, with lookup indices."""

    spec: StudySpec
    runs: list[StudyRun] = field(default_factory=list)
    baseline_id: str = ""
    #: ``(toggle_name, value_key) -> run_id`` for one-factor-off runs.
    singles: dict = field(default_factory=dict)
    #: ``(toggle_a, value_key_a, toggle_b, value_key_b) -> run_id``.
    pairs: dict = field(default_factory=dict)
    #: Every *generated* entry pre-dedup: ``(role, toggle_names, run_id)``
    #: — the conservation ledger tests count against.
    memberships: list = field(default_factory=list)

    def single_id(self, toggle: str, value) -> str:
        return self.singles[(toggle, value_key(value))]

    def pair_id(self, toggle_a: str, value_a, toggle_b: str, value_b) -> str:
        try:
            return self.pairs[
                (toggle_a, value_key(value_a), toggle_b, value_key(value_b))
            ]
        except KeyError:
            return self.pairs[
                (toggle_b, value_key(value_b), toggle_a, value_key(value_a))
            ]


def _generate(spec: StudySpec):
    """Yield ``(overrides, role, toggle_names)`` in declaration order."""
    yield {}, "baseline", ()
    for toggle in spec.toggles:
        for value in toggle.values:
            yield {toggle.parameter: value}, "single", (toggle.name,)
    by_name = {toggle.name: toggle for toggle in spec.toggles}
    for name_a, name_b in spec.pairwise:
        toggle_a, toggle_b = by_name[name_a], by_name[name_b]
        for value_a in toggle_a.values:
            for value_b in toggle_b.values:
                yield (
                    {toggle_a.parameter: value_a, toggle_b.parameter: value_b},
                    "pair",
                    (name_a, name_b),
                )


def _label(spec: StudySpec, scenario: dict, baseline: dict) -> tuple[str, tuple]:
    """Human label + effective-override tuple of a resolved scenario."""
    diffs = []
    for key in ("machine", "scheme", "variant", "prewarm", "predictor",
                "num_banks"):
        if scenario[key] != baseline[key]:
            diffs.append((key, scenario[key]))
    for key, value in scenario["fields"].items():
        diffs.append((key, value))
    diffs.sort()
    if not diffs:
        return "baseline", ()
    return ",".join(f"{k}={v}" for k, v in diffs), tuple(diffs)


def expand(spec: StudySpec) -> Expansion:
    """Validate *spec* and build its deterministic run set.

    Raises :class:`CheckFailure` on any structural problem, including a
    run set larger than the ``REPRO_STUDY_MAX_RUNS`` budget (``D007``).
    """
    errors = validate(spec)
    if errors:
        raise CheckFailure(errors)

    expansion = Expansion(spec=spec)
    baseline_scenario = resolve_scenario(spec, {})
    by_id: dict[str, StudyRun] = {}
    for overrides, role, toggle_names in _generate(spec):
        run_id = run_id_of(spec, overrides)
        if run_id not in by_id:
            scenario = resolve_scenario(spec, overrides)
            label, effective = _label(spec, scenario, baseline_scenario)
            run = StudyRun(run_id, label, scenario, effective)
            by_id[run_id] = run
            expansion.runs.append(run)
        expansion.memberships.append((role, toggle_names, run_id))
        if role == "baseline":
            expansion.baseline_id = run_id
        elif role == "single":
            (name,) = toggle_names
            (param_value,) = overrides.items()
            expansion.singles[(name, value_key(param_value[1]))] = run_id
        else:
            name_a, name_b = toggle_names
            values = list(overrides.items())
            expansion.pairs[
                (
                    name_a,
                    value_key(values[0][1]),
                    name_b,
                    value_key(values[1][1]),
                )
            ] = run_id

    budget = knobs.get_int("REPRO_STUDY_MAX_RUNS")
    if budget > 0 and len(expansion.runs) > budget:
        raise CheckFailure(
            [
                CheckError(
                    "D007",
                    spec.name,
                    f"{len(expansion.runs)} unique runs exceed the "
                    f"REPRO_STUDY_MAX_RUNS budget of {budget}",
                )
            ]
        )
    return expansion
