"""Named study presets, including the declarative ablation ports.

Every hand-written table in :mod:`repro.experiments.ablations` whose
design is a baseline-plus-toggles grid is re-expressed here as a
:class:`~repro.study.spec.StudySpec`; the legacy ``run_*`` functions
delegate to :func:`run_preset_table`, which executes the spec on the
study engine and re-renders the exact legacy
:class:`~repro.experiments.common.ExperimentResult` (same titles,
headers, notes, cell values and row order — the output contract of
``repro ablation`` does not move).

Four ablations intentionally stay hand-written in the legacy module:
``recovery`` (a three-factor cross), ``cb_crossings`` (a custom
idealised fetch unit), ``superblock`` (compiler metrics, not a
simulation), and ``issue_scaling`` (per-benchmark EIR *ratios*, which
cannot be reconstructed from per-run harmonic means).

Presets without a legacy table (``fig11-shifter``, ``smoke``) exist for
``repro ablate run``: the worked example in ``docs/studies.md`` and the
tiny CI chaos study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.common import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    ExperimentResult,
)
from repro.study.engine import run_jobs
from repro.study.spec import (
    PREDICTOR_KINDS,
    Expansion,
    StudySpec,
    Toggle,
    expand,
)

#: Integer subset the ported ablations measure (same set, same order, as
#: the legacy ``ABLATION_BENCHMARKS`` — declared here to keep the import
#: graph acyclic).
STUDY_BENCHMARKS = ("compress", "espresso", "li", "gcc")

#: Machine models the multi-machine ablations sweep, in table row order.
MACHINE_NAMES = ("PI4", "PI8", "PI12")


@dataclass(frozen=True, slots=True)
class StudyPreset:
    """A named, parameterised study.

    Attributes:
        name: CLI name (``repro ablate run <name>``).
        description: One line for ``repro ablate list``.
        build: ``config -> StudySpec`` (config scales trace lengths).
        table: Optional legacy-table renderer
            ``(spec, expansion, metrics_by_run) -> ExperimentResult``;
            presets carrying one back a ported ablation.
        ablation: Name of the legacy ablation this preset ports.
    """

    name: str
    description: str
    build: Callable[[ExperimentConfig], StudySpec]
    table: Callable | None = None
    ablation: str | None = None


def _base(config: ExperimentConfig, name: str, **overrides) -> StudySpec:
    """An IPC-only spec over the ablation benchmarks at *config*'s scale."""
    fields = dict(
        name=name,
        benchmarks=STUDY_BENCHMARKS,
        length=config.trace_length,
        eir_length=config.eir_length,
        warmup=config.warmup,
        seed=config.seed,
        metrics=("ipc",),
    )
    fields.update(overrides)
    return StudySpec(**fields)


def _values(spec: StudySpec, toggle_name: str) -> tuple:
    """The declared values of *toggle_name* (single source of truth for
    the table renderers)."""
    for toggle in spec.toggles:
        if toggle.name == toggle_name:
            return toggle.values
    raise KeyError(toggle_name)


def _ipc(metrics_by_run: dict, run_id: str) -> float:
    return metrics_by_run[run_id]["ipc"]


# -- ported ablations ---------------------------------------------------------


def _build_spec_depth(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "spec-depth",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("machine", "machine", MACHINE_NAMES),
            Toggle("depth", "speculation_depth", (1, 2, 4, 6, 8)),
        ),
        pairwise=(("machine", "depth"),),
    )


def _table_spec_depth(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    depths = _values(spec, "depth")
    result = ExperimentResult(
        experiment="ablation_spec_depth",
        title="Ablation: IPC (collapsing buffer) vs speculation depth",
        headers=["machine"] + [f"depth {d}" for d in depths],
        notes=(
            "Expected: IPC saturates near each machine's paper depth "
            "(2 / 4 / 6); depth 1 starves every machine."
        ),
    )
    for name in _values(spec, "machine"):
        row: list = [name]
        for depth in depths:
            row.append(
                _ipc(metrics, expansion.pair_id("machine", name, "depth", depth))
            )
        result.rows.append(row)
    return result


def _build_banks(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "banks",
        machine="PI8",
        scheme="banked_sequential",
        toggles=(
            Toggle(
                "scheme", "scheme", ("banked_sequential", "collapsing_buffer")
            ),
            Toggle("banks", "num_banks", (2, 4, 8)),
        ),
        pairwise=(("scheme", "banks"),),
    )


def _table_banks(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    bank_counts = _values(spec, "banks")
    result = ExperimentResult(
        experiment="ablation_banks",
        title="Ablation: banked-sequential IPC vs cache bank count (PI8)",
        headers=["scheme"] + [f"{b} banks" for b in bank_counts],
        notes="Expected: IPC rises monotonically with bank count.",
    )
    for scheme in _values(spec, "scheme"):
        row: list = [scheme]
        for banks in bank_counts:
            row.append(
                _ipc(metrics, expansion.pair_id("scheme", scheme, "banks", banks))
            )
        result.rows.append(row)
    return result


def _build_predictors(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "predictors",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("impl", "fetch_penalty", (2, 3)),
            Toggle("predictor", "predictor", PREDICTOR_KINDS),
        ),
        pairwise=(("impl", "predictor"),),
    )


def _table_predictors(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    kinds = _values(spec, "predictor")
    result = ExperimentResult(
        experiment="ablation_predictors",
        title=(
            "Ablation: collapsing-buffer IPC vs predictor "
            "(PI8; crossbar p2 / shifter p3)"
        ),
        headers=["implementation"] + list(kinds),
        notes=(
            "Finding: the RAS fixes return mispredictions and lifts both "
            "implementations; gshare *hurts* here — the synthetic branch "
            "behaviour is per-branch bursty with no cross-branch "
            "correlation, so global history only adds interference and "
            "local 2-bit counters sit near the predictability ceiling.  "
            "On these workloads no direction predictor rescues the "
            "shifter's extra penalty cycle."
        ),
    )
    for label, penalty in (("crossbar (p2)", 2), ("shifter (p3)", 3)):
        row: list = [label]
        for kind in kinds:
            row.append(
                _ipc(
                    metrics,
                    expansion.pair_id("impl", penalty, "predictor", kind),
                )
            )
        result.rows.append(row)
    return result


def _build_cold_start(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "cold-start",
        machine="PI8",
        scheme="sequential",
        toggles=(
            Toggle(
                "scheme",
                "scheme",
                (
                    "sequential",
                    "interleaved_sequential",
                    "banked_sequential",
                    "collapsing_buffer",
                ),
            ),
            Toggle("cold", "prewarm", (False,)),
        ),
        pairwise=(("scheme", "cold"),),
    )


def _table_cold_start(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_cold_start",
        title="Ablation: steady-state vs cold-start IPC (PI8)",
        headers=["scheme", "steady-state", "cold", "cold penalty %"],
        notes=(
            "Expected: everyone loses when cold; interleaved sequential "
            "loses the least (its prefetch doubles as a cold-miss hider)."
        ),
    )
    for scheme in _values(spec, "scheme"):
        warm = _ipc(metrics, expansion.single_id("scheme", scheme))
        cold = _ipc(
            metrics, expansion.pair_id("scheme", scheme, "cold", False)
        )
        result.rows.append(
            [scheme, warm, cold, 100.0 * (warm - cold) / warm]
        )
    return result


def _build_btb_size(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "btb-size",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("btb", "btb_entries", (256, 512, 1024, 2048, 4096)),
        ),
    )


def _table_btb_size(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    sizes = _values(spec, "btb")
    result = ExperimentResult(
        experiment="ablation_btb",
        title="Ablation: IPC (collapsing buffer, PI8) vs BTB entries",
        headers=["machine"] + [str(s) for s in sizes],
        notes="Expected: diminishing returns past the ~1K working set.",
    )
    row: list = ["PI8"]
    for size in sizes:
        row.append(_ipc(metrics, expansion.single_id("btb", size)))
    result.rows.append(row)
    return result


def _build_trace_cache(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "trace-cache",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("machine", "machine", MACHINE_NAMES),
            Toggle(
                "scheme",
                "scheme",
                (
                    "banked_sequential",
                    "collapsing_buffer",
                    "trace_cache",
                    "perfect",
                ),
            ),
        ),
        pairwise=(("machine", "scheme"),),
    )


def _table_trace_cache(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    schemes = _values(spec, "scheme")
    result = ExperimentResult(
        experiment="ablation_trace_cache",
        title="Extension: trace cache vs the paper's schemes (integer subset)",
        headers=["machine"] + list(schemes),
        notes=(
            "Expected: the trace cache is competitive with the collapsing "
            "buffer — dynamic sequences subsume alignment."
        ),
    )
    for name in _values(spec, "machine"):
        row: list = [name]
        for scheme in schemes:
            row.append(
                _ipc(
                    metrics,
                    expansion.pair_id("machine", name, "scheme", scheme),
                )
            )
        result.rows.append(row)
    return result


def _build_memory_ordering(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "memory-ordering",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("machine", "machine", MACHINE_NAMES),
            Toggle("ordering", "memory_ordering", ("conservative",)),
        ),
        pairwise=(("machine", "ordering"),),
    )


def _table_memory_ordering(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_memory",
        title="Ablation: memory-dependence policy (collapsing buffer)",
        headers=["machine", "register-only", "conservative", "loss %"],
        notes=(
            "Conservative ordering serialises memory traffic through the "
            "store stream; the gap bounds the value of disambiguation."
        ),
    )
    for name in _values(spec, "machine"):
        base = _ipc(metrics, expansion.single_id("machine", name))
        ordered = _ipc(
            metrics,
            expansion.pair_id("machine", name, "ordering", "conservative"),
        )
        result.rows.append(
            [name, base, ordered, 100.0 * (base - ordered) / base]
        )
    return result


def _build_window_size(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "window-size",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("machine", "machine", MACHINE_NAMES),
            Toggle("window", "window_size", (12, 16, 24, 32, 48, 64)),
        ),
        pairwise=(("machine", "window"),),
    )


def _table_window_size(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    sizes = _values(spec, "window")
    result = ExperimentResult(
        experiment="ablation_window",
        title="Ablation: IPC (collapsing buffer) vs window size",
        headers=["machine"] + [str(s) for s in sizes],
        notes=(
            "Expected: diminishing returns past each machine's paper "
            "window (16 / 24 / 32) — fetch, not the window, binds."
        ),
    )
    for name in _values(spec, "machine"):
        row: list = [name]
        for size in sizes:
            row.append(
                _ipc(
                    metrics,
                    expansion.pair_id("machine", name, "window", size),
                )
            )
        result.rows.append(row)
    return result


def _build_fetch_queue(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "fetch-queue",
        machine="PI8",
        scheme="collapsing_buffer",
        toggles=(
            Toggle("machine", "machine", MACHINE_NAMES),
            Toggle("queue", "fetch_queue_groups", (1, 2, 4, 8)),
        ),
        pairwise=(("machine", "queue"),),
    )


def _table_fetch_queue(
    spec: StudySpec, expansion: Expansion, metrics: dict
) -> ExperimentResult:
    depths = _values(spec, "queue")
    result = ExperimentResult(
        experiment="ablation_queue",
        title="Ablation: IPC (collapsing buffer) vs fetch-queue depth",
        headers=["machine"] + [f"{d} groups" for d in depths],
        notes=(
            "Expected: a small gain from depth 1 to 2 (fetch keeps "
            "running while dispatch drains), then saturation — the queue "
            "cannot manufacture bandwidth."
        ),
    )
    for name in _values(spec, "machine"):
        row: list = [name]
        for depth in depths:
            row.append(
                _ipc(
                    metrics,
                    expansion.pair_id("machine", name, "queue", depth),
                )
            )
        result.rows.append(row)
    return result


# -- study-native presets (no legacy table) -----------------------------------


def _build_fig11_shifter(config: ExperimentConfig) -> StudySpec:
    return _base(
        config,
        "fig11-shifter",
        machine="PI8",
        scheme="collapsing_buffer",
        metrics=("ipc", "eir"),
        toggles=(
            Toggle("shifter", "fetch_penalty", (3,)),
            Toggle("predictor", "predictor", ("btb+ras", "gshare+ras")),
        ),
        pairwise=(("shifter", "predictor"),),
    )


def _build_smoke(config: ExperimentConfig) -> StudySpec:
    # Fixed tiny lengths regardless of scale: the CI chaos study must
    # cost seconds, and its report must be byte-stable across machines.
    return StudySpec(
        name="smoke",
        benchmarks=("compress",),
        machine="PI4",
        scheme="collapsing_buffer",
        length=2_500,
        eir_length=2_500,
        warmup=400,
        seed=config.seed,
        metrics=("ipc", "eir"),
        toggles=(
            Toggle("btb", "btb_entries", (256,)),
            Toggle("banks", "num_banks", (2,)),
        ),
        pairwise=(("btb", "banks"),),
    )


#: Every named preset, in ``repro ablate list`` order.
PRESETS: dict[str, StudyPreset] = {
    preset.name: preset
    for preset in (
        StudyPreset(
            name="spec-depth",
            description="IPC vs speculation depth across machines",
            build=_build_spec_depth,
            table=_table_spec_depth,
            ablation="spec_depth",
        ),
        StudyPreset(
            name="banks",
            description="banked-sequential IPC vs cache bank count (PI8)",
            build=_build_banks,
            table=_table_banks,
            ablation="banks",
        ),
        StudyPreset(
            name="predictors",
            description="collapsing-buffer IPC vs predictor (crossbar/shifter)",
            build=_build_predictors,
            table=_table_predictors,
            ablation="predictors",
        ),
        StudyPreset(
            name="cold-start",
            description="steady-state vs cold-start IPC (PI8)",
            build=_build_cold_start,
            table=_table_cold_start,
            ablation="cold_start",
        ),
        StudyPreset(
            name="btb-size",
            description="IPC vs BTB capacity (collapsing buffer, PI8)",
            build=_build_btb_size,
            table=_table_btb_size,
            ablation="btb_size",
        ),
        StudyPreset(
            name="trace-cache",
            description="trace cache vs the paper's schemes",
            build=_build_trace_cache,
            table=_table_trace_cache,
            ablation="trace_cache",
        ),
        StudyPreset(
            name="memory-ordering",
            description="register-only vs conservative memory ordering",
            build=_build_memory_ordering,
            table=_table_memory_ordering,
            ablation="memory_ordering",
        ),
        StudyPreset(
            name="window-size",
            description="IPC vs scheduling-window size across machines",
            build=_build_window_size,
            table=_table_window_size,
            ablation="window_size",
        ),
        StudyPreset(
            name="fetch-queue",
            description="IPC vs fetch/decode queue depth across machines",
            build=_build_fetch_queue,
            table=_table_fetch_queue,
            ablation="fetch_queue",
        ),
        StudyPreset(
            name="fig11-shifter",
            description=(
                "worked example: does a better predictor rescue the "
                "shifter collapsing buffer? (docs/studies.md)"
            ),
            build=_build_fig11_shifter,
        ),
        StudyPreset(
            name="smoke",
            description="tiny 2-toggle study for the CI chaos gauntlet",
            build=_build_smoke,
        ),
    )
}

#: Legacy ablation name -> preset name, for the back-compat shim.
ABLATION_PORTS: dict[str, str] = {
    preset.ablation: preset.name
    for preset in PRESETS.values()
    if preset.ablation is not None
}


def run_preset_table(
    name: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> ExperimentResult:
    """Execute ported preset *name* in-process and render its legacy
    table — the body behind the thin ``run_*`` shims in
    :mod:`repro.experiments.ablations`.

    Runs serially (``processes=1``): the ablation CLI's cost profile
    and output contract must not change, and the per-job result cache
    already deduplicates work across invocations.
    """
    preset = PRESETS[name]
    if preset.table is None:
        raise ValueError(f"preset {name!r} has no legacy table renderer")
    spec = preset.build(config)
    expansion = expand(spec)
    metrics_by_run, _ = run_jobs(spec, expansion, processes=1)
    return preset.table(spec, expansion, metrics_by_run)
