"""Importance, interaction and Pareto analysis of an executed study.

Definitions (rendered in ``docs/studies.md``):

* **Delta** of a single run: ``metric(run) - metric(baseline)``.
  Negative means flipping that component *costs* performance.
* **Importance** of a toggle, per metric: the largest absolute delta
  over its values — how much that one component can move the needle.
  Components are ranked by the study's primary metric (EIR when
  measured, else IPC).
* **Interaction** of a pair ``(A=a, B=b)``:
  ``metric(a,b) - (baseline + delta_A(a) + delta_B(b))`` — the part of
  the pair run's effect the one-factor-off deltas do not explain.
* **Pareto frontier**: the non-dominated runs maximising EIR while
  minimising modeled hardware cost (:mod:`repro.study.cost`).  The
  ``perfect`` oracle scheme is excluded — it is a bound, not hardware.

``build_report`` produces a plain-JSON dict; every renderer works from
that dict alone, so ``repro ablate report DIR`` re-renders markdown,
CSV or charts from ``report.json`` without touching a simulator.
The report is deterministic by construction (no timestamps, stable
sort orders), which is what makes interrupted-and-resumed studies
byte-comparable to clean ones.
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.metrics.chart import scatter_chart, tornado_chart
from repro.study.cost import hardware_cost
from repro.study.spec import Expansion, StudySpec


def primary_metric(metrics: Iterable[str]) -> str:
    return "eir" if "eir" in metrics else "ipc"


def build_report(
    spec: StudySpec, expansion: Expansion, metrics_by_run: dict[str, dict]
) -> dict:
    """The full analysis of one executed study, as a plain-JSON dict."""
    primary = primary_metric(spec.metrics)
    baseline = metrics_by_run[expansion.baseline_id]

    runs = []
    for run in expansion.runs:
        entry = {
            "run_id": run.run_id,
            "label": run.label,
            "scenario": run.scenario,
            "cost": hardware_cost(run.scenario),
            "metrics": {m: metrics_by_run[run.run_id][m] for m in spec.metrics},
            "benchmarks": metrics_by_run[run.run_id]["benchmarks"],
        }
        runs.append(entry)

    components = []
    for toggle in spec.toggles:
        values = []
        for value in toggle.values:
            run_id = expansion.single_id(toggle.name, value)
            run_metrics = metrics_by_run[run_id]
            entry = {"value": value, "run_id": run_id}
            for metric in spec.metrics:
                entry[metric] = run_metrics[metric]
                entry[f"delta_{metric}"] = run_metrics[metric] - baseline[metric]
            values.append(entry)
        importance = {
            metric: max(abs(v[f"delta_{metric}"]) for v in values)
            for metric in spec.metrics
        }
        components.append(
            {
                "toggle": toggle.name,
                "parameter": toggle.parameter,
                "values": values,
                "importance": importance,
            }
        )
    components.sort(key=lambda c: (-c["importance"][primary], c["toggle"]))
    for rank, component in enumerate(components, start=1):
        component["rank"] = rank

    interactions = []
    for name_a, name_b in spec.pairwise:
        toggle_a = next(t for t in spec.toggles if t.name == name_a)
        toggle_b = next(t for t in spec.toggles if t.name == name_b)
        for value_a in toggle_a.values:
            for value_b in toggle_b.values:
                run_id = expansion.pair_id(name_a, value_a, name_b, value_b)
                entry = {
                    "toggles": [name_a, name_b],
                    "values": [value_a, value_b],
                    "run_id": run_id,
                    "effects": {},
                }
                for metric in spec.metrics:
                    actual = metrics_by_run[run_id][metric]
                    delta_a = (
                        metrics_by_run[
                            expansion.single_id(name_a, value_a)
                        ][metric]
                        - baseline[metric]
                    )
                    delta_b = (
                        metrics_by_run[
                            expansion.single_id(name_b, value_b)
                        ][metric]
                        - baseline[metric]
                    )
                    expected = baseline[metric] + delta_a + delta_b
                    entry["effects"][metric] = {
                        "actual": actual,
                        "expected": expected,
                        "interaction": actual - expected,
                    }
                interactions.append(entry)
    interactions.sort(
        key=lambda e: (
            -abs(e["effects"][primary]["interaction"]),
            e["run_id"],
        )
    )

    pareto: dict = {"metric": "eir", "points": [], "frontier": []}
    if "eir" in spec.metrics:
        points = [
            {
                "run_id": r["run_id"],
                "label": r["label"],
                "eir": r["metrics"]["eir"],
                "cost": r["cost"],
            }
            for r in runs
            if r["scenario"]["scheme"] != "perfect"
        ]
        points.sort(key=lambda p: (p["cost"], -p["eir"], p["run_id"]))
        frontier = []
        best_eir = float("-inf")
        for point in points:
            if point["eir"] > best_eir:
                frontier.append(point["run_id"])
                best_eir = point["eir"]
        pareto["points"] = points
        pareto["frontier"] = frontier

    return {
        "study": spec.name,
        "spec_digest": spec.digest,
        "metrics": list(spec.metrics),
        "primary_metric": primary,
        "baseline": {
            "run_id": expansion.baseline_id,
            "metrics": {m: baseline[m] for m in spec.metrics},
        },
        "runs": runs,
        "importance": components,
        "interactions": interactions,
        "pareto": pareto,
    }


# -- renderers (work from the report dict alone) ------------------------------


def _tornado_entries(report: dict) -> list[tuple[str, float]]:
    primary = report["primary_metric"]
    entries = []
    for component in report["importance"]:
        for value in component["values"]:
            entries.append(
                (
                    f"{component['toggle']}={value['value']}",
                    value[f"delta_{primary}"],
                )
            )
    return entries


def render_tornado(report: dict) -> str:
    """Tornado chart of per-component deltas on the primary metric."""
    entries = _tornado_entries(report)
    if not entries:
        return "(no toggles)\n"
    primary = report["primary_metric"]
    baseline = report["baseline"]["metrics"][primary]
    return (
        tornado_chart(
            entries,
            title=(
                f"{report['study']}: {primary.upper()} delta vs baseline "
                f"({baseline:.3f})"
            ),
            unit=f" {primary.upper()}",
        )
        + "\n"
    )


def render_csv(report: dict) -> str:
    """Per-run metrics as CSV (one row per unique run)."""
    out = io.StringIO()
    metrics = report["metrics"]
    out.write(",".join(["run_id", "label", "cost", *metrics]) + "\n")
    for run in report["runs"]:
        cells = [run["run_id"], '"' + run["label"] + '"', repr(run["cost"])]
        cells += [repr(run["metrics"][m]) for m in metrics]
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def render_markdown(report: dict) -> str:
    """The human-facing study report (also written as ``report.md``)."""
    primary = report["primary_metric"]
    metrics = report["metrics"]
    lines = [
        f"# Study report: {report['study']}",
        "",
        f"Spec digest `{report['spec_digest']}` · primary metric "
        f"**{primary.upper()}** · {len(report['runs'])} unique runs",
        "",
        "Baseline: "
        + ", ".join(
            f"{m.upper()} {report['baseline']['metrics'][m]:.4f}"
            for m in metrics
        ),
        "",
        "## Component importance",
        "",
    ]
    header = ["rank", "toggle", "parameter"] + [
        f"importance ({m.upper()})" for m in metrics
    ]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for component in report["importance"]:
        row = [
            str(component["rank"]),
            component["toggle"],
            component["parameter"],
        ] + [f"{component['importance'][m]:.4f}" for m in metrics]
        lines.append("| " + " | ".join(row) + " |")
    lines += ["", "```", render_tornado(report).rstrip("\n"), "```", ""]

    if report["interactions"]:
        lines += ["## Pairwise interactions", ""]
        header = ["pair", "values"] + [
            f"{m.upper()} actual/expected/interaction" for m in metrics
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for entry in report["interactions"]:
            cells = [
                "x".join(entry["toggles"]),
                ", ".join(str(v) for v in entry["values"]),
            ]
            for metric in metrics:
                effect = entry["effects"][metric]
                cells.append(
                    f"{effect['actual']:.4f} / {effect['expected']:.4f} / "
                    f"{effect['interaction']:+.4f}"
                )
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")

    pareto = report["pareto"]
    if pareto["points"]:
        frontier = set(pareto["frontier"])
        lines += ["## Pareto frontier: EIR vs modeled hardware cost", ""]
        points = [
            (p["cost"], p["eir"], p["label"]) for p in pareto["points"]
        ]
        marked = {
            i for i, p in enumerate(pareto["points"])
            if p["run_id"] in frontier
        }
        lines += [
            "```",
            scatter_chart(
                points,
                title="EIR vs cost (● = frontier)",
                xlabel="cost (area units)",
                ylabel="EIR",
                mark=marked,
            ),
            "```",
            "",
            "| frontier run | cost | EIR |",
            "|---|---|---|",
        ]
        by_id = {p["run_id"]: p for p in pareto["points"]}
        for run_id in pareto["frontier"]:
            point = by_id[run_id]
            lines.append(
                f"| {point['label']} | {point['cost']:.2f} "
                f"| {point['eir']:.4f} |"
            )
        lines.append("")

    lines += [
        "## Runs",
        "",
        "| run | label | cost | " + " | ".join(m.upper() for m in metrics) + " |",
        "|" + "---|" * (3 + len(metrics)),
    ]
    for run in report["runs"]:
        cells = [run["run_id"], run["label"], f"{run['cost']:.2f}"]
        cells += [f"{run['metrics'][m]:.4f}" for m in metrics]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
