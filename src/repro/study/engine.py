"""Study execution on the supervised sweep engine.

:func:`run_study` turns an expanded :class:`~repro.study.spec.StudySpec`
into one :class:`StudyJob` per (run, benchmark) and hands the batch to
:func:`repro.sim.supervisor.run_supervised` — per-job timeout/retry/
backoff, dead-worker respawn, the ``batch.worker`` chaos site and the
digest-checked :class:`~repro.sim.supervisor.SweepJournal` all come for
free.  A study directory is therefore resumable exactly like a sweep
directory: kill the process at any point, re-run with ``--resume``, and
only unfinished jobs execute; finished ones are served bit-identically
from the journal.

The study ``manifest.json`` binds the spec digest to the same salts the
journal header carries (simulator source version + check-relevant
environment knobs), so a stale journal is detected rather than trusted.

Telemetry: the whole batch runs inside a ``study.run`` span, each job
executes inside a ``study.job`` span (nested under the supervisor's
``batch.job``), and :data:`METRICS` counts expansions, jobs and
reports for the registry scrapers.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.sim import cache as result_cache
from repro.sim.supervisor import (
    SupervisedRun,
    SupervisorConfig,
    SweepJournal,
    outcome_counts,
    run_supervised,
)
from repro.study import analysis
from repro.study.spec import Expansion, StudySpec, expand
from repro.telemetry import trace as tracing
from repro.telemetry.core import MetricsRegistry

#: Counters for the study subsystem (scraped into manifests).
METRICS = MetricsRegistry()

#: File names written into a study output directory.
MANIFEST_NAME = "manifest.json"
REPORT_JSON = "report.json"
REPORT_MD = "report.md"
REPORT_CSV = "report.csv"
TORNADO_TXT = "tornado.txt"


@dataclass(frozen=True, slots=True)
class StudyJob:
    """One supervised unit of work: one run on one benchmark.

    Frozen, closure-free and built only from JSON-representable fields
    so it pickles under ``spawn`` and round-trips through
    :meth:`SweepJournal.job_key`.
    """

    study: str
    run_id: str
    benchmark: str
    machine: str
    #: Sorted ``(field, value)`` machine overrides (tuple: hashable).
    fields: tuple
    scheme: str
    variant: str
    prewarm: bool
    predictor: str
    num_banks: int
    length: int
    eir_length: int
    warmup: int
    seed: int
    metrics: tuple


def _resolved_machine(job: StudyJob):
    from repro.machines.presets import get_machine

    machine = get_machine(job.machine)
    if job.fields:
        machine = dataclasses.replace(machine, **dict(job.fields))
    return machine


def _fetch_unit(job: StudyJob, machine, trace):
    """The scheme name (simulator default path) or an explicit unit when
    the job customises the predictor or banking."""
    if job.predictor == "btb-2bit" and not job.num_banks:
        return job.scheme
    from repro.branch.predictors import GShare, TwoLevelLocal
    from repro.branch.ras import ReturnAddressStack
    from repro.fetch.factory import create_fetch_unit

    if job.predictor.startswith("gshare"):
        predictor = GShare()
    elif job.predictor.startswith("2level"):
        predictor = TwoLevelLocal()
    else:
        predictor = None
    stack = ReturnAddressStack() if job.predictor.endswith("+ras") else None
    return create_fetch_unit(
        job.scheme,
        machine,
        trace,
        direction_predictor=predictor,
        return_stack=stack,
        num_banks=job.num_banks or None,
    )


def _run_study_job(job: StudyJob) -> dict:
    """Compute one run's metrics on one benchmark (module-level so it
    pickles under ``spawn``; imports inside for ``fork`` friendliness).

    Disk-cached under its own kind so repeated studies, the ablation
    shim and CI smoke runs share work across processes.
    """
    key = tuple(
        getattr(job, field.name) for field in dataclasses.fields(StudyJob)
    )

    def compute() -> dict:
        from repro.experiments.common import variant_trace
        from repro.sim.eir import measure_eir
        from repro.sim.simulator import Simulator

        machine = _resolved_machine(job)
        out: dict = {}
        if "ipc" in job.metrics:
            trace = variant_trace(
                job.benchmark,
                job.variant,
                job.length,
                job.seed,
                block_words=machine.words_per_block,
            )
            stats = Simulator(
                machine,
                trace,
                _fetch_unit(job, machine, trace),
                warmup=job.warmup,
                prewarm_cache=job.prewarm,
            ).run()
            out["ipc"] = stats.useful_ipc
            out["cycles"] = stats.cycles
        if "eir" in job.metrics:
            trace = variant_trace(
                job.benchmark,
                job.variant,
                job.eir_length,
                job.seed,
                block_words=machine.words_per_block,
            )
            out["eir"] = measure_eir(
                trace,
                machine,
                _fetch_unit(job, machine, trace),
                prewarm_cache=job.prewarm,
            ).eir
        return out

    with tracing.span(
        "study.job", study=job.study, run=job.run_id, benchmark=job.benchmark
    ):
        return result_cache.get_or_compute("study_job", key, compute)


def study_jobs(spec: StudySpec, expansion: Expansion) -> list[StudyJob]:
    """One job per (unique run, benchmark), in deterministic order."""
    return [
        StudyJob(
            study=spec.name,
            run_id=run.run_id,
            benchmark=benchmark,
            machine=run.scenario["machine"],
            fields=tuple(sorted(run.scenario["fields"].items())),
            scheme=run.scenario["scheme"],
            variant=run.scenario["variant"],
            prewarm=run.scenario["prewarm"],
            predictor=run.scenario["predictor"],
            num_banks=run.scenario["num_banks"],
            length=spec.length,
            eir_length=spec.eir_length,
            warmup=spec.warmup,
            seed=spec.seed,
            metrics=tuple(spec.metrics),
        )
        for run in expansion.runs
        for benchmark in spec.benchmarks
    ]


def aggregate(
    spec: StudySpec,
    expansion: Expansion,
    jobs: list[StudyJob],
    results: list[dict],
) -> dict[str, dict]:
    """Fold per-benchmark job results into per-run metrics.

    Scalar metrics are the harmonic mean over the spec's benchmarks in
    declaration order — the paper's aggregate, and bit-identical to the
    hand-written ablations' ``_hmean_ipc_custom``.
    """
    from repro.metrics.summary import harmonic_mean

    per_run: dict[str, dict] = {
        run.run_id: {"benchmarks": {}} for run in expansion.runs
    }
    for job, result in zip(jobs, results):
        per_run[job.run_id]["benchmarks"][job.benchmark] = result
    for run in expansion.runs:
        benchmarks = per_run[run.run_id]["benchmarks"]
        for metric in spec.metrics:
            per_run[run.run_id][metric] = harmonic_mean(
                benchmarks[b][metric] for b in spec.benchmarks
            )
    return per_run


def run_jobs(
    spec: StudySpec,
    expansion: Expansion,
    processes: int | None = None,
    config: SupervisorConfig | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    on_complete: Callable | None = None,
) -> tuple[dict[str, dict], SupervisedRun]:
    """Execute the expansion's jobs under supervision.

    Returns the per-run aggregated metrics and the supervised-run audit.
    """
    jobs = study_jobs(spec, expansion)
    completed: dict[str, Any] = {}
    if resume and journal is not None:
        completed = journal.load_completed()
    METRICS.inc("study.runs_expanded", len(expansion.runs))
    METRICS.inc("study.jobs_submitted", len(jobs))

    def _count(outcome) -> None:
        if outcome.status == "skipped":
            METRICS.inc("study.jobs_skipped")
        else:
            METRICS.inc("study.jobs_completed")
        if on_complete is not None:
            on_complete(outcome)

    with tracing.span(
        "study.run",
        study=spec.name,
        digest=spec.digest,
        runs=len(expansion.runs),
        jobs=len(jobs),
    ):
        supervised = run_supervised(
            jobs,
            _run_study_job,
            processes=processes,
            config=config,
            journal=journal,
            completed=completed,
            on_complete=_count,
        )
    return aggregate(spec, expansion, jobs, supervised.results), supervised


@dataclass(slots=True)
class StudyOutcome:
    """Everything one :func:`run_study` produced."""

    directory: Path
    spec: StudySpec
    expansion: Expansion
    report: dict
    manifest: dict
    supervised: SupervisedRun


def build_manifest(
    spec: StudySpec, expansion: Expansion, supervised: SupervisedRun
) -> dict:
    """Provenance record binding spec digest + code + check-env salts."""
    return {
        "study": spec.name,
        "spec": spec.as_dict(),
        "spec_digest": spec.digest,
        "source_version": result_cache.source_version(),
        "check_env": list(result_cache._check_env_fingerprint()),
        "runs": len(expansion.runs),
        "jobs": len(supervised.outcomes),
        "outcomes": outcome_counts(supervised.outcomes),
        "degraded_serial": supervised.degraded_serial,
        "worker_failures": supervised.worker_failures,
        "study_counters": dict(METRICS.counters),
    }


def run_study(
    spec: StudySpec,
    out_dir: str | Path,
    processes: int | None = None,
    config: SupervisorConfig | None = None,
    resume: bool = False,
    on_complete: Callable | None = None,
) -> StudyOutcome:
    """Expand, execute, analyse and persist one study.

    Writes ``journal.jsonl`` (during execution), ``manifest.json``,
    ``report.json``/``report.md``/``report.csv`` and ``tornado.txt``
    into *out_dir*.  ``report.json`` is fully deterministic — no
    timestamps or wall-clock — so an interrupted-then-resumed study and
    a clean one produce byte-identical reports.
    """
    expansion = expand(spec)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    journal = SweepJournal(directory)
    try:
        metrics_by_run, supervised = run_jobs(
            spec,
            expansion,
            processes=processes,
            config=config,
            journal=journal,
            resume=resume,
            on_complete=on_complete,
        )
    finally:
        journal.close()

    report = analysis.build_report(spec, expansion, metrics_by_run)
    manifest = build_manifest(spec, expansion, supervised)
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    (directory / REPORT_JSON).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    (directory / REPORT_MD).write_text(analysis.render_markdown(report))
    (directory / REPORT_CSV).write_text(analysis.render_csv(report))
    (directory / TORNADO_TXT).write_text(analysis.render_tornado(report))
    METRICS.inc("study.reports_rendered")
    return StudyOutcome(
        directory=directory,
        spec=spec,
        expansion=expansion,
        report=report,
        manifest=manifest,
        supervised=supervised,
    )
