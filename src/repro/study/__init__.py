"""Declarative ablation & experiment-design engine.

The package splits the classic "run a hand-written sweep loop" workflow
into four orthogonal layers:

* :mod:`repro.study.spec` — declarative :class:`StudySpec` (baseline
  scenario + toggles), validated through :mod:`repro.check`, expanded
  deterministically into content-hashed runs.
* :mod:`repro.study.engine` — execution of the expansion on the
  supervised sweep engine (timeout/retry/backoff, journal, resume).
* :mod:`repro.study.analysis` — importance scores, pairwise
  interactions and EIR-vs-cost Pareto frontiers, rendered as JSON, CSV,
  markdown and ASCII charts.
* :mod:`repro.study.presets` — named studies, including the declarative
  ports of the hand-written :mod:`repro.experiments.ablations` tables.

Entry points: the ``repro ablate`` CLI, or programmatically::

    from repro.study import StudySpec, Toggle, run_study
    spec = StudySpec(name="demo", benchmarks=("compress",),
                     toggles=(Toggle("btb", "btb_entries", (256, 4096)),))
    outcome = run_study(spec, "studies/demo")

See ``docs/studies.md`` for the spec grammar and the analysis
definitions.
"""

from __future__ import annotations

from repro.study.analysis import (
    build_report,
    render_csv,
    render_markdown,
    render_tornado,
)
from repro.study.cost import hardware_cost
from repro.study.engine import METRICS, StudyJob, StudyOutcome, run_study
from repro.study.spec import (
    Expansion,
    StudyRun,
    StudySpec,
    Toggle,
    expand,
    run_id_of,
    spec_from_dict,
    spec_from_json,
    validate,
)

__all__ = [
    "Expansion",
    "METRICS",
    "StudyJob",
    "StudyOutcome",
    "StudyRun",
    "StudySpec",
    "Toggle",
    "build_report",
    "expand",
    "hardware_cost",
    "render_csv",
    "render_markdown",
    "render_tornado",
    "run_id_of",
    "run_study",
    "spec_from_dict",
    "spec_from_json",
    "validate",
]
