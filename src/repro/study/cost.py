"""Modeled hardware cost of a study scenario.

The Pareto analysis needs a *comparable* cost axis, not a layout-exact
one: a deterministic, documented function of the scenario that orders
design points the way a first-order area estimate would.  Costs are in
abstract "area units" roughly calibrated so one kilobyte of SRAM is one
unit; the constants are commented where they come from.

The function is intentionally simple and total — every legal scenario
has a finite cost — with one exception: the ``perfect`` fetch scheme is
an oracle, not hardware, so the analysis layer excludes it from
frontiers (its "cost" here is 0 and would otherwise dominate).
"""

from __future__ import annotations

import dataclasses

from repro.machines.presets import get_machine

#: Fetch-engine adder per scheme: datapath complexity beyond a plain
#: single-ported cache (alignment network, banking, fill logic).
SCHEME_COST = {
    "sequential": 0.0,
    # Dual-bank fetch + next-block prefetch port.
    "interleaved_sequential": 1.0,
    # Predicted-target banking: per-bank decoders + two-block routing.
    "banked_sequential": 2.0,
    # Per-slot banking plus the full crossbar collapsing network
    # (paper Section 4.2's expensive implementation).
    "collapsing_buffer": 6.0,
    # Fill unit, tag array and sequence storage on top of the I-cache.
    "trace_cache": 10.0,
    # Oracle: excluded from frontiers by the analysis layer.
    "perfect": 0.0,
}

#: When the collapsing buffer runs at fetch penalty >= 3 it models the
#: paper's *shifter* implementation — log-depth shifters instead of the
#: crossbar — which is the cheap variant (Figure 11's entire trade).
SHIFTER_REBATE = 2.5

#: Direction-predictor adder beyond the always-present 2-bit BTB.
PREDICTOR_COST = {
    "btb-2bit": 0.0,
    "btb+ras": 0.5,      # return-address stack: a few entries + pointer
    "2level": 2.0,       # per-branch history table + PHT
    "2level+ras": 2.5,
    "gshare": 1.5,       # global history register + shared PHT
    "gshare+ras": 2.0,
}


def hardware_cost(scenario: dict) -> float:
    """Area units of one resolved scenario (see module docstring).

    *scenario* is the canonical dict
    :func:`repro.study.spec.resolve_scenario` builds.
    """
    machine = get_machine(scenario["machine"])
    if scenario["fields"]:
        machine = dataclasses.replace(machine, **scenario["fields"])

    cost = machine.icache_bytes / 1024.0           # 1 unit per KB of SRAM
    cost += 8.0 * machine.btb_entries / 1024.0     # ~8B/entry tag+target
    cost += 0.25 * machine.window_size             # reservation stations
    cost += 0.05 * machine.rob_size                # ROB entries
    cost += 0.5 * machine.speculation_depth        # shadow map per branch
    cost += 0.1 * machine.issue_rate * machine.fetch_queue_groups
    if machine.memory_ordering == "none":
        cost += 1.0      # implicit perfect disambiguation hardware
    if not machine.recovery_at_retire:
        cost += 1.0      # resolution-time redirect needs checkpoint state

    scheme = scenario["scheme"]
    cost += SCHEME_COST[scheme]
    if scheme == "collapsing_buffer" and machine.fetch_penalty >= 3:
        cost -= SHIFTER_REBATE
    cost += PREDICTOR_COST[scenario["predictor"]]
    if scenario["num_banks"]:
        cost += 0.3 * scenario["num_banks"]        # per-bank decode/route
    return round(cost, 3)
