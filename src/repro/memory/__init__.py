"""Instruction-memory hierarchy: the direct-mapped banked I-cache."""

from repro.memory.icache import CacheStats, InstructionCache

__all__ = ["CacheStats", "InstructionCache"]
