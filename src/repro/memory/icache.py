"""Direct-mapped instruction cache with banking.

All three machine models use a direct-mapped I-cache whose block holds
exactly the issue rate in instructions (paper Table 1): PI4 32KB/16B,
PI8 64KB/32B, PI12 128KB/64B.  The interleaved/banked fetch schemes view
the cache as ``num_banks`` banks; consecutive blocks live in consecutive
banks (low-order block-index interleaving, paper Figure 4).

Addresses are instruction-word indices (4 bytes each); a *block index* is
``word_address // words_per_block``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import BYTES_PER_INSTRUCTION


@dataclass(slots=True)
class CacheStats:
    """Access counters for an instruction cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class InstructionCache:
    """A direct-mapped, banked instruction cache.

    Args:
        size_bytes: Total capacity.
        block_bytes: Block (line) size.
        num_banks: Bank count for interleaved access (2 for the paper's
            interleaved/banked/collapsing schemes, 1 for plain sequential).
        miss_latency: Cycles to fill a block from the next memory level.
    """

    def __init__(
        self,
        size_bytes: int,
        block_bytes: int,
        num_banks: int = 1,
        miss_latency: int = 10,
    ) -> None:
        if size_bytes <= 0 or block_bytes <= 0:
            raise ValueError("cache and block sizes must be positive")
        if size_bytes % block_bytes:
            raise ValueError("cache size must be a multiple of the block size")
        if block_bytes % BYTES_PER_INSTRUCTION:
            raise ValueError("block size must hold whole instructions")
        if num_banks < 1:
            raise ValueError("need at least one bank")
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.num_banks = num_banks
        self.miss_latency = miss_latency
        self.words_per_block = block_bytes // BYTES_PER_INSTRUCTION
        self.num_sets = size_bytes // block_bytes
        self._tags: list[int] = [-1] * self.num_sets
        self.stats = CacheStats()

    # -- address helpers ----------------------------------------------------

    def block_index(self, word_address: int) -> int:
        """Block index containing *word_address*."""
        return word_address // self.words_per_block

    def block_start(self, block_index: int) -> int:
        """First word address of *block_index*."""
        return block_index * self.words_per_block

    def bank_of(self, block_index: int) -> int:
        """Bank holding *block_index* (low-order interleaving)."""
        return block_index % self.num_banks

    def set_of(self, block_index: int) -> int:
        return block_index % self.num_sets

    # -- operations ---------------------------------------------------------

    def probe(self, block_index: int) -> bool:
        """Non-recording lookup: True if the block is resident."""
        return self._tags[self.set_of(block_index)] == block_index

    def access(self, block_index: int) -> bool:
        """Look up a block, recording statistics.  Returns hit/miss.

        A miss does *not* fill the block; callers model the fill delay and
        then call :meth:`fill`.
        """
        self.stats.accesses += 1
        if self.probe(block_index):
            return True
        self.stats.misses += 1
        return False

    def fill(self, block_index: int) -> None:
        """Install a block, evicting the direct-mapped victim."""
        self._tags[self.set_of(block_index)] = block_index

    def access_and_fill(self, block_index: int) -> bool:
        """Access and immediately fill on miss; returns the hit/miss result."""
        hit = self.access(block_index)
        if not hit:
            self.fill(block_index)
        return hit

    def flush(self) -> None:
        """Invalidate all blocks (statistics are preserved)."""
        self._tags = [-1] * self.num_sets

    def resident_blocks(self) -> list[int]:
        """Block indices currently resident (for tests/inspection)."""
        return [tag for tag in self._tags if tag >= 0]
