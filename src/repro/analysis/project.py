"""The project under analysis: file discovery, parsed-AST cache, and
the small AST utilities every analyzer shares.

A :class:`Project` is rooted at a repository checkout with the
conventional layout (``src/`` for package code, ``tests/``, ``docs/``).
Analyzers never import the code they inspect — everything is
``ast``-parsed — so ``repro lint`` can audit a tree that does not even
import cleanly, and the test suite can aim the analyzers at tiny
seeded-violation fixture trees.

Special modules are located by basename (configurable via
:class:`ProjectConfig`): the knob registry (``knobs.py``), the
cache-key construction site (``cache.py``) and the fault-site
declarations (``faults.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, slots=True)
class ProjectConfig:
    """Layout knobs for a project under analysis (defaults fit this
    repository; fixtures override)."""

    #: Package-source directory, relative to the root.
    src: str = "src"
    #: Test directory, relative to the root.
    tests: str = "tests"
    #: Documentation files/directories scanned for code references.
    docs: tuple[str, ...] = ("docs", "README.md")
    #: Test files that must exercise every declared fault site.
    chaos_tests: tuple[str, ...] = (
        "tests/test_robustness.py",
        "tests/test_service.py",
        "tests/test_cluster.py",
    )
    #: Basename of the knob-registry module (declares ``KNOBS``).
    registry_basename: str = "knobs.py"
    #: Basename of the result-cache module (constructs cache keys).
    cache_basename: str = "cache.py"
    #: Basename of the fault-injection module (declares ``SITES``).
    faults_basename: str = "faults.py"
    #: Prefix of the environment knobs under registry control.
    knob_prefix: str = "REPRO_"


class Project:
    """A parsed view of one source tree."""

    def __init__(self, root: Path | str, config: ProjectConfig | None = None):
        self.root = Path(root).resolve()
        self.config = config or ProjectConfig()
        self._trees: dict[Path, ast.Module | None] = {}

    # -- discovery -----------------------------------------------------------

    @property
    def src_dir(self) -> Path:
        return self.root / self.config.src

    def source_files(self) -> list[Path]:
        """Every ``.py`` file under the source directory, sorted."""
        if not self.src_dir.is_dir():
            return []
        return sorted(self.src_dir.rglob("*.py"))

    def test_files(self) -> list[Path]:
        tests = self.root / self.config.tests
        if not tests.is_dir():
            return []
        return sorted(tests.rglob("*.py"))

    def doc_files(self) -> list[Path]:
        found: list[Path] = []
        for entry in self.config.docs:
            path = self.root / entry
            if path.is_dir():
                found.extend(sorted(path.rglob("*.md")))
            elif path.is_file():
                found.append(path)
        return found

    def chaos_test_files(self) -> list[Path]:
        return [
            self.root / entry
            for entry in self.config.chaos_tests
            if (self.root / entry).is_file()
        ]

    def find_module(self, basename: str) -> Path | None:
        """First source file with *basename* (sorted order), if any."""
        matches = [p for p in self.source_files() if p.name == basename]
        return matches[0] if matches else None

    @property
    def registry_file(self) -> Path | None:
        return self.find_module(self.config.registry_basename)

    @property
    def cache_file(self) -> Path | None:
        return self.find_module(self.config.cache_basename)

    @property
    def faults_file(self) -> Path | None:
        return self.find_module(self.config.faults_basename)

    # -- parsing -------------------------------------------------------------

    def tree(self, path: Path) -> ast.Module | None:
        """Parsed AST of *path* (memoised); ``None`` on a syntax error —
        a broken file is the Python toolchain's problem, not a lint
        finding."""
        if path not in self._trees:
            try:
                self._trees[path] = ast.parse(
                    path.read_text(), filename=str(path)
                )
            except (SyntaxError, OSError, UnicodeDecodeError):
                self._trees[path] = None
        return self._trees[path]

    def relative(self, path: Path) -> str:
        """Root-relative path with ``/`` separators (finding locations)."""
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


# -- shared AST utilities ------------------------------------------------------


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object paths they import.

    ``import multiprocessing as mp`` -> ``{"mp": "multiprocessing"}``;
    ``from os import environ`` -> ``{"environ": "os.environ"}``.  Only
    module-level and function-level plain imports are recorded — enough
    for the call-resolution the analyzers do.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                table[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return table


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(node: ast.Call, imports: dict[str, str]) -> str | None:
    """The fully-qualified dotted path of *node*'s callee, resolving the
    leading name through *imports* (``mp.Queue`` -> issue
    ``multiprocessing.Queue``)."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved = imports.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def const_str(node: ast.expr) -> str | None:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def assigned_names(node: ast.stmt) -> list[str]:
    """Plain names bound by an Assign/AnnAssign statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    return [t.id for t in targets if isinstance(t, ast.Name)]


def string_tuple(node: ast.expr) -> list[str] | None:
    """The elements of a tuple/list literal of string constants, else
    ``None`` (non-literal or mixed contents)."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = [const_str(element) for element in node.elts]
    if any(v is None for v in values):
        return None
    return [v for v in values if v is not None]
