"""Entry point: run every analyzer, apply the baseline, report.

``run_lint`` is what the ``repro lint`` CLI and the test suite call;
``AnalysisReport`` mirrors the feel of ``repro.check.CheckReport`` —
``ok``, a renderable summary and a JSON form — so both verification
layers read the same from CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.analysis import (
    concurrency,
    error_codes,
    fault_sites,
    knob_registry,
    service_errors,
)
from repro.analysis.findings import Baseline, Finding
from repro.analysis.project import Project, ProjectConfig

#: Analyzer registry: name -> callable(Project) -> list[Finding].  Order
#: is report order.
ANALYZERS: dict[str, Callable[[Project], list[Finding]]] = {
    "knob-registry": knob_registry.analyze,
    "concurrency": concurrency.analyze,
    "service-errors": service_errors.analyze,
    "fault-sites": fault_sites.analyze,
    "error-codes": error_codes.analyze,
}


@dataclass(slots=True)
class AnalysisReport:
    """Outcome of one lint run over one project."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    warnings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        """True when no *new* error-severity finding remains."""
        return not self.findings

    def render(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(str(finding))
        for finding in self.warnings:
            lines.append(f"{finding} (warning)")
        lines.append(
            f"repro lint: {len(self.findings)} finding(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.suppressed)} baselined, "
            f"{self.files_scanned} files scanned"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.findings],
            "warnings": [f.as_dict() for f in self.warnings],
            "suppressed": [f.as_dict() for f in self.suppressed],
        }


def run_lint(
    root: Path | str,
    config: ProjectConfig | None = None,
    baseline: Baseline | None = None,
    analyzers: dict[str, Callable[[Project], list[Finding]]] | None = None,
) -> AnalysisReport:
    """Run *analyzers* (default: all) over the tree at *root*.

    Error-severity findings whose fingerprint the *baseline* lists are
    moved to ``report.suppressed``; warnings are never baselined and
    never fail the run.
    """
    project = Project(root, config)
    baseline = baseline or Baseline()
    report = AnalysisReport(root=str(project.root))
    report.files_scanned = len(project.source_files())
    collected: list[Finding] = []
    for run in (analyzers or ANALYZERS).values():
        collected.extend(run(project))
    for finding in sorted(
        collected, key=lambda f: (f.path, f.line, f.code, f.subject)
    ):
        if finding.severity == "warning":
            report.warnings.append(finding)
        elif baseline.suppresses(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
