"""Concurrency lints (A020–A022).

Three bug shapes this repository has actually hit (or exists to avoid):

* **A020** — a shared ``multiprocessing.Queue`` used as a result
  channel.  A worker that crashes mid-``put`` leaves the queue's feeder
  lock held and deadlocks every other producer — the PR 5 supervisor
  rewrite replaced these with per-worker ``SimpleQueue`` channels
  (lock-free pipe), and this lint keeps them out.  ``SimpleQueue`` is
  explicitly allowed.
* **A021** — a blocking call (``time.sleep``, ``open``,
  ``subprocess.*``, …) directly inside an ``async def`` body, stalling
  the event loop.  Nested synchronous ``def``/``lambda`` bodies are out
  of scope: handing them to an executor is the legitimate pattern.
* **A022** — two locks observed nested in both orders across the
  project (the classic AB/BA deadlock).  Lock-like objects are
  recognised by name: the terminal identifier contains ``lock``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import (
    Project,
    dotted_name,
    import_table,
    resolve_call,
)

#: Queue constructors with a feeder thread + lock (the deadlock shape).
_SHARED_QUEUE_CALLS = frozenset(
    {"multiprocessing.Queue", "multiprocessing.JoinableQueue"}
)
_SHARED_QUEUE_METHODS = frozenset({"Queue", "JoinableQueue"})

#: Resolved callee paths that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)


def _is_lock_like(name: str) -> bool:
    return "lock" in name.rsplit(".", 1)[-1].lower()


def _lock_name(expr: ast.expr) -> str | None:
    """The identity of a ``with`` item if it names a lock, else None."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr)
    if name is not None and _is_lock_like(name):
        return name
    return None


@dataclass(frozen=True, slots=True)
class _LockAcq:
    """One observed 'acquire *inner* while holding *outer*' nesting."""

    outer: str
    inner: str
    path: str
    line: int


def _context_queue_vars(tree: ast.Module, imports: dict[str, str]) -> set[str]:
    """Names assigned from ``[multiprocessing.]get_context(...)`` calls —
    calling ``.Queue()`` on them is the same shared-queue shape."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        resolved = resolve_call(node.value, imports)
        if resolved is not None and resolved.split(".")[-1] == "get_context":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _shared_queues(
    project: Project, path, tree: ast.Module
) -> list[Finding]:
    imports = import_table(tree)
    ctx_vars = _context_queue_vars(tree, imports)
    rel = project.relative(path)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolve_call(node, imports)
        hit = resolved in _SHARED_QUEUE_CALLS
        if not hit and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                node.func.attr in _SHARED_QUEUE_METHODS
                and isinstance(base, ast.Name)
                and base.id in ctx_vars
            ):
                hit = True
        if hit:
            constructor = resolved or f"<context>.{node.func.attr}"  # type: ignore[union-attr]
            findings.append(
                Finding(
                    code="A020",
                    path=rel,
                    line=node.lineno,
                    subject=constructor.rsplit(".", 1)[-1],
                    message=(
                        f"{constructor} has a feeder thread whose lock a "
                        "crashed producer leaves held; use per-worker "
                        "SimpleQueue channels instead"
                    ),
                )
            )
    return findings


def _async_blocking(project: Project, path, tree: ast.Module) -> list[Finding]:
    imports = import_table(tree)
    rel = project.relative(path)
    findings: list[Finding] = []

    def scan(body: list[ast.stmt]) -> None:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # its own scope; nested async defs get their own visit
            if isinstance(node, ast.Call):
                resolved = resolve_call(node, imports)
                blocking = resolved in BLOCKING_CALLS or (
                    resolved == "open" and "open" not in imports
                )
                if blocking:
                    findings.append(
                        Finding(
                            code="A021",
                            path=rel,
                            line=node.lineno,
                            subject=resolved or "call",
                            message=(
                                f"{resolved} blocks the event loop inside an "
                                "async def; await an async equivalent or run "
                                "it in an executor"
                            ),
                        )
                    )
            stack.extend(ast.iter_child_nodes(node))

    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            scan(node.body)
    return findings


def _lock_nestings(project: Project, path, tree: ast.Module) -> list[_LockAcq]:
    """Every (outer, inner) lock nesting observed in *tree*."""
    rel = project.relative(path)
    acquisitions: list[_LockAcq] = []

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            names = [_lock_name(item.context_expr) for item in node.items]
            for name in names:
                if name is None:
                    continue
                for outer in held:
                    if outer != name:
                        acquisitions.append(
                            _LockAcq(outer, name, rel, node.lineno)
                        )
                held = held + (name,)
            for child in node.body:
                visit(child, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            held = ()  # a new frame does not inherit the lexical lock stack
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit(tree, ())
    return acquisitions


def analyze(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    nestings: list[_LockAcq] = []
    for path in project.source_files():
        tree = project.tree(path)
        if tree is None:
            continue
        findings.extend(_shared_queues(project, path, tree))
        findings.extend(_async_blocking(project, path, tree))
        nestings.extend(_lock_nestings(project, path, tree))

    # A022 — an (A, B) nesting somewhere and a (B, A) nesting somewhere
    # else is a deadlock waiting for the interleaving.
    by_pair: dict[tuple[str, str], _LockAcq] = {}
    for acq in nestings:
        by_pair.setdefault((acq.outer, acq.inner), acq)
    reported: set[tuple[str, str]] = set()
    for (outer, inner), acq in sorted(by_pair.items()):
        reverse = by_pair.get((inner, outer))
        if reverse is None:
            continue
        pair = tuple(sorted((outer, inner)))
        if pair in reported:
            continue
        reported.add(pair)
        findings.append(
            Finding(
                code="A022",
                path=acq.path,
                line=acq.line,
                subject=f"{pair[0]}<->{pair[1]}",
                message=(
                    f"{outer} is taken before {inner} here, but "
                    f"{reverse.path}:{reverse.line} takes them in the "
                    "opposite order; pick one order everywhere"
                ),
            )
        )
    return findings
