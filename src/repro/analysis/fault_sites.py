"""Fault-site audit (A030–A032).

:mod:`repro.faults` declares its injection sites in the machine-readable
``SITES`` tuple; the call sites fire them via ``faults.decide(...)`` /
``faults.maybe_fail(...)`` with a literal site name; and the chaos test
suites claim to exercise every recovery path.  Those three views drift
independently — a new injection point added without a chaos test is
exactly the untested recovery path the harness exists to prevent — so
this analyzer cross-checks them:

* **A030** — a ``decide``/``maybe_fail`` call names a site that is not
  declared in ``SITES``.
* **A031** — a declared site is fired nowhere in the code (stale
  declaration, or the injection point was lost in a refactor).
* **A032** — a declared site is not mentioned by any chaos test file
  (no test would notice the recovery path breaking).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import (
    Project,
    assigned_names,
    const_str,
    string_tuple,
)

#: Hook functions that fire a site (bare or as ``faults.<name>``).
HOOK_NAMES = frozenset({"decide", "maybe_fail"})


@dataclass(frozen=True, slots=True)
class SiteUse:
    """One injection-site firing observed in the source tree."""

    site: str
    path: str
    line: int


def declared_sites(project: Project) -> tuple[list[str], int]:
    """``(sites, line)`` parsed from the faults module's ``SITES``
    tuple; ``([], 0)`` when there is no declaration."""
    faults = project.faults_file
    if faults is None:
        return [], 0
    tree = project.tree(faults)
    if tree is None:
        return [], 0
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if "SITES" not in assigned_names(node) or node.value is None:
            continue
        sites = string_tuple(node.value)
        if sites is not None:
            return sites, node.lineno
    return [], 0


def collect_uses(project: Project) -> list[SiteUse]:
    """Every literal-site ``decide``/``maybe_fail`` call outside the
    faults module itself (which dispatches on a variable)."""
    faults = project.faults_file
    uses: list[SiteUse] = []
    for path in project.source_files():
        if path == faults:
            continue
        tree = project.tree(path)
        if tree is None:
            continue
        rel = project.relative(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if callee not in HOOK_NAMES:
                continue
            site = const_str(node.args[0])
            if site is not None:
                uses.append(SiteUse(site=site, path=rel, line=node.lineno))
    return uses


def analyze(project: Project) -> list[Finding]:
    sites, decl_line = declared_sites(project)
    declared = set(sites)
    uses = collect_uses(project)
    faults_rel = (
        project.relative(project.faults_file)
        if project.faults_file is not None
        else project.config.faults_basename
    )
    findings: list[Finding] = []

    seen_undeclared: set[tuple[str, str]] = set()
    for use in uses:
        if use.site in declared:
            continue
        key = (use.site, use.path)
        if key in seen_undeclared:
            continue
        seen_undeclared.add(key)
        findings.append(
            Finding(
                code="A030",
                path=use.path,
                line=use.line,
                subject=use.site,
                message=(
                    f"fault site {use.site!r} is fired here but not declared "
                    f"in SITES ({faults_rel}); declare it and add chaos "
                    "coverage"
                ),
            )
        )

    used = {u.site for u in uses}
    chaos_files = project.chaos_test_files()
    chaos_text = {
        project.relative(p): p.read_text() for p in chaos_files
    }
    chaos_names = ", ".join(chaos_text) or "<none configured>"
    for site in sites:
        if site not in used:
            findings.append(
                Finding(
                    code="A031",
                    path=faults_rel,
                    line=decl_line,
                    subject=site,
                    message=(
                        f"declared fault site {site!r} is fired nowhere; "
                        "remove the declaration or restore the injection "
                        "point"
                    ),
                )
            )
        if not any(site in text for text in chaos_text.values()):
            findings.append(
                Finding(
                    code="A032",
                    path=faults_rel,
                    line=decl_line,
                    subject=site,
                    message=(
                        f"fault site {site!r} appears in no chaos test "
                        f"({chaos_names}); its recovery path is unproven"
                    ),
                )
            )
    return findings
