"""Repo-wide AST-driven static analysis (``repro lint``).

Where :mod:`repro.check` verifies the *artifacts* the simulator consumes
(programs, configs, traces, fetch packets), this package verifies the
*codebase itself*: the invariants that past PRs discovered the hard way
are machine-checked here so the scenario matrix can keep growing without
re-finding them.

Analyzers, each with stable ``A0xx`` finding codes (``A001``–``A009``
are reserved by ``repro.check`` for matrix resolution):

* :mod:`repro.analysis.knob_registry` (A010–A013) — every ``REPRO_*``
  environment knob is declared in :mod:`repro.knobs`, read only through
  its accessors, and cache-salted unless exempted with a reason (the
  PR 2/3/6 cache-aliasing bug class).
* :mod:`repro.analysis.concurrency` (A020–A022) — no shared
  ``multiprocessing.Queue`` result channels (the PR 5 deadlock shape),
  no blocking calls inside ``async def`` bodies, consistent lock
  acquisition order.
* :mod:`repro.analysis.fault_sites` (A030–A032) — the fault-injection
  sites in the code, the declared list in :data:`repro.faults.SITES`
  and the chaos test suites all agree.
* :mod:`repro.analysis.error_codes` (A040–A043) — every stable
  diagnostic code (P/C/T/K/S/A) is unique, documented and referenced by
  at least one test.

Run with ``python -m repro lint`` (``--json`` for machine-readable
output); accepted pre-existing findings live in the committed
``lint_baseline.json``.  See ``docs/linting.md``.
"""

from repro.analysis.api import AnalysisReport, ANALYZERS, run_lint
from repro.analysis.findings import (
    ANALYSIS_CODES,
    Baseline,
    Finding,
)
from repro.analysis.project import Project, ProjectConfig

__all__ = [
    "ANALYSIS_CODES",
    "ANALYZERS",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Project",
    "ProjectConfig",
    "run_lint",
]
