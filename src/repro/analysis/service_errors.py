"""Service-tier error-swallowing lint (A023).

The cluster balancer's whole failure model rests on *absorbed* network
errors: a dead replica shows up as a ``ConnectionError`` that the
failover path deliberately catches and retries elsewhere.  That is
correct — but only if every such swallow leaves a trace.  An ``except
ConnectionError: pass`` deep in the service tier silently converts a
replica failure into nothing, and the operator's ejection counters,
retry budget and chaos assertions all undercount reality.

**A023** therefore flags any ``except`` clause *in the service package*
that catches a network/OS error type and neither re-raises nor records
telemetry in its body.  "Records telemetry" is recognised
syntactically, matching the patterns the service tier actually uses:

* any call whose terminal name contains ``record``
  (``replica.record_failure(...)``, ``self._record_transport_error``);
* a counter/timer call: ``.inc(...)``, ``.observe(...)``,
  ``.add_time(...)``;
* a span-status call: ``.set(...)`` (the ``SpanHandle`` attribute
  setter the balancer uses to mark a try failed).

A handler that re-raises (any ``raise``) is exempt — the error is not
swallowed.  Handlers outside the service package are out of scope:
simulation code has its own error discipline, and cache/fault layers
intentionally absorb ``OSError`` behind their own counters.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Project, dotted_name

#: Exception type names (terminal identifier) whose swallowing must be
#: accounted: the network/OS errors a balancer turns into failover.
NETWORK_ERROR_TYPES = frozenset(
    {
        "OSError",
        "IOError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "IncompleteReadError",
    }
)
# ``TimeoutError`` is deliberately absent: the service tier catches it
# on *intentional* waits (keep-alive idle timeouts, long-poll expiry)
# where the timeout IS the normal outcome.  Timeouts that mean "replica
# failed" are caught alongside ``OSError`` in the failover paths, which
# this lint still covers.

#: Method names that count as recording telemetry.
TELEMETRY_CALLS = frozenset({"inc", "observe", "add_time", "set"})


def _caught_types(handler: ast.ExceptHandler) -> set[str]:
    """Terminal names of the exception types a handler catches."""
    node = handler.type
    if node is None:
        return set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for item in nodes:
        name = dotted_name(item)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records telemetry."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name and ("record" in name or name in TELEMETRY_CALLS):
                return True
    return False


def _service_files(project: Project) -> list:
    """Source files inside the service package (a directory literally
    named ``service`` under the source tree)."""
    return [
        path
        for path in project.source_files()
        if "service" in path.parent.parts
    ]


def analyze(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for path in _service_files(project):
        tree = project.tree(path)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            swallowed = sorted(_caught_types(node) & NETWORK_ERROR_TYPES)
            if not swallowed:
                continue
            if _handler_accounts(node):
                continue
            findings.append(
                Finding(
                    code="A023",
                    path=project.relative(path),
                    line=node.lineno,
                    subject=",".join(swallowed),
                    message=(
                        f"except clause swallows {', '.join(swallowed)} "
                        "without recording a telemetry counter or span "
                        "status (and does not re-raise) — a silent "
                        "network failure in the service tier"
                    ),
                )
            )
    return findings
