"""Error-code discipline (A040–A043).

The repository's contract for diagnostics is *stable codes*: every
failure a checker or analyzer can report carries a short code
(``P001``, ``K007``, ``A011``, …) that tests assert on and docs
explain.  That contract only holds if the catalogues, the docs and the
tests stay in sync, across *all* catalogues as one namespace — which is
how the ``repro.check`` matrix codes (``A001``–``A009``) and the
``repro lint`` codes (``A010``+) share the ``A`` prefix without
colliding.

* **A040** — a code is defined more than once (same or different
  catalogue).
* **A041** — a defined code is mentioned nowhere in the docs.
* **A042** — a defined code is referenced by no test (nothing pins the
  rule's behaviour).
* **A043** (warning) — the docs mention a code that no catalogue
  defines (typo, or the rule was removed without updating the docs).

A catalogue is any top-level ``dict`` assigned to a ``*CODES`` name
whose keys are ``Letter+3digits`` string literals.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import Project, assigned_names

#: Shape of a stable diagnostic code.
CODE_RE = re.compile(r"^[A-Z]\d{3}$")

#: Doc tokens considered code references (restricted to the prefixes
#: the repository actually allocates, to avoid flagging e.g. ruff rule
#: ids quoted in the docs).
DOC_TOKEN_RE = re.compile(r"\b[PCTKSAD]\d{3}\b")

#: The end of a reservation range like ``A001–A009`` names a boundary,
#: not a defined code; such tokens are not stale references.
RANGE_END_RE = re.compile(r"[PCTKSAD]\d{3}`?\s*[-–—]\s*`?([PCTKSAD]\d{3})")


@dataclass(frozen=True, slots=True)
class CodeDef:
    """One code defined in one catalogue."""

    code: str
    path: str
    line: int
    catalogue: str


def collect_definitions(project: Project) -> list[CodeDef]:
    """Every stable code defined by a ``*CODES`` dict in the source."""
    defs: list[CodeDef] = []
    for path in project.source_files():
        tree = project.tree(path)
        if tree is None:
            continue
        rel = project.relative(path)
        for node in tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            names = [n for n in assigned_names(node) if n.endswith("CODES")]
            if not names or not isinstance(node.value, ast.Dict):
                continue
            for key in node.value.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and CODE_RE.match(key.value)
                ):
                    defs.append(
                        CodeDef(
                            code=key.value,
                            path=rel,
                            line=key.lineno,
                            catalogue=names[0],
                        )
                    )
    return defs


def analyze(project: Project) -> list[Finding]:
    defs = collect_definitions(project)
    findings: list[Finding] = []

    # A040 — duplicates across the whole namespace.
    by_code: dict[str, list[CodeDef]] = {}
    for d in defs:
        by_code.setdefault(d.code, []).append(d)
    for code, entries in sorted(by_code.items()):
        if len(entries) > 1:
            first, *rest = entries
            others = ", ".join(f"{e.path}:{e.line}" for e in rest)
            findings.append(
                Finding(
                    code="A040",
                    path=first.path,
                    line=first.line,
                    subject=code,
                    message=(
                        f"{code} is defined in {first.catalogue} here and "
                        f"again at {others}; stable codes are one namespace"
                    ),
                )
            )

    doc_text = {
        project.relative(p): p.read_text() for p in project.doc_files()
    }
    test_text = {
        project.relative(p): p.read_text() for p in project.test_files()
    }

    # A041 / A042 — every defined code must be documented and tested.
    for code in sorted(by_code):
        anchor = by_code[code][0]
        if not any(code in text for text in doc_text.values()):
            findings.append(
                Finding(
                    code="A041",
                    path=anchor.path,
                    line=anchor.line,
                    subject=code,
                    message=(
                        f"{code} is not documented anywhere under "
                        "docs/ or README.md"
                    ),
                )
            )
        if not any(code in text for text in test_text.values()):
            findings.append(
                Finding(
                    code="A042",
                    path=anchor.path,
                    line=anchor.line,
                    subject=code,
                    message=(
                        f"{code} is referenced by no test; nothing pins "
                        "when this diagnostic fires"
                    ),
                )
            )

    # A043 — doc tokens with no definition (warning).
    defined = set(by_code)
    for rel, text in sorted(doc_text.items()):
        seen: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            range_ends = {
                m.span(1) for m in RANGE_END_RE.finditer(line)
            }
            for match in DOC_TOKEN_RE.finditer(line):
                token = match.group()
                if token in defined or token in seen:
                    continue
                if match.span() in range_ends:
                    continue
                seen.add(token)
                findings.append(
                    Finding(
                        code="A043",
                        path=rel,
                        line=lineno,
                        subject=token,
                        message=(
                            f"{token} is mentioned here but defined in no "
                            "code catalogue (typo or removed rule?)"
                        ),
                        severity="warning",
                    )
                )
    return findings
