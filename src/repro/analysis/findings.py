"""Finding records, the ``A0xx`` code catalogue, and baselines.

Mirrors the shape of :mod:`repro.check.errors` — stable codes so tests
and CI assert on *which* rule fired — but for codebase findings, which
additionally carry a file location and a stable *fingerprint* used by
the baseline (suppression) file.

Fingerprints are ``code:path:subject`` — deliberately excluding the
line number, so unrelated edits that shift a file do not churn the
committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Finding-code catalogue: code -> one-line rule description.  Codes
#: A001–A009 are reserved by ``repro.check`` (matrix resolution); the
#: analyzer ranges start at A010.  The full rendered catalogue lives in
#: ``docs/linting.md``.
ANALYSIS_CODES: dict[str, str] = {
    # -- env-knob registry (A01x) --
    "A010": "environment knob read but not declared in the knob registry",
    "A011": "knob declared cache-salted but missing from cache-key construction",
    "A012": "knob declared in the registry but never read anywhere",
    "A013": "environment knob read directly, bypassing the registry accessors",
    # -- concurrency (A02x) --
    "A020": "shared multiprocessing.Queue channel (crash-leaked feeder lock)",
    "A021": "blocking call inside an async def body",
    "A022": "locks acquired in inconsistent order across call sites",
    "A023": "service-tier except swallows a network error without telemetry",
    # -- fault-site audit (A03x) --
    "A030": "fault-injection site fired in code but not declared in faults.SITES",
    "A031": "declared fault site never fired anywhere in the code",
    "A032": "declared fault site not covered by any chaos test",
    # -- error-code discipline (A04x) --
    "A040": "stable diagnostic code defined more than once",
    "A041": "stable diagnostic code not documented in the docs",
    "A042": "stable diagnostic code not referenced by any test",
    "A043": "code referenced in the docs but defined in no catalogue",
}

#: Codes reported as warnings: shown, but they neither fail ``repro
#: lint`` nor require a baseline entry.
WARNING_CODES = frozenset({"A043"})


@dataclass(frozen=True, slots=True)
class Finding:
    """One static-analysis finding at a source location.

    Attributes:
        code: Catalogue key from :data:`ANALYSIS_CODES`.
        path: File path relative to the project root (``/`` separators).
        line: 1-based line number (0 when the finding is file-level).
        subject: The stable thing found (knob name, site, code, lock
            pair) — part of the baseline fingerprint.
        message: Human-readable specifics of this occurrence.
        severity: ``"error"`` or ``"warning"``.
    """

    code: str
    path: str
    line: int
    subject: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.code not in ANALYSIS_CODES:
            raise ValueError(f"unknown analysis code {self.code!r}")
        if self.severity not in ("error", "warning"):
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.code}:{self.path}:{self.subject}"

    def as_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location} [{self.code}] {self.subject}: {self.message}"


#: Baseline file schema version.
BASELINE_VERSION = 1


@dataclass(slots=True)
class Baseline:
    """Accepted pre-existing findings, committed as a JSON file.

    A finding whose fingerprint is listed here is *suppressed*: reported
    in the summary count but not a CI failure.  The file is regenerated
    with ``repro lint --write-baseline`` — the workflow is to fix new
    findings, and to baseline one only with a reviewed justification.
    """

    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path | str | None) -> "Baseline":
        """Read *path*; a missing or ``None`` path is an empty baseline."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.is_file():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        return cls(
            fingerprints={
                entry["fingerprint"] for entry in payload.get("suppressions", [])
            }
        )

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(fingerprints={f.fingerprint for f in findings})

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def write(self, path: Path | str, findings: list[Finding]) -> Path:
        """Persist the error-severity *findings* as the new baseline."""
        path = Path(path)
        entries = sorted(
            {f.fingerprint for f in findings if f.severity == "error"}
        )
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [{"fingerprint": fp} for fp in entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        self.fingerprints = set(entries)
        return path
