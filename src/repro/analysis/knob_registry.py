"""Env-knob registry analyzer (A010–A013).

The contract enforced here is the one :mod:`repro.knobs` establishes:
every ``REPRO_*`` environment variable the codebase reads is declared
exactly once in the registry's ``KNOBS`` table, is read *only* through
the registry accessors, and — the expensive lesson from the cache
PRs — is either salted into the result-cache key or carries a written
exemption reason.

Codes:

* **A010** — a knob is read (via an accessor or a raw ``os.environ`` /
  ``os.getenv`` call) but has no ``KnobSpec`` declaration.
* **A011** — a knob declared ``cache_policy="salted"`` does not reach
  the cache-key construction in the cache module.
* **A012** — a knob is declared but nothing reads it (stale
  declaration; delete it or use it).
* **A013** — a ``REPRO_*`` variable is read directly from the
  environment outside the registry module instead of through the
  accessors (bypasses defaults, value grammar and salting policy).

Only *reads* are flagged: assigning ``os.environ["REPRO_X"] = ...`` to
configure a child process or a test is legitimate and ignored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import (
    Project,
    assigned_names,
    const_str,
    import_table,
    resolve_call,
)

#: Registry accessor function names; a call like ``knobs.raw("REPRO_X")``
#: (or a from-imported bare ``raw(...)``) counts as a read of ``REPRO_X``.
ACCESSOR_NAMES = frozenset({"spec", "raw", "enabled", "get_int", "get_float"})

#: Resolved callee paths that read an environment variable by name.
_ENV_GET_CALLS = frozenset({"os.environ.get", "os.getenv"})


@dataclass(frozen=True, slots=True)
class KnobDecl:
    """One ``KnobSpec(...)`` declaration parsed out of the registry."""

    name: str
    cache_policy: str
    reason: str
    line: int


@dataclass(frozen=True, slots=True)
class KnobRead:
    """One knob read observed in the source tree."""

    name: str
    path: str
    line: int
    #: ``"accessor"`` or ``"env"`` (direct environment access).
    via: str


def parse_registry(project: Project) -> list[KnobDecl]:
    """The ``KnobSpec`` declarations in the registry module's ``KNOBS``
    table (empty when there is no registry module or no table)."""
    registry = project.registry_file
    if registry is None:
        return []
    tree = project.tree(registry)
    if tree is None:
        return []
    decls: list[KnobDecl] = []
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if "KNOBS" not in assigned_names(node):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        for element in value.elts:
            if not (
                isinstance(element, ast.Call)
                and isinstance(element.func, ast.Name)
                and element.func.id == "KnobSpec"
            ):
                continue
            fields = {
                kw.arg: const_str(kw.value)
                for kw in element.keywords
                if kw.arg is not None
            }
            name = fields.get("name")
            if name is None and element.args:
                name = const_str(element.args[0])
            if name is None:
                continue
            decls.append(
                KnobDecl(
                    name=name,
                    cache_policy=fields.get("cache_policy") or "salted",
                    reason=fields.get("reason") or "",
                    line=element.lineno,
                )
            )
    return decls


def _env_read_names(tree: ast.Module, prefix: str) -> list[tuple[str, int]]:
    """``(knob, line)`` for every direct environment *read* of a
    constant name with *prefix* in *tree*."""
    imports = import_table(tree)
    reads: list[tuple[str, int]] = []

    def record(name: str | None, line: int) -> None:
        if name is not None and name.startswith(prefix):
            reads.append((name, line))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            resolved = resolve_call(node, imports)
            if resolved in _ENV_GET_CALLS and node.args:
                record(const_str(node.args[0]), node.lineno)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            base = node.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "environ"
                or isinstance(base, ast.Name)
                and imports.get(base.id) == "os.environ"
            ):
                record(const_str(node.slice), node.lineno)
    return reads


def _accessor_read_names(tree: ast.Module, prefix: str) -> list[tuple[str, int]]:
    """``(knob, line)`` for every registry-accessor call with a constant
    knob-name argument in *tree*."""
    reads: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        callee = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if callee not in ACCESSOR_NAMES:
            continue
        name = const_str(node.args[0])
        if name is not None and name.startswith(prefix):
            reads.append((name, node.lineno))
    return reads


def collect_reads(project: Project) -> list[KnobRead]:
    """Every knob read in the source tree, both kinds, registry module
    included for ``env`` reads only (that is the one place raw access is
    the point)."""
    prefix = project.config.knob_prefix
    registry = project.registry_file
    reads: list[KnobRead] = []
    for path in project.source_files():
        tree = project.tree(path)
        if tree is None:
            continue
        rel = project.relative(path)
        for name, line in _env_read_names(tree, prefix):
            reads.append(KnobRead(name=name, path=rel, line=line, via="env"))
        if path == registry:
            continue
        for name, line in _accessor_read_names(tree, prefix):
            reads.append(
                KnobRead(name=name, path=rel, line=line, via="accessor")
            )
    return reads


def cache_key_knobs(project: Project) -> tuple[set[str], bool]:
    """``(explicit_names, uses_registry)`` for the cache module's key
    construction.

    ``uses_registry`` is True when the module calls the registry's
    ``salted_knobs()`` / ``fingerprint()`` — salting is then derived by
    construction and every salted knob is covered.  ``explicit_names``
    are knob-name string constants assigned to a ``*KNOBS*`` variable
    (the hand-maintained-list shape the fixtures seed).
    """
    cache = project.cache_file
    if cache is None:
        return set(), False
    tree = project.tree(cache)
    if tree is None:
        return set(), False
    prefix = project.config.knob_prefix
    explicit: set[str] = set()
    uses_registry = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if callee in ("salted_knobs", "fingerprint"):
                uses_registry = True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            if not any("KNOBS" in n for n in assigned_names(node)):
                continue
            if node.value is None:
                continue
            for sub in ast.walk(node.value):
                name = const_str(sub)
                if name is not None and name.startswith(prefix):
                    explicit.add(name)
    return explicit, uses_registry


def analyze(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    decls = parse_registry(project)
    declared = {d.name: d for d in decls}
    reads = collect_reads(project)
    registry_rel = (
        project.relative(project.registry_file)
        if project.registry_file is not None
        else project.config.registry_basename
    )

    # A010 / A013 — walk the observed reads.
    seen_undeclared: set[tuple[str, str]] = set()
    for read in reads:
        if read.name not in declared:
            key = (read.name, read.path)
            if key not in seen_undeclared:
                seen_undeclared.add(key)
                findings.append(
                    Finding(
                        code="A010",
                        path=read.path,
                        line=read.line,
                        subject=read.name,
                        message=(
                            f"{read.name} is read here but has no KnobSpec "
                            f"declaration in {registry_rel}"
                        ),
                    )
                )
        if read.via == "env" and read.path != registry_rel:
            findings.append(
                Finding(
                    code="A013",
                    path=read.path,
                    line=read.line,
                    subject=read.name,
                    message=(
                        f"{read.name} is read directly from the environment; "
                        "go through the repro.knobs accessors"
                    ),
                )
            )

    # A012 — declared but never read.
    read_names = {r.name for r in reads}
    for decl in decls:
        if decl.name not in read_names:
            findings.append(
                Finding(
                    code="A012",
                    path=registry_rel,
                    line=decl.line,
                    subject=decl.name,
                    message=(
                        f"{decl.name} is declared in the registry but read "
                        "nowhere; delete the declaration or wire it up"
                    ),
                )
            )

    # A011 — salted knobs must reach the cache key.
    explicit, uses_registry = cache_key_knobs(project)
    if not uses_registry:
        cache_rel = (
            project.relative(project.cache_file)
            if project.cache_file is not None
            else project.config.cache_basename
        )
        for decl in decls:
            if decl.cache_policy != "salted":
                continue
            if decl.name in explicit:
                continue
            findings.append(
                Finding(
                    code="A011",
                    path=registry_rel,
                    line=decl.line,
                    subject=decl.name,
                    message=(
                        f"{decl.name} is declared cache-salted but does not "
                        f"reach the cache-key construction in {cache_rel}; "
                        "derive the key from knobs.salted_knobs()/fingerprint()"
                    ),
                )
            )
    return findings
