"""Admission control, request coalescing and the job registry.

The scheduler sits between the HTTP front-end (:mod:`.server`) and the
persistent :class:`~repro.sim.supervisor.WorkerPool`:

* **Admission control** — at most ``max_queue`` distinct jobs may be
  unfinished at once; past that, submission raises :class:`QueueFull`
  carrying a Retry-After estimate (queue depth x a decaying average of
  recent job durations / worker count), which the server turns into
  HTTP 429.  :class:`Draining` (HTTP 503) rejects work once shutdown
  has begun.
* **Request coalescing (single-flight)** — jobs are keyed by
  :func:`~repro.service.protocol.job_key`; N identical concurrent
  requests share one :class:`JobRecord` and cost one simulation.
  Completed results are kept in a bounded LRU, so repeats of a finished
  job are served instantly without touching the pool (the workers'
  persistent disk cache covers repeats across server restarts).
* **Job registry** — every admitted job gets an id and a
  :class:`JobRecord` clients can poll; terminal records (``done`` /
  ``failed``) are evicted oldest-first once ``completed_capacity`` is
  exceeded.  Failed jobs are *not* served from the LRU: resubmitting
  one runs it again.

Every mutation happens under one lock and every counter lands in the
shared :class:`repro.telemetry.MetricsRegistry`, which ``/metrics``
exposes.  The ``service.queue`` fault-injection site fires inside
admission, proving an injected queue failure rejects the request
cleanly instead of losing an accepted job.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro import faults
from repro.service.protocol import extract_traceparent, job_key, validate_job
from repro.sim import cache as result_cache
from repro.sim.batch import SimJob
from repro.sim.supervisor import PoolDraining, PoolJobError, WorkerPool
from repro.telemetry import MetricsRegistry
from repro.telemetry import trace as tracing


class QueueFull(RuntimeError):
    """Admission refused: the unfinished-job queue is at its bound."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"job queue is full; retry after {retry_after:.1f}s"
        )
        self.retry_after = retry_after


class Draining(RuntimeError):
    """Admission refused: the service is shutting down."""


@dataclass(slots=True)
class JobRecord:
    """One admitted (or remembered) job and everything a client may ask."""

    id: str
    job: SimJob
    key: str
    status: str = "running"  # running | done | failed
    result: dict | None = None
    error: str | None = None
    outcome: dict | None = None
    created: float = field(default_factory=time.time)
    finished: float | None = None
    #: How many requests this record absorbed beyond the first.
    coalesced: int = 0
    future: Any = None
    #: ``(loop, asyncio.Event)`` pairs to poke when the job finishes.
    waiters: list = field(default_factory=list)
    #: Live ``service.job`` span handle (ended in ``_on_done``) and its
    #: trace id, exposed to clients so ``repro trace <id>`` can find the
    #: job's whole tree.  ``None`` while tracing is off.
    trace: Any = None
    trace_id: str | None = None

    def to_dict(self, include_result: bool = True) -> dict:
        from dataclasses import asdict

        record = {
            "id": self.id,
            "status": self.status,
            "job": asdict(self.job),
            "created": round(self.created, 6),
            "finished": (
                round(self.finished, 6) if self.finished is not None else None
            ),
            "coalesced": self.coalesced,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if include_result:
            record["result"] = self.result
        if self.error is not None:
            record["error"] = self.error
        if self.outcome is not None:
            record["outcome"] = self.outcome
        return record


class JobScheduler:
    """See the module docstring; one instance per server."""

    def __init__(
        self,
        pool: WorkerPool,
        registry: MetricsRegistry | None = None,
        max_queue: int = 64,
        completed_capacity: int = 1024,
        name: str = "",
    ) -> None:
        self.pool = pool
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_queue = max_queue
        self.completed_capacity = completed_capacity
        #: Replica name: prefixes every job id (``r1-job-000001``) so a
        #: cluster's front balancer can route a poll straight back to
        #: the replica that issued the id.  Empty for a standalone
        #: server (historical ``job-NNNNNN`` ids).
        self.name = name
        self._lock = threading.Lock()
        self._by_id: dict[str, JobRecord] = {}
        self._inflight: dict[str, JobRecord] = {}
        #: key -> finished-ok record, LRU over completed_capacity.
        self._memo: OrderedDict[str, JobRecord] = OrderedDict()
        #: Terminal record ids in finish order, for registry eviction.
        self._finished_ids: list[str] = []
        self._next_id = 0
        self._ewma_seconds: float | None = None
        self._draining = False
        self._started = time.time()

    # admission -------------------------------------------------------------

    def submit(self, payload: object) -> tuple[JobRecord, str]:
        """Admit one request; returns ``(record, disposition)``.

        Disposition is ``"memo"`` (finished result served instantly),
        ``"coalesced"`` (attached to an identical in-flight job) or
        ``"new"`` (admitted and handed to the pool).  Raises
        :class:`~repro.service.protocol.ValidationError`,
        :class:`QueueFull`, :class:`Draining`, or
        :class:`~repro.faults.FaultInjected` from the ``service.queue``
        chaos site — all *before* the job is accepted, so an admitted
        job is never lost to any of them.
        """
        # Trace context rides outside the job description: popped here
        # so it can never perturb the coalescing / journal / cache key.
        trace_parent = extract_traceparent(payload)
        job = validate_job(payload)
        key = job_key(job)
        with self._lock:
            if self._draining:
                raise Draining("service is draining")
            memo = self._memo.get(key)
            if memo is not None:
                self._memo.move_to_end(key)
                memo.coalesced += 1
                self.registry.inc("service.jobs_memo")
                return memo, "memo"
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.coalesced += 1
                self.registry.inc("service.jobs_coalesced")
                return inflight, "coalesced"
            if len(self._inflight) >= self.max_queue:
                self.registry.inc("service.jobs_rejected_queue_full")
                raise QueueFull(self._retry_after_locked())
            # Chaos site: an injected queue failure must reject the
            # request cleanly (the job is not yet accepted).
            faults.maybe_fail("service.queue", token=key)
            self._next_id += 1
            prefix = f"{self.name}-" if self.name else ""
            record = JobRecord(
                id=f"{prefix}job-{self._next_id:06d}", job=job, key=key
            )
            self._by_id[record.id] = record
            self._inflight[key] = record
            self.registry.inc("service.jobs_admitted")
        # The job's root span: opened at admission, ended in _on_done.
        # Parent precedence: explicit payload traceparent, else the
        # ambient context (the server's service.request span).
        if trace_parent is not None:
            handle = tracing.start_span(
                "service.job",
                parent=tracing.parse_traceparent(trace_parent),
                id=record.id,
            )
        else:
            handle = tracing.start_span("service.job", id=record.id)
        if handle.span is not None:
            record.trace = handle
            record.trace_id = handle.span.trace_id
        try:
            future = self.pool.submit(job, trace_parent=handle.traceparent())
        except PoolDraining:
            handle.end(error="worker pool draining")
            with self._lock:
                self._inflight.pop(key, None)
                self._by_id.pop(record.id, None)
            raise Draining("worker pool is draining") from None
        record.future = future
        future.add_done_callback(lambda f, r=record: self._on_done(r, f))
        return record, "new"

    def _retry_after_locked(self) -> float:
        workers = max(1, self.pool.processes or 1)
        per_job = self._ewma_seconds if self._ewma_seconds else 0.5
        estimate = len(self._inflight) * per_job / workers
        return min(30.0, max(0.2, estimate))

    @property
    def retry_after(self) -> float:
        with self._lock:
            return self._retry_after_locked()

    # completion (fires on the pool's supervision thread) -------------------

    def _on_done(self, record: JobRecord, future: Any) -> None:
        now = time.time()
        try:
            stats = future.result()
        except PoolJobError as exc:
            with self._lock:
                record.status = "failed"
                record.error = str(exc)
                record.outcome = exc.outcome.as_dict()
                self._finish_locked(record, now)
                self.registry.inc("service.jobs_failed")
            if record.trace is not None:
                record.trace.end(error=record.error)
        except BaseException as exc:
            with self._lock:
                record.status = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                self._finish_locked(record, now)
                self.registry.inc("service.jobs_failed")
            if record.trace is not None:
                record.trace.end(error=record.error)
        else:
            with self._lock:
                record.status = "done"
                record.result = stats.as_dict()
                self._finish_locked(record, now)
                self._memo[record.key] = record
                self.registry.inc("service.jobs_completed")
                elapsed = max(0.0, now - record.created)
                self.registry.observe("service.job_seconds", elapsed)
                if self._ewma_seconds is None:
                    self._ewma_seconds = elapsed
                else:
                    self._ewma_seconds = (
                        0.7 * self._ewma_seconds + 0.3 * elapsed
                    )
            if record.trace is not None:
                record.trace.end()
        waiters, record.waiters = record.waiters, []
        for loop, event in waiters:
            loop.call_soon_threadsafe(event.set)

    def _finish_locked(self, record: JobRecord, now: float) -> None:
        record.finished = now
        self._inflight.pop(record.key, None)
        self._finished_ids.append(record.id)
        while len(self._finished_ids) > self.completed_capacity:
            evicted_id = self._finished_ids.pop(0)
            evicted = self._by_id.pop(evicted_id, None)
            if evicted is not None and self._memo.get(evicted.key) is evicted:
                del self._memo[evicted.key]

    # waiting ---------------------------------------------------------------

    def register_waiter(self, record: JobRecord, loop, event) -> bool:
        """Arrange for *event* to be set (via *loop*) when *record*
        finishes; returns False if it already has (nothing to wait for)."""
        with self._lock:
            if record.status in ("done", "failed"):
                return False
            record.waiters.append((loop, event))
            return True

    # introspection ---------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._by_id.get(job_id)

    def jobs(self, limit: int = 100) -> list[dict]:
        """Newest-first summaries of known jobs."""
        with self._lock:
            records = sorted(
                self._by_id.values(), key=lambda r: r.created, reverse=True
            )[:limit]
            return [record.to_dict(include_result=False) for record in records]

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def ready(self) -> bool:
        """Readiness (distinct from liveness): workers spawned and not
        draining — the ``/readyz`` predicate a balancer gates routing
        on, so a replica still warming up (or already drawing down)
        never receives traffic it would queue without serving."""
        with self._lock:
            if self._draining:
                return False
        return self.pool.ready

    def health(self) -> dict:
        with self._lock:
            depth = len(self._inflight)
            draining = self._draining
        return {
            "status": "draining" if draining else "ok",
            "name": self.name or None,
            "ready": self.ready(),
            "uptime_seconds": round(time.time() - self._started, 3),
            "queue_depth": depth,
            "max_queue": self.max_queue,
            "pool": self.pool.info(),
        }

    def metrics(self) -> dict:
        with self._lock:
            depth = len(self._inflight)
            memo_size = len(self._memo)
        return {
            "service": self.registry.as_dict(),
            "queue": {"depth": depth, "max": self.max_queue},
            "memo": {"size": memo_size, "capacity": self.completed_capacity},
            "pool": self.pool.info(),
            "result_cache": result_cache.stats.as_dict(),
            "result_cache_shards": result_cache.shard_stats(),
        }

    # shutdown --------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight jobs, drain the pool.

        Safe to call from any thread (the server calls it off the event
        loop).  Returns True when everything finished inside *timeout*.
        """
        with self._lock:
            self._draining = True
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            with self._lock:
                if not self._inflight:
                    break
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(0.02)
        remaining = None
        if deadline is not None:
            remaining = max(0.1, deadline - time.monotonic())
        drained = self.pool.drain(remaining)
        with self._lock:
            return drained and not self._inflight
