"""Replica supervision for the cluster balancer: ``repro balance``.

:class:`ClusterManager` owns N ``repro serve`` replicas as child
processes — spawning them on preallocated ports, watching them every
monitor tick, and respawning whatever dies so the cluster's capacity
recovers without an operator.  :func:`run_cluster` is the blocking CLI
entry point that runs the manager and the
:class:`~repro.service.balancer.Balancer` in one process: the balancer
reroutes around a dead replica within a probe interval while the
manager brings a fresh one up behind it.

The manager is also the chaos hook for the ``service.replica`` fault
site (``REPRO_FAULTS=...;service.replica=crash:p=0.1`` — see
:mod:`repro.faults`): each monitor tick draws once per replica from the
site's deterministic stream and injects the drawn failure into its own
child — ``crash`` SIGKILLs the replica, ``hang`` SIGSTOPs it for the
rule's ``s=`` seconds (a wedged-but-alive process, the failure mode
health probes exist for), and ``exc`` raises
:class:`~repro.faults.FaultInjected` out of :meth:`~ClusterManager.tick`
(a monitor-side transient the run loop must absorb).  Everything
downstream — ejection, failover, respawn, recovery — is the production
code path; chaos tests only schedule when it fires.
"""

from __future__ import annotations

import asyncio
import http.client
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro import faults
from repro.service.balancer import Balancer, ReplicaState
from repro.telemetry import MetricsRegistry
from repro.telemetry import trace as tracing

#: Minimum seconds between respawns of the same replica (restart storm
#: brake; a crash-looping replica stays ejected between attempts).
RESPAWN_BACKOFF = 0.2

#: Default SIGSTOP duration for a ``hang`` injection when the fault
#: rule does not set ``s=``.
DEFAULT_HANG_SECONDS = 2.0


def _free_port(host: str) -> int:
    """Preallocate a listening port (bind 0, read, close)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


@dataclass
class ReplicaProcess:
    """One supervised ``repro serve`` child."""

    name: str
    host: str
    port: int
    proc: subprocess.Popen | None = None
    respawns: int = 0
    hung_until: float = 0.0
    last_spawn: float = field(default=0.0)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "pid": self.proc.pid if self.proc else None,
            "alive": self.alive,
            "respawns": self.respawns,
            "hung": self.hung_until > 0.0,
        }


class ClusterManager:
    """Spawn, monitor, fault-inject and respawn ``repro serve`` replicas."""

    def __init__(
        self,
        count: int = 3,
        host: str = "127.0.0.1",
        workers: int = 1,
        max_queue: int = 64,
        job_timeout: float | None = None,
        quiet: bool = True,
    ) -> None:
        if count < 1:
            raise ValueError("cluster needs at least one replica")
        self.host = host
        self.workers = workers
        self.max_queue = max_queue
        self.job_timeout = job_timeout
        self.quiet = quiet
        self.registry = MetricsRegistry()
        self.replicas = [
            ReplicaProcess(f"r{i + 1}", host, _free_port(host))
            for i in range(count)
        ]

    # spawning --------------------------------------------------------------

    def _command(self, replica: ReplicaProcess) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            replica.host,
            "--port",
            str(replica.port),
            "--workers",
            str(self.workers),
            "--max-queue",
            str(self.max_queue),
            "--name",
            replica.name,
        ]
        if self.job_timeout is not None:
            cmd += ["--timeout", str(self.job_timeout)]
        if self.quiet:
            cmd.append("--quiet")
        return cmd

    def _spawn(self, replica: ReplicaProcess) -> None:
        # Children must import the same `repro` this process runs.
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        replica.proc = subprocess.Popen(self._command(replica), env=env)
        replica.last_spawn = time.monotonic()
        replica.hung_until = 0.0
        self.registry.inc("cluster.spawns")

    def start(self) -> None:
        for replica in self.replicas:
            self._spawn(replica)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every replica answers ``/readyz`` with 200."""
        deadline = time.monotonic() + timeout
        pending = list(self.replicas)
        while pending and time.monotonic() < deadline:
            still = []
            for replica in pending:
                if not self._probe_ready(replica):
                    still.append(replica)
            pending = still
            if pending:
                time.sleep(0.1)
        if pending:
            names = ", ".join(r.name for r in pending)
            raise TimeoutError(f"replicas never became ready: {names}")

    def _probe_ready(self, replica: ReplicaProcess) -> bool:
        conn = http.client.HTTPConnection(
            replica.host, replica.port, timeout=1.0
        )
        try:
            conn.request("GET", "/readyz")
            return conn.getresponse().status == 200
        except OSError:
            # Not up yet: expected while the replica boots, but counted
            # so a replica that never comes up is visible in /metrics.
            self.registry.inc("cluster.readiness_probe_errors")
            return False
        finally:
            conn.close()

    # monitoring ------------------------------------------------------------

    def tick(self) -> None:
        """One monitor pass: resume hang injections whose window closed,
        respawn dead replicas, and draw the ``service.replica`` fault
        once per replica.  Raises :class:`~repro.faults.FaultInjected`
        for an ``exc`` draw (the run loop absorbs and counts it)."""
        now = time.monotonic()
        for replica in self.replicas:
            if replica.hung_until and now >= replica.hung_until:
                self._resume(replica)
            if not replica.alive:
                if now - replica.last_spawn >= RESPAWN_BACKOFF:
                    replica.respawns += 1
                    self.registry.inc("cluster.respawns")
                    self._spawn(replica)
                continue
            kind = faults.decide("service.replica")
            if kind is None:
                continue
            self.registry.inc("cluster.faults_injected")
            if kind == "crash":
                self._crash(replica)
            elif kind == "hang":
                self._hang(replica, now)
            else:  # "exc": a monitor-side transient
                raise faults.FaultInjected(
                    f"service.replica exc injection ({replica.name})"
                )

    def _crash(self, replica: ReplicaProcess) -> None:
        self.registry.inc("cluster.crashes_injected")
        if replica.proc is not None:
            replica.proc.send_signal(signal.SIGKILL)

    def _hang(self, replica: ReplicaProcess, now: float) -> None:
        plan = faults.plan()
        rule = plan.rules.get("service.replica") if plan else None
        seconds = rule.seconds if rule is not None else DEFAULT_HANG_SECONDS
        seconds = min(seconds, 3600.0)
        self.registry.inc("cluster.hangs_injected")
        if replica.proc is not None and replica.hung_until == 0.0:
            replica.proc.send_signal(signal.SIGSTOP)
            replica.hung_until = now + seconds

    def _resume(self, replica: ReplicaProcess) -> None:
        if replica.proc is not None and replica.alive:
            replica.proc.send_signal(signal.SIGCONT)
            self.registry.inc("cluster.resumes")
        replica.hung_until = 0.0

    # teardown --------------------------------------------------------------

    def stop(self, grace: float = 5.0) -> None:
        """SIGCONT anything stopped, SIGTERM everything, then SIGKILL
        stragglers after *grace* seconds."""
        for replica in self.replicas:
            if replica.proc is None:
                continue
            if replica.hung_until:
                self._resume(replica)
            if replica.alive:
                replica.proc.terminate()
        deadline = time.monotonic() + grace
        for replica in self.replicas:
            if replica.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                replica.proc.wait(remaining)
            except subprocess.TimeoutExpired:
                replica.proc.kill()
                replica.proc.wait(5.0)

    def info(self) -> dict:
        return {
            "replicas": [r.as_dict() for r in self.replicas],
            "counters": dict(self.registry.as_dict()["counters"]),
        }


def run_cluster(
    replicas: int = 3,
    host: str = "127.0.0.1",
    port: int = 8100,
    workers: int = 1,
    max_queue: int = 64,
    job_timeout: float | None = None,
    monitor_interval: float = 0.2,
    quiet: bool = False,
) -> int:
    """Blocking entry point behind ``repro balance``: spawn the replica
    fleet, front it with the balancer, monitor until SIGTERM/SIGINT."""
    tracing.set_process_role("balancer")
    manager = ClusterManager(
        count=replicas,
        host=host,
        workers=workers,
        max_queue=max_queue,
        job_timeout=job_timeout,
        quiet=True,
    )
    manager.start()
    try:
        manager.wait_ready()
    except BaseException:
        manager.stop()
        raise
    balancer = Balancer(
        [ReplicaState(r.name, r.host, r.port) for r in manager.replicas],
        host=host,
        port=port,
    )
    balancer.cluster = manager

    async def monitor() -> None:
        while True:
            try:
                manager.tick()
            except faults.FaultInjected:
                # An injected monitor transient: skip this tick; the
                # counter keeps the injection visible in /metrics.
                manager.registry.inc("cluster.monitor_faults")
            await asyncio.sleep(monitor_interval)

    async def main() -> None:
        actual = await balancer.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, balancer.request_shutdown)
            except NotImplementedError:  # pragma: no cover - windows
                pass
        if not quiet:
            fleet = ", ".join(
                f"{r.name}@{r.port}" for r in manager.replicas
            )
            print(
                f"repro balancer listening on http://{host}:{actual} "
                f"— fronting {fleet}",
                file=sys.stderr,
            )
        ticker = asyncio.create_task(monitor())
        try:
            await balancer.run()
        finally:
            ticker.cancel()
            await asyncio.gather(ticker, return_exceptions=True)
        if not quiet:
            print("repro balancer stopped.", file=sys.stderr)

    try:
        asyncio.run(main())
    finally:
        manager.stop()
    return 0
