"""The asyncio HTTP/JSON front-end: ``repro serve``.

A deliberately small, dependency-free HTTP/1.1 server over
``asyncio.start_server`` — request line + headers + ``Content-Length``
body, keep-alive connections, JSON in and out.  All simulation work goes
through the :class:`~repro.service.scheduler.JobScheduler`; the server
only translates HTTP into scheduler calls and job states into status
codes:

====== ==============================================================
status  meaning
====== ==============================================================
200     job finished (result inline) / health / metrics / listings
202     job accepted or still running (poll ``/v1/jobs/<id>``)
400     malformed JSON or a validation failure (every finding listed)
404     unknown path or job id
429     admission refused: queue full (``Retry-After`` header set)
503     draining for shutdown, not ready (``/readyz``), or an injected
        ``service.queue`` fault
====== ==============================================================

``/healthz`` is *liveness* (the process answers); ``/readyz`` is
*readiness* (workers spawned and not draining) — the cluster balancer
routes only to ready replicas, so a replica still warming up or already
draining never receives traffic it would strand.

``?wait=SECONDS`` on submission or polling long-polls for completion
(bounded by ``max_wait``), so a synchronous client costs one round
trip.  ``SIGTERM``/``SIGINT`` trigger a graceful drain: intake stops
(503), in-flight jobs finish, workers join, then the listener closes.

Observability: ``/metrics`` serves JSON by default and the Prometheus
text exposition with ``?format=prom`` (or an ``Accept`` preferring
``text/plain``).  With ``REPRO_TRACE=1`` every request is a
``service.request`` span joining the caller's ``traceparent`` (echoed
back as a response header), every dict response carries
``server_seconds`` (this request's handling time), and
``/v1/traces/<id>`` returns one trace's spans from the server's flight
recorder — worker spans included, since they ship back with each job
result.  See ``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from urllib.parse import parse_qs, urlsplit

from repro.faults import FaultInjected
from repro.service.protocol import ValidationError
from repro.service.scheduler import Draining, JobScheduler, QueueFull
from repro.telemetry import timeline
from repro.telemetry import trace as tracing
from repro.telemetry.export import to_prometheus

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body accepted (a batch of a few thousand specs).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceServer:
    """One listening service instance around a :class:`JobScheduler`."""

    def __init__(
        self,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_wait: float = 60.0,
        idle_timeout: float = 120.0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.max_wait = max_wait
        self.idle_timeout = idle_timeout
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()

    # lifecycle -------------------------------------------------------------

    async def start(self) -> int:
        """Bind and listen; returns the actual port (``port=0`` picks)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_shutdown(self) -> None:
        """Signal-safe trigger for a graceful drain."""
        self._shutdown.set()

    async def run(
        self,
        drain_timeout: float = 30.0,
        install_signal_handlers: bool = True,
    ) -> None:
        """Serve until :meth:`request_shutdown`, then drain and close."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except NotImplementedError:  # pragma: no cover - windows
                    pass
        await self._shutdown.wait()
        await self.shutdown(drain_timeout)

    async def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Graceful drain: stop intake, finish in-flight work, close."""
        # Runs in a thread: drain() blocks on the pool's supervision
        # thread, and in-flight jobs still need this event loop alive to
        # answer their long-polls.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.drain, drain_timeout
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections would otherwise pin the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._shutdown.set()

    # connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break
                if not line.strip():
                    if not line:
                        break  # peer closed
                    continue
                parts = line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(writer, 400, {"error": "bad request line"})
                    break
                method, target, version = parts
                headers = await self._read_headers(reader)
                if headers is None:
                    break
                body = b""
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 400, {"error": "body too large"})
                    break
                if length:
                    body = await reader.readexactly(length)
                started = time.monotonic()
                try:
                    status, payload, extra = await self._route(
                        method.upper(), target, body, headers
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    status, payload, extra = (
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        [],
                    )
                if isinstance(payload, dict):
                    # Server-side handling time for this very request —
                    # what loadgen subtracts from client latency to make
                    # network + queueing visible.
                    payload.setdefault(
                        "server_seconds", round(time.monotonic() - started, 6)
                    )
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version == "HTTP/1.0"
                )
                await self._respond(writer, status, payload, extra, close)
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            # A torn connection only ends this keep-alive session; the
            # counter keeps balancer-induced churn visible in /metrics.
            self.scheduler.registry.inc("service.connection_errors")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    @staticmethod
    async def _read_headers(reader) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _respond(
        writer,
        status: int,
        payload: object,
        extra_headers: list[tuple[str, str]] | None = None,
        close: bool = False,
    ) -> None:
        if isinstance(payload, str):
            # Plain-text exposition (Prometheus /metrics).
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode()
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: " + ("close" if close else "keep-alive"),
        ]
        for name, value in extra_headers or []:
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    # routing ---------------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, object, list[tuple[str, str]]]:
        """Dispatch one request; with tracing on, wrapped in a
        ``service.request`` span that joins the client's trace (incoming
        ``traceparent`` header) and is echoed back as a ``traceparent``
        response header so clients learn their trace id."""
        headers = headers or {}
        if not tracing.tracing_enabled():
            return await self._route_inner(method, target, body, headers)
        parent = tracing.parse_traceparent(headers.get("traceparent"))
        with tracing.span(
            "service.request",
            parent=parent,
            method=method,
            path=urlsplit(target).path,
        ) as sp:
            status, payload, extra = await self._route_inner(
                method, target, body, headers
            )
            sp.set(status=status)
            echo = sp.traceparent()
            if echo:
                extra = list(extra) + [("traceparent", echo)]
            return status, payload, extra

    async def _route_inner(
        self, method: str, target: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, object, list[tuple[str, str]]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        registry = self.scheduler.registry
        registry.inc("service.http_requests")

        if path == "/healthz" and method == "GET":
            return 200, self.scheduler.health(), []
        if path == "/readyz" and method == "GET":
            ready = self.scheduler.ready()
            payload = {
                "ready": ready,
                "name": self.scheduler.name or None,
                "queue_depth": self.scheduler.queue_depth,
                "max_queue": self.scheduler.max_queue,
            }
            return (200 if ready else 503), payload, []
        if path == "/metrics" and method == "GET":
            tree = self.scheduler.metrics()
            if self._wants_prometheus(query, headers):
                return 200, to_prometheus(tree), []
            return 200, tree, []
        if path == "/v1/jobs" and method == "POST":
            return await self._submit_one(body, query)
        if path == "/v1/batch" and method == "POST":
            return await self._submit_batch(body)
        if path == "/v1/jobs" and method == "GET":
            return 200, {"jobs": self.scheduler.jobs()}, []
        if path.startswith("/v1/jobs/") and method == "GET":
            return await self._poll(path[len("/v1/jobs/"):], query)
        if path == "/v1/traces" and method == "GET":
            spans = tracing.recorder.spans()
            return 200, {"traces": timeline.trace_summaries(spans)}, []
        if path.startswith("/v1/traces/") and method == "GET":
            return self._trace(path[len("/v1/traces/"):])
        if path in (
            "/healthz",
            "/readyz",
            "/metrics",
            "/v1/jobs",
            "/v1/batch",
            "/v1/traces",
        ):
            return 405, {"error": f"method {method} not allowed"}, []
        return 404, {"error": f"no route for {path}"}, []

    @staticmethod
    def _wants_prometheus(query: dict, headers: dict[str, str]) -> bool:
        """``?format=prom`` or an Accept preferring text/plain selects
        the Prometheus exposition; JSON stays the default."""
        requested = query.get("format", [""])[0].lower()
        if requested in ("prom", "prometheus", "text"):
            return True
        if requested:  # explicit ?format=json (or anything else)
            return False
        accept = headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept

    def _trace(self, trace_id: str) -> tuple[int, dict, list[tuple[str, str]]]:
        """One trace's spans from the server's flight recorder (worker
        spans included — they ship back with each job result)."""
        if not tracing.tracing_enabled():
            return (
                404,
                {"error": "tracing is off (set REPRO_TRACE=1)"},
                [],
            )
        spans = tracing.recorder.find(trace_id)
        if not spans:
            return 404, {"error": f"unknown trace {trace_id!r}"}, []
        spans.sort(key=lambda s: s.start)
        return (
            200,
            {
                "trace_id": spans[0].trace_id,
                "spans": [span.as_dict() for span in spans],
            },
            [],
        )

    def _wait_seconds(self, query: dict) -> float:
        try:
            wait = float(query.get("wait", ["0"])[0])
        except ValueError:
            return 0.0
        return max(0.0, min(wait, self.max_wait))

    @staticmethod
    def _parse_body(body: bytes) -> object:
        if not body:
            raise ValidationError(["empty request body"])
        try:
            return json.loads(body)
        except ValueError:
            raise ValidationError(["request body is not valid JSON"]) from None

    async def _await_record(self, record, wait: float) -> None:
        if wait <= 0 or record.status in ("done", "failed"):
            return
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        if not self.scheduler.register_waiter(record, loop, event):
            return
        try:
            await asyncio.wait_for(event.wait(), wait)
        except asyncio.TimeoutError:
            pass

    def _record_response(
        self, record, disposition: str
    ) -> tuple[int, dict, list[tuple[str, str]]]:
        payload = record.to_dict()
        payload["disposition"] = disposition
        return (200 if record.status in ("done", "failed") else 202), payload, []

    async def _submit_one(
        self, body: bytes, query: dict
    ) -> tuple[int, dict, list[tuple[str, str]]]:
        registry = self.scheduler.registry
        try:
            record, disposition = self.scheduler.submit(self._parse_body(body))
        except ValidationError as exc:
            registry.inc("service.jobs_invalid")
            return 400, {"error": "invalid job", "details": exc.errors}, []
        except QueueFull as exc:
            retry = max(1, round(exc.retry_after))
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                [("Retry-After", str(retry))],
            )
        except Draining:
            return (
                503,
                {"error": "service is draining"},
                [("Retry-After", "1")],
            )
        except FaultInjected as exc:
            registry.inc("service.queue_faults")
            return (
                503,
                {"error": f"transient queue failure: {exc}"},
                [("Retry-After", "1")],
            )
        await self._await_record(record, self._wait_seconds(query))
        return self._record_response(record, disposition)

    async def _submit_batch(
        self, body: bytes
    ) -> tuple[int, dict, list[tuple[str, str]]]:
        try:
            payload = self._parse_body(body)
        except ValidationError as exc:
            return 400, {"error": "invalid batch", "details": exc.errors}, []
        if not isinstance(payload, dict) or not isinstance(
            payload.get("jobs"), list
        ):
            return 400, {"error": "batch body must be {'jobs': [...]}"}, []
        items: list[dict] = []
        accepted = 0
        for spec in payload["jobs"]:
            try:
                record, disposition = self.scheduler.submit(spec)
            except ValidationError as exc:
                items.append({"accepted": False, "details": exc.errors})
            except QueueFull as exc:
                items.append(
                    {
                        "accepted": False,
                        "details": [str(exc)],
                        "retry_after": exc.retry_after,
                    }
                )
            except (Draining, FaultInjected) as exc:
                items.append({"accepted": False, "details": [str(exc)]})
            else:
                accepted += 1
                items.append(
                    {
                        "accepted": True,
                        "id": record.id,
                        "status": record.status,
                        "disposition": disposition,
                    }
                )
        return 200, {"jobs": items, "accepted": accepted}, []

    async def _poll(
        self, job_id: str, query: dict
    ) -> tuple[int, dict, list[tuple[str, str]]]:
        record = self.scheduler.get(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}, []
        await self._await_record(record, self._wait_seconds(query))
        return self._record_response(record, "poll")


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int | None = None,
    max_queue: int = 64,
    job_timeout: float | None = None,
    retries: int = 2,
    drain_timeout: float = 30.0,
    start_method: str | None = None,
    quiet: bool = False,
    name: str = "",
) -> int:
    """Build the pool + scheduler + server and serve until a signal.

    The blocking entry point behind ``repro serve``.
    """
    from repro.sim.batch import _run_job
    from repro.sim.supervisor import SupervisorConfig, WorkerPool

    tracing.set_process_role("server")
    pool = WorkerPool(
        _run_job,
        processes=workers,
        config=SupervisorConfig(
            timeout=job_timeout,
            max_attempts=max(1, retries + 1),
            poll_interval=0.01,
        ),
        requested_start_method=start_method,
    )
    scheduler = JobScheduler(pool, max_queue=max_queue, name=name)
    server = ServiceServer(scheduler, host=host, port=port)

    async def main() -> None:
        actual = await server.start()
        if not quiet:
            info = pool.info()
            mode = (
                "serial (in-process)"
                if info["serial"]
                else f"{info['processes']} worker process(es)"
            )
            label = f"repro service {name}" if name else "repro service"
            print(
                f"{label} listening on http://{server.host}:{actual} "
                f"— {mode}, queue bound {max_queue}",
                file=sys.stderr,
            )
        await server.run(drain_timeout=drain_timeout)
        if not quiet:
            print("repro service drained and stopped.", file=sys.stderr)

    asyncio.run(main())
    return 0
