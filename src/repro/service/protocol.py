"""Wire schema and request validation for the simulation service.

A job request is a JSON object naming a cell of the design-space grid
the paper explores (benchmark x machine x scheme, plus the compiler
variant and trace knobs).  :func:`validate_job` turns one into the
canonical :class:`~repro.sim.batch.SimJob` — or raises
:class:`ValidationError` listing *every* problem, so a client fixes a
bad request in one round trip.

Validation is the service's admission gate into ``repro.check``: names
must resolve against the benchmark/machine/scheme registries, numeric
knobs must be inside the bounds the simulator supports, and the resolved
machine configuration is linted with
:func:`repro.check.config.check_config` (memoised per machine — presets
always pass, but the gate keeps a future user-supplied config from
reaching a worker unchecked).
"""

from __future__ import annotations

from functools import lru_cache

from repro.check.config import check_config
from repro.fetch.factory import ALL_SCHEMES
from repro.machines.presets import MACHINES, get_machine
from repro.sim.batch import SimJob
from repro.sim.supervisor import SweepJournal
from repro.workloads.profiles import ALL_BENCHMARKS

#: Program variants the compiler subsystem produces.
VARIANTS = ("orig", "reordered", "pad_all", "pad_trace")

#: Trace-length ceiling per request: admission control for one job's
#: cost, not a simulator limit (sweeps go longer via the CLI).
MAX_LENGTH = 2_000_000

#: Optional trace-context payload field: a W3C ``traceparent`` string
#: joining the job's server-side spans to the client's trace.  It is
#: *not* a job field — :func:`extract_traceparent` pops it before
#: validation so trace context can never reach :class:`SimJob` (whose
#: dict is the coalescing key, the journal key and the cache key).
TRACEPARENT_FIELD = "traceparent"

#: Payload keys :func:`validate_job` understands.
FIELDS = (
    "benchmark",
    "machine",
    "scheme",
    "variant",
    "length",
    "warmup",
    "seed",
    "fetch_penalty",
    "block_words",
    "telemetry",
    "kernel",
)


def extract_traceparent(payload: object) -> str | None:
    """Pop the optional ``traceparent`` field off a request payload.

    Returns the raw string (or ``None``); the field is *removed* so the
    remaining payload is purely the job description.  Call before
    :func:`validate_job`.
    """
    if isinstance(payload, dict):
        value = payload.pop(TRACEPARENT_FIELD, None)
        if isinstance(value, str) and value:
            return value
    return None


class ValidationError(ValueError):
    """A job request that must not be admitted; lists every finding."""

    def __init__(self, errors: list[str]):
        super().__init__("; ".join(errors))
        self.errors = list(errors)


@lru_cache(maxsize=None)
def _machine_check_errors(name: str) -> tuple[str, ...]:
    """`repro.check` findings for a machine preset (memoised)."""
    return tuple(
        str(finding) for finding in check_config(get_machine(name))
    )


def _int_field(
    payload: dict,
    name: str,
    default: int,
    low: int,
    high: int,
    errors: list[str],
) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append(f"{name} must be an integer")
        return default
    if not low <= value <= high:
        errors.append(f"{name} must be in [{low}, {high}], got {value}")
        return default
    return value


def validate_job(payload: object) -> SimJob:
    """Validate one request payload into a :class:`SimJob`.

    Raises :class:`ValidationError` carrying every finding; a job this
    returns is safe to hand to the worker engine.
    """
    if not isinstance(payload, dict):
        raise ValidationError(["job must be a JSON object"])
    errors: list[str] = []
    for key in payload:
        if key not in FIELDS:
            errors.append(
                f"unknown field {key!r} (known: {', '.join(FIELDS)})"
            )

    benchmark = payload.get("benchmark")
    if benchmark not in ALL_BENCHMARKS:
        errors.append(
            f"unknown benchmark {benchmark!r} "
            f"(known: {', '.join(ALL_BENCHMARKS)})"
        )
    machine = payload.get("machine")
    machine_names = tuple(m.name for m in MACHINES)
    if machine not in machine_names:
        errors.append(
            f"unknown machine {machine!r} (known: {', '.join(machine_names)})"
        )
    else:
        errors.extend(_machine_check_errors(machine))
    scheme = payload.get("scheme")
    if scheme not in ALL_SCHEMES:
        errors.append(
            f"unknown scheme {scheme!r} (known: {', '.join(ALL_SCHEMES)})"
        )
    variant = payload.get("variant", "orig")
    if variant not in VARIANTS:
        errors.append(
            f"unknown variant {variant!r} (known: {', '.join(VARIANTS)})"
        )

    length = _int_field(payload, "length", 20_000, 100, MAX_LENGTH, errors)
    warmup = _int_field(payload, "warmup", 4_000, 0, MAX_LENGTH, errors)
    if warmup >= length:
        errors.append(f"warmup ({warmup}) must be smaller than length ({length})")
    seed = _int_field(payload, "seed", 0, 0, 2**31 - 1, errors)
    block_words = _int_field(payload, "block_words", 4, 1, 64, errors)
    fetch_penalty = payload.get("fetch_penalty")
    if fetch_penalty is not None:
        fetch_penalty = _int_field(
            payload, "fetch_penalty", 0, 0, 100, errors
        )
    telemetry = payload.get("telemetry", False)
    if not isinstance(telemetry, bool):
        errors.append("telemetry must be a boolean")
        telemetry = False
    kernel = payload.get("kernel")
    if kernel is not None and not isinstance(kernel, bool):
        errors.append("kernel must be a boolean or null")
        kernel = None

    if errors:
        raise ValidationError(errors)
    return SimJob(
        benchmark=benchmark,
        machine=machine,
        scheme=scheme,
        variant=variant,
        length=length,
        warmup=warmup,
        seed=seed,
        fetch_penalty=fetch_penalty,
        block_words=block_words,
        telemetry=telemetry,
        kernel=kernel,
    )


def job_key(job: SimJob) -> str:
    """Canonical coalescing key of a job (the sweep-journal key, so the
    service, the journal and the result cache all agree on identity)."""
    return SweepJournal.job_key(job)
