"""The front balancer for a multi-replica cluster: ``repro balance``.

One asyncio process sits in front of N ``repro serve`` replicas and
keeps the cluster's contract — *every request completes, bit-identical
to a single-replica run* — through replica crashes, hangs and slow
decay.  Stdlib only, like everything else in the service tier.

Routing
  Job submissions are routed by **consistent hashing on the job key**
  (:func:`repro.service.protocol.job_key`), so identical concurrent
  specs land on the same replica and its scheduler still coalesces them
  — sharding does not forfeit the single-flight win.  The hash ring's
  clockwise successor list doubles as the **failover order**.  On top of
  that sits a power-of-two-choices check: when the ring owner's observed
  load (balancer in-flight + last probed queue depth) exceeds its first
  successor's by :data:`SPILL_THRESHOLD`, the request spills to the
  successor — bounded load imbalance at the cost of one coalescing
  domain.  Polls (``GET /v1/jobs/<id>``) route by the job-id's replica
  prefix (``r2-job-000017`` → replica ``r2``): job records live in
  replica memory, so only the owner can answer.

Health
  Replicas are *health-gated*: a replica serves traffic only while
  ``healthy``.  Detection is both **active** — a probe loop GETs each
  replica's ``/readyz`` every ``REPRO_BALANCE_PROBE_INTERVAL`` seconds
  and folds the reported queue depth into routing — and **passive** —
  every proxied request updates an EWMA of latency and a consecutive
  -error count.  ``REPRO_BALANCE_EJECT_ERRORS`` consecutive failures or
  an EWMA above ``REPRO_BALANCE_EJECT_LATENCY`` **ejects** the replica:
  it leaves the routable set and waits out a cooldown that doubles with
  each successive ejection.  After cooldown the replica turns
  ``half_open`` and one successful probe — and nothing else — promotes
  it back to ``healthy`` (a *recovery*); a failed trial re-ejects it.

Retries
  Failed tries (connection errors, per-try timeouts, 5xx/429/503) fail
  over to the next replica in the ring's preference order, under a
  **retry budget**: retries may not exceed ``REPRO_BALANCE_RETRY_BUDGET``
  as a fraction of requests seen, so a brown-out cannot amplify load
  into a retry storm.  Every try is bounded by a per-try timeout of
  ``REPRO_BALANCE_TRY_TIMEOUT`` seconds (stretched to cover an explicit
  ``?wait=`` long-poll).  Replaying a submission on another replica is
  safe because jobs are idempotent — deterministic simulations keyed by
  their canonical spec.

Observability
  With ``REPRO_TRACE=1`` each proxied request is a ``balance.request``
  span (joining the client's ``traceparent``) with one ``balance.try``
  child per upstream attempt carrying ``replica``, ``retry.attempt``
  and — when the try got its replica ejected — ``ejected=True``.
  ``/metrics`` exposes the balancer's counters (``balance.requests``,
  ``balance.retries``, ``balance.ejections``, ``balance.recoveries``,
  ...) plus a per-replica state table; ``/healthz`` and ``/readyz``
  report the balancer itself (ready iff at least one replica is).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro import knobs
from repro.hashring import ConsistentRing
from repro.service.protocol import ValidationError, job_key, validate_job
from repro.service.server import MAX_BODY_BYTES, ServiceServer
from repro.telemetry import MetricsRegistry
from repro.telemetry import trace as tracing
from repro.telemetry.export import to_prometheus

#: Queue-depth lead the ring owner may hold over its first successor
#: before a submission spills to the successor (power-of-two choice).
SPILL_THRESHOLD = 4

#: Base ejection cooldown (seconds); doubles per successive ejection.
BASE_COOLDOWN = 1.0
MAX_COOLDOWN = 30.0

#: Timeout for one active ``/readyz`` probe.
PROBE_TIMEOUT = 2.0

#: EWMA smoothing factor for passive latency detection.
EWMA_ALPHA = 0.2

#: Floor on the request count in the retry-budget ratio, so the first
#: few requests can still retry before the denominator means anything.
BUDGET_FLOOR = 10


@dataclass
class ReplicaState:
    """What the balancer knows about one backend replica."""

    name: str
    host: str
    port: int
    state: str = "healthy"  # healthy | ejected | half_open
    consecutive_errors: int = 0
    ewma_latency: float = 0.0
    inflight: int = 0  # balancer-side proxied requests in flight
    queue_depth: int = 0  # last probed scheduler queue depth
    ready: bool = False  # last probed readiness
    ejections: int = 0
    recoveries: int = 0
    ejected_until: float = 0.0
    last_error: str = ""

    @property
    def routable(self) -> bool:
        return self.state == "healthy"

    @property
    def load(self) -> int:
        return self.inflight + self.queue_depth

    def record_success(self, latency: float) -> None:
        """Passive detection: a proxied request succeeded."""
        self.consecutive_errors = 0
        self.ewma_latency = (
            latency
            if self.ewma_latency == 0.0
            else (1 - EWMA_ALPHA) * self.ewma_latency + EWMA_ALPHA * latency
        )

    def record_failure(self, reason: str) -> None:
        """Passive detection: a proxied request failed (absorbed by the
        failover loop — this counter *is* the required telemetry)."""
        self.consecutive_errors += 1
        self.last_error = reason

    def should_eject(self) -> str | None:
        """Reason to eject now, or ``None``."""
        if self.consecutive_errors >= max(
            1, knobs.get_int("REPRO_BALANCE_EJECT_ERRORS")
        ):
            return "consecutive_errors"
        ceiling = knobs.get_float("REPRO_BALANCE_EJECT_LATENCY")
        if ceiling > 0 and self.ewma_latency > ceiling:
            return "ewma_latency"
        return None

    def eject(self, now: float, reason: str) -> None:
        self.ejections += 1
        cooldown = min(
            MAX_COOLDOWN, BASE_COOLDOWN * (2 ** min(self.ejections - 1, 10))
        )
        self.state = "ejected"
        self.ejected_until = now + cooldown
        self.last_error = reason
        self.ready = False

    def recover(self) -> None:
        self.state = "healthy"
        self.ready = True
        self.consecutive_errors = 0
        self.ewma_latency = 0.0
        self.recoveries += 1

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "state": self.state,
            "ready": self.ready,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "consecutive_errors": self.consecutive_errors,
            "ewma_latency": round(self.ewma_latency, 6),
            "ejections": self.ejections,
            "recoveries": self.recoveries,
            "last_error": self.last_error,
        }


class NoReplicaAvailable(RuntimeError):
    """Every candidate replica is ejected or exhausted."""


@dataclass
class _Upstream:
    """A pooled keep-alive connection to one replica."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter


class Balancer:
    """The front proxy: routing, health gating, budgeted failover."""

    def __init__(
        self,
        replicas: list[ReplicaState],
        host: str = "127.0.0.1",
        port: int = 8100,
        idle_timeout: float = 120.0,
    ) -> None:
        if not replicas:
            raise ValueError("balancer needs at least one replica")
        self.replicas = {r.name: r for r in replicas}
        self.ring = ConsistentRing([r.name for r in replicas])
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.registry = MetricsRegistry()
        self.started = time.time()
        #: Optional :class:`~repro.service.cluster.ClusterManager` — set
        #: by ``run_cluster`` so /metrics can expose respawn counters.
        self.cluster = None
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._pools: dict[str, list[_Upstream]] = {}
        self._requests_seen = 0
        self._retries_spent = 0

    # lifecycle -------------------------------------------------------------

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def run(self) -> None:
        """Serve (with the probe loop) until :meth:`request_shutdown`."""
        if self._server is None:
            await self.start()
        probe = asyncio.create_task(self._probe_loop())
        try:
            await self._shutdown.wait()
        finally:
            probe.cancel()
            await asyncio.gather(probe, return_exceptions=True)
            await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for pool in self._pools.values():
            for upstream in pool:
                upstream.writer.close()
        self._pools.clear()
        self._shutdown.set()

    # health ----------------------------------------------------------------

    async def _probe_loop(self) -> None:
        interval = max(0.05, knobs.get_float("REPRO_BALANCE_PROBE_INTERVAL"))
        while True:
            await asyncio.gather(
                *(self._probe_replica(r) for r in self.replicas.values()),
                return_exceptions=True,
            )
            await asyncio.sleep(interval)

    async def _probe_replica(self, replica: ReplicaState) -> None:
        now = time.monotonic()
        if replica.state == "ejected":
            if now < replica.ejected_until:
                return
            # Cooldown over: half-open — this one probe is the trial.
            replica.state = "half_open"
        try:
            status, payload, _headers = await self._roundtrip(
                replica, "GET", "/readyz", None, {}, PROBE_TIMEOUT
            )
        except (OSError, asyncio.TimeoutError) as exc:
            # Probe failures are absorbed here by design; the replica
            # table and the ejection counters are their telemetry.
            replica.record_failure(f"probe: {type(exc).__name__}")
            self._note_probe_failure(replica, now)
            return
        ready = bool(
            isinstance(payload, dict) and payload.get("ready")
        ) and status == 200
        if isinstance(payload, dict):
            depth = payload.get("queue_depth")
            if isinstance(depth, int):
                replica.queue_depth = depth
        if ready:
            if replica.state in ("half_open", "ejected"):
                replica.recover()
                self.registry.inc("balance.recoveries")
                self._event_span("balance.recover", replica.name)
            else:
                replica.ready = True
                replica.consecutive_errors = 0
        else:
            replica.record_failure(f"not ready (HTTP {status})")
            self._note_probe_failure(replica, now)

    def _note_probe_failure(self, replica: ReplicaState, now: float) -> None:
        if replica.state == "half_open":
            # Failed trial: straight back to ejected, longer cooldown.
            replica.eject(now, "half_open trial failed")
            self.registry.inc("balance.ejections")
            self._event_span("balance.eject", replica.name)
        elif replica.state == "healthy":
            replica.ready = False
            reason = replica.should_eject()
            if reason is not None:
                replica.eject(now, reason)
                self.registry.inc("balance.ejections")
                self._event_span("balance.eject", replica.name)

    def _event_span(self, name: str, replica: str) -> None:
        now = time.time()
        tracing.record_span(name, None, now, now, replica=replica)

    # upstream transport ----------------------------------------------------

    async def _checkout(self, replica: ReplicaState) -> _Upstream:
        pool = self._pools.setdefault(replica.name, [])
        while pool:
            upstream = pool.pop()
            if not upstream.writer.is_closing():
                return upstream
            upstream.writer.close()
        reader, writer = await asyncio.open_connection(
            replica.host, replica.port
        )
        return _Upstream(reader, writer)

    def _checkin(self, replica: ReplicaState, upstream: _Upstream) -> None:
        if upstream.writer.is_closing():
            return
        self._pools.setdefault(replica.name, []).append(upstream)

    async def _roundtrip(
        self,
        replica: ReplicaState,
        method: str,
        target: str,
        body: bytes | None,
        headers: dict[str, str],
        timeout: float,
    ) -> tuple[int, object, dict[str, str]]:
        """One HTTP request/response against a replica (pooled, bounded
        by *timeout*).  Raises ``OSError``/``asyncio.TimeoutError`` on
        transport trouble; HTTP status codes come back as data."""
        upstream = await self._checkout(replica)
        try:
            status, payload, resp_headers = await asyncio.wait_for(
                self._roundtrip_inner(
                    upstream, replica, method, target, body, headers
                ),
                timeout,
            )
        except BaseException:
            # Poisoned mid-exchange (timeout included): never reuse.
            upstream.writer.close()
            raise
        if resp_headers.get("connection", "").lower() == "close":
            upstream.writer.close()
        else:
            self._checkin(replica, upstream)
        return status, payload, resp_headers

    @staticmethod
    async def _roundtrip_inner(
        upstream: _Upstream,
        replica: ReplicaState,
        method: str,
        target: str,
        body: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, object, dict[str, str]]:
        head = [
            f"{method} {target} HTTP/1.1",
            f"Host: {replica.host}:{replica.port}",
        ]
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        if body:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        upstream.writer.write("\r\n".join(head).encode() + b"\r\n\r\n")
        if body:
            upstream.writer.write(body)
        await upstream.writer.drain()

        line = await upstream.reader.readline()
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line from {replica.name}")
        status = int(parts[1])
        resp_headers = await ServiceServer._read_headers(upstream.reader)
        if resp_headers is None:
            raise ConnectionError(f"truncated response from {replica.name}")
        length = int(resp_headers.get("content-length", "0") or 0)
        data = await upstream.reader.readexactly(length) if length else b""
        try:
            payload = json.loads(data) if data else None
        except ValueError:
            payload = {"raw": data.decode("latin-1", "replace")}
        return status, payload, resp_headers

    # routing ---------------------------------------------------------------

    def _routable(self) -> list[ReplicaState]:
        return [r for r in self.replicas.values() if r.routable]

    def _preference(self, key: str) -> list[ReplicaState]:
        """Failover order for a job key: ring order, healthy first, with
        the power-of-two spill applied to the front pair."""
        ranked = [
            self.replicas[name]
            for name in self.ring.preference(key)
            if self.replicas[name].routable
        ]
        if len(ranked) >= 2 and ranked[0].load > ranked[1].load + SPILL_THRESHOLD:
            self.registry.inc("balance.spills")
            ranked[0], ranked[1] = ranked[1], ranked[0]
        return ranked

    def _may_retry(self) -> bool:
        budget = knobs.get_float("REPRO_BALANCE_RETRY_BUDGET")
        allowed = budget * max(BUDGET_FLOOR, self._requests_seen)
        return self._retries_spent < allowed

    def _try_timeout(self, query: dict) -> float:
        base = max(0.1, knobs.get_float("REPRO_BALANCE_TRY_TIMEOUT"))
        try:
            wait = float(query.get("wait", ["0"])[0])
        except ValueError:
            wait = 0.0
        # A long-poll legitimately holds the connection for ?wait=
        # seconds; the per-try timeout must cover it plus slack.
        return max(base, wait + 2.0)

    async def _forward_with_failover(
        self,
        candidates: list[ReplicaState],
        method: str,
        target: str,
        body: bytes | None,
        headers: dict[str, str],
        timeout: float,
        parent,
    ) -> tuple[int, object, dict[str, str], ReplicaState, int]:
        """Try each candidate in order; returns the first usable HTTP
        answer plus the replica that produced it and attempts spent.

        Transport errors, per-try timeouts and retryable statuses (429,
        503, 5xx) fail over to the next candidate — when the retry
        budget allows — and feed passive health detection.  Raises
        :class:`NoReplicaAvailable` when everything is exhausted."""
        last: tuple[int, object, dict[str, str], ReplicaState] | None = None
        attempts = 0
        for index, replica in enumerate(candidates):
            if index > 0:
                if not self._may_retry():
                    self.registry.inc("balance.budget_exhausted")
                    break
                self._retries_spent += 1
                self.registry.inc("balance.retries")
                self.registry.inc("balance.failovers")
            attempts += 1
            replica.inflight += 1
            started = time.monotonic()
            sp = tracing.start_span(
                "balance.try",
                parent=parent,
                replica=replica.name,
                **{"retry.attempt": attempts},
            )
            try:
                status, payload, resp_headers = await self._roundtrip(
                    replica, method, target, body, headers, timeout
                )
            except (OSError, asyncio.TimeoutError) as exc:
                # The failover loop absorbs the error; record_failure
                # and the balancer counters keep it observable.
                replica.record_failure(type(exc).__name__)
                self.registry.inc("balance.upstream_errors")
                self._maybe_eject(replica, sp)
                sp.set(error=type(exc).__name__)
                sp.end()
                continue
            finally:
                replica.inflight -= 1
            latency = time.monotonic() - started
            if status in (429, 503) or status >= 500:
                replica.record_failure(f"HTTP {status}")
                self._maybe_eject(replica, sp)
                sp.set(status=status)
                sp.end()
                last = (status, payload, resp_headers, replica)
                continue
            replica.record_success(latency)
            sp.set(status=status)
            sp.end()
            return status, payload, resp_headers, replica, attempts
        if last is not None:
            status, payload, resp_headers, replica = last
            return status, payload, resp_headers, replica, attempts
        raise NoReplicaAvailable("no healthy replica answered")

    def _maybe_eject(self, replica: ReplicaState, sp) -> None:
        if not replica.routable:
            return
        reason = replica.should_eject()
        if reason is not None:
            replica.eject(time.monotonic(), reason)
            self.registry.inc("balance.ejections")
            self._event_span("balance.eject", replica.name)
            sp.set(ejected=True)

    # request handling ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break
                if not line.strip():
                    if not line:
                        break
                    continue
                parts = line.decode("latin-1").split()
                if len(parts) != 3:
                    await ServiceServer._respond(
                        writer, 400, {"error": "bad request line"}
                    )
                    break
                method, target, version = parts
                headers = await ServiceServer._read_headers(reader)
                if headers is None:
                    break
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    await ServiceServer._respond(
                        writer, 400, {"error": "body too large"}
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload, extra = await self._route(
                        method.upper(), target, body, headers
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    status, payload, extra = (
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        [],
                    )
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version == "HTTP/1.0"
                )
                await ServiceServer._respond(
                    writer, status, payload, extra, close
                )
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            # A torn client connection ends this keep-alive session only;
            # the counter keeps churn visible in the balancer's /metrics.
            self.registry.inc("balance.connection_errors")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _route(
        self, method: str, target: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, object, list[tuple[str, str]]]:
        if not tracing.tracing_enabled():
            return await self._route_inner(method, target, body, headers)
        parent = tracing.parse_traceparent(headers.get("traceparent"))
        with tracing.span(
            "balance.request",
            parent=parent,
            method=method,
            path=urlsplit(target).path,
        ) as sp:
            status, payload, extra = await self._route_inner(
                method, target, body, headers, sp.span
            )
            sp.set(status=status)
            echo = sp.traceparent()
            if echo:
                extra = list(extra) + [("traceparent", echo)]
            return status, payload, extra

    async def _route_inner(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str],
        parent=None,
    ) -> tuple[int, object, list[tuple[str, str]]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        self.registry.inc("balance.http_requests")

        if path == "/healthz" and method == "GET":
            return 200, self._health(), []
        if path == "/readyz" and method == "GET":
            ready = any(r.routable and r.ready for r in self.replicas.values())
            return (200 if ready else 503), {
                "ready": ready,
                "role": "balancer",
                "replicas": {
                    name: r.state for name, r in self.replicas.items()
                },
            }, []
        if path == "/metrics" and method == "GET":
            tree = self._metrics()
            if ServiceServer._wants_prometheus(query, headers):
                return 200, to_prometheus(tree), []
            return 200, tree, []
        if path == "/v1/jobs" and method == "POST":
            return await self._submit(target, body, headers, query, parent)
        if path.startswith("/v1/jobs/") and method == "GET":
            return await self._poll(
                path[len("/v1/jobs/"):], target, headers, query, parent
            )
        if path in ("/v1/jobs", "/v1/batch", "/v1/traces") or path.startswith(
            "/v1/traces/"
        ):
            # Listings, batches and trace lookups go to any live replica.
            return await self._proxy_any(method, target, body, headers, parent)
        return 404, {"error": f"no route for {path}"}, []

    def _health(self) -> dict:
        return {
            "status": "ok" if self._routable() else "degraded",
            "role": "balancer",
            "uptime_seconds": round(time.time() - self.started, 3),
            "replicas": [r.as_dict() for r in self.replicas.values()],
        }

    def _metrics(self) -> dict:
        return {
            "balancer": self.registry.as_dict(),
            "retry_budget": {
                "requests_seen": self._requests_seen,
                "retries_spent": self._retries_spent,
                "ratio": knobs.get_float("REPRO_BALANCE_RETRY_BUDGET"),
            },
            "replicas": [r.as_dict() for r in self.replicas.values()],
            **(
                {"cluster": self.cluster.info()}
                if self.cluster is not None
                else {}
            ),
        }

    def _forward_headers(self, headers: dict[str, str]) -> dict[str, str]:
        out = {}
        traceparent = headers.get("traceparent")
        if traceparent:
            out["traceparent"] = traceparent
        return out

    async def _submit(
        self,
        target: str,
        body: bytes,
        headers: dict[str, str],
        query: dict,
        parent,
    ) -> tuple[int, object, list[tuple[str, str]]]:
        self._requests_seen += 1
        self.registry.inc("balance.requests")
        try:
            spec = json.loads(body) if body else None
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}, []
        # Validate a *copy* for routing: extract_traceparent pops the
        # traceparent field, and the original body must be forwarded
        # byte-for-byte so the replica sees exactly what the client sent.
        try:
            probe = dict(spec) if isinstance(spec, dict) else spec
            if isinstance(probe, dict):
                probe.pop("traceparent", None)
            key = job_key(validate_job(probe))
        except ValidationError as exc:
            self.registry.inc("balance.validation_rejects")
            return 400, {"error": "invalid job", "details": exc.errors}, []
        candidates = self._preference(key)
        if not candidates:
            self.registry.inc("balance.no_replica")
            return (
                503,
                {"error": "no healthy replica available"},
                [("Retry-After", "1")],
            )
        try:
            status, payload, _resp, replica, attempts = (
                await self._forward_with_failover(
                    candidates,
                    "POST",
                    target,
                    body,
                    self._forward_headers(headers),
                    self._try_timeout(query),
                    parent,
                )
            )
        except NoReplicaAvailable:
            self.registry.inc("balance.no_replica")
            return (
                503,
                {"error": "no healthy replica answered"},
                [("Retry-After", "1")],
            )
        if isinstance(payload, dict):
            payload["balancer"] = {
                "replica": replica.name,
                "attempts": attempts,
                "rerouted": attempts > 1,
            }
        return status, payload, []

    async def _poll(
        self,
        job_id: str,
        target: str,
        headers: dict[str, str],
        query: dict,
        parent,
    ) -> tuple[int, object, list[tuple[str, str]]]:
        self._requests_seen += 1
        self.registry.inc("balance.polls")
        owner, _, _ = job_id.partition("-job-")
        replica = self.replicas.get(owner)
        if replica is None or not replica.routable:
            # The owning replica is gone (or unknown id shape): its
            # in-memory record is unreachable.  404 tells the client to
            # reroute — resubmit the idempotent job elsewhere.
            self.registry.inc("balance.jobs_lost")
            return (
                404,
                {"error": f"job {job_id!r} unreachable", "lost": True},
                [],
            )
        sp = tracing.start_span(
            "balance.try",
            parent=parent,
            replica=replica.name,
            **{"retry.attempt": 1},
        )
        replica.inflight += 1
        started = time.monotonic()
        try:
            status, payload, _resp = await self._roundtrip(
                replica,
                "GET",
                target,
                None,
                self._forward_headers(headers),
                self._try_timeout(query),
            )
        except (OSError, asyncio.TimeoutError) as exc:
            # Absorbed by design: the 404 turns into a client-side
            # reroute; record_failure keeps the event observable.
            replica.record_failure(type(exc).__name__)
            self.registry.inc("balance.upstream_errors")
            self._maybe_eject(replica, sp)
            sp.set(error=type(exc).__name__)
            sp.end()
            self.registry.inc("balance.jobs_lost")
            return (
                404,
                {"error": f"job {job_id!r} unreachable", "lost": True},
                [],
            )
        finally:
            replica.inflight -= 1
        replica.record_success(time.monotonic() - started)
        sp.set(status=status)
        sp.end()
        return status, payload, []

    async def _proxy_any(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str],
        parent,
    ) -> tuple[int, object, list[tuple[str, str]]]:
        self._requests_seen += 1
        candidates = sorted(self._routable(), key=lambda r: r.load)
        if not candidates:
            return (
                503,
                {"error": "no healthy replica available"},
                [("Retry-After", "1")],
            )
        try:
            status, payload, _resp, _replica, _attempts = (
                await self._forward_with_failover(
                    candidates,
                    method,
                    target,
                    body or None,
                    self._forward_headers(headers),
                    self._try_timeout({}),
                    parent,
                )
            )
        except NoReplicaAvailable:
            return (
                503,
                {"error": "no healthy replica answered"},
                [("Retry-After", "1")],
            )
        return status, payload, []
