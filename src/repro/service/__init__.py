"""Simulation-as-a-service: async job server over the worker engine.

``repro serve`` starts a stdlib-only asyncio HTTP/JSON server that
validates requests with ``repro.check``, coalesces identical in-flight
requests (single flight), serves repeats from the persistent result
cache, applies bounded-queue admission control (HTTP 429 +
``Retry-After``), and drains gracefully on SIGTERM.  ``repro balance``
spawns N such replicas and fronts them with a fault-tolerant balancer
(consistent-hash routing, health-gated failover, budgeted retries —
see ``repro.service.balancer`` / ``repro.service.cluster``).
``repro loadgen`` benchmarks either.  See ``docs/service.md``.
"""

from repro.service.balancer import Balancer, ReplicaState
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.cluster import ClusterManager, run_cluster
from repro.service.loadgen import run_loadgen
from repro.service.protocol import ValidationError, job_key, validate_job
from repro.service.scheduler import Draining, JobScheduler, QueueFull
from repro.service.server import ServiceServer, serve

__all__ = [
    "Balancer",
    "ClusterManager",
    "Draining",
    "JobFailed",
    "JobScheduler",
    "QueueFull",
    "ReplicaState",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ValidationError",
    "job_key",
    "run_cluster",
    "run_loadgen",
    "serve",
    "validate_job",
]
