"""A small blocking client for the simulation service.

Built on :mod:`http.client` (stdlib, keep-alive) so scripts and the
load generator share one well-behaved access path:

* retries transient failures (connection errors, 429, 503) with
  exponential backoff, honoring the server's ``Retry-After`` header
  when present — but never past the caller's **total deadline budget**:
  every retry (and every ``Retry-After`` the server suggests) is
  clipped against the one deadline ``run_job`` was given, so failover
  retries can never stretch a request beyond what the caller allowed;
* ``run_job`` submits with ``?wait=`` long-polling and keeps polling
  past the server's per-request wait ceiling until the job is terminal,
  so callers never busy-loop;
* when a poll comes back 404 for a job this client submitted — the
  serving replica died and took its in-memory record with it —
  ``run_job`` *reroutes*: it resubmits the identical (idempotent) job,
  which a cluster balancer lands on a surviving replica.  The returned
  record carries ``attempts`` (HTTP attempts spent, retries included)
  and ``rerouted`` (how many such resubmissions happened) so callers
  and loadgen can see failover happening instead of inferring it.

With ``REPRO_TRACE=1`` the client opens a ``client.request`` span per
:meth:`~ServiceClient.run_job` (with ``client.submit``/``client.poll``
children per HTTP round trip), sends its ``traceparent`` header so the
server's spans join the same trace, and accumulates the
``server_seconds`` each response reports into
:attr:`~ServiceClient.last_run_server_seconds` — the number loadgen
subtracts from client latency to expose queueing/network time.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any

from repro.telemetry import MetricsRegistry
from repro.telemetry import trace as tracing

#: Client-side transport counters (connection errors swallowed by the
#: retry loop, reroutes after a lost job) — the telemetry the A023 lint
#: requires wherever a ``ConnectionError``/``OSError`` is absorbed.
CLIENT_METRICS = MetricsRegistry()


class ServiceError(RuntimeError):
    """A definitive (non-retryable) error response from the service."""

    def __init__(self, status: int, payload: Any):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class JobFailed(ServiceError):
    """The job was admitted but the simulation itself failed."""


@dataclass
class Response:
    status: int
    payload: Any
    headers: dict[str, str]


class ServiceClient:
    """Keep-alive HTTP client with retry/backoff for the repro service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 120.0,
        max_retries: int = 5,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._conn: http.client.HTTPConnection | None = None
        #: Total server-reported handling seconds across the HTTP
        #: requests of the most recent :meth:`run_job` call.
        self.last_run_server_seconds: float = 0.0
        #: Trace id of the most recent :meth:`run_job` (None untraced).
        self.last_trace_id: str | None = None
        #: HTTP attempts (retries included) of the most recent
        #: :meth:`run_job`, and how many times it rerouted a lost job.
        self.last_run_attempts: int = 0
        self.last_run_rerouted: int = 0

    # plumbing --------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(
        self, method: str, path: str, body: dict | None
    ) -> Response:
        conn = self._connection()
        payload = json.dumps(body).encode() if body is not None else None
        headers = {}
        if payload:
            headers["Content-Type"] = "application/json"
        traceparent = tracing.current_traceparent()
        if traceparent:
            headers["traceparent"] = traceparent
        try:
            conn.request(method, path, body=payload, headers=headers)
            raw = conn.getresponse()
            data = raw.read()
        except (http.client.HTTPException, OSError):
            # The connection is poisoned; rebuild it on retry.
            self.close()
            raise
        headers = {name.lower(): value for name, value in raw.getheaders()}
        try:
            decoded = json.loads(data) if data else None
        except ValueError:
            decoded = {"raw": data.decode("latin-1", "replace")}
        return Response(raw.status, decoded, headers)

    def _record_transport_error(self, exc: Exception) -> None:
        """Account a connection-level failure the retry loop absorbs."""
        CLIENT_METRICS.inc("client.transport_errors")
        CLIENT_METRICS.inc(f"client.transport_errors.{type(exc).__name__}")

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        deadline: float | None = None,
    ) -> Response:
        """One logical request: retries 429/503/connection errors with
        backoff (honoring ``Retry-After``); other statuses return as-is.

        *deadline* is an absolute ``time.monotonic()`` budget shared by
        every retry of the whole logical operation: once sleeping for
        the next attempt would cross it, the loop gives up with the last
        error instead — a server ``Retry-After`` can therefore delay a
        retry but never extend the caller's total wait.
        """
        delay = self.backoff
        last: Exception | None = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            try:
                response = self._request_once(method, path, body)
            except (http.client.HTTPException, OSError) as exc:
                self._record_transport_error(exc)
                last = exc
            else:
                if response.status not in (429, 503):
                    self.last_run_attempts += attempts
                    return response
                last = ServiceError(response.status, response.payload)
                retry_after = response.headers.get("retry-after")
                if retry_after is not None:
                    try:
                        delay = max(delay, float(retry_after))
                    except ValueError:
                        pass
            if attempt == self.max_retries:
                break
            sleep = min(delay, self.max_backoff)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or sleep > remaining:
                    break  # the budget is spent; don't start a doomed wait
            time.sleep(sleep)
            delay = min(delay * 2, self.max_backoff)
        self.last_run_attempts += attempts
        assert last is not None
        raise last if isinstance(last, ServiceError) else ServiceError(
            0, f"connection failed: {last}"
        )

    # high-level API --------------------------------------------------------

    def health(self) -> dict:
        return self._expect_ok(self.request("GET", "/healthz"))

    def metrics(self) -> dict:
        return self._expect_ok(self.request("GET", "/metrics"))

    def submit(
        self, job: dict, wait: float = 0.0, deadline: float | None = None
    ) -> dict:
        """Submit one job; returns the job record (maybe still running)."""
        path = "/v1/jobs" + (f"?wait={wait:g}" if wait > 0 else "")
        with tracing.span("client.submit"):
            response = self.request("POST", path, job, deadline=deadline)
        if response.status not in (200, 202):
            raise ServiceError(response.status, response.payload)
        return response.payload

    def poll(
        self, job_id: str, wait: float = 0.0, deadline: float | None = None
    ) -> dict:
        path = f"/v1/jobs/{job_id}" + (f"?wait={wait:g}" if wait > 0 else "")
        with tracing.span("client.poll"):
            response = self.request("GET", path, deadline=deadline)
        if response.status not in (200, 202):
            raise ServiceError(response.status, response.payload)
        return response.payload

    def submit_batch(self, jobs: list[dict]) -> dict:
        return self._expect_ok(
            self.request("POST", "/v1/batch", {"jobs": jobs})
        )

    def run_job(self, job: dict, wait: float = 30.0, deadline: float = 600.0) -> dict:
        """Submit and block until terminal; returns the ``done`` record.

        *deadline* is the **total budget in seconds** for the whole
        operation — submission retries, polls, backoff sleeps and
        reroutes all draw from it; no retry policy (the server's
        ``Retry-After`` included) can exceed it.  If the serving replica
        dies and a poll comes back 404 (its in-memory record is gone),
        the identical job is resubmitted — idempotent by construction —
        and the reroute is surfaced on the returned record
        (``rerouted``), alongside the HTTP ``attempts`` spent.

        Raises :class:`JobFailed` if the simulation failed, or
        :class:`ServiceError` on timeout/rejection.
        """
        self.last_run_server_seconds = 0.0
        self.last_trace_id = None
        self.last_run_attempts = 0
        self.last_run_rerouted = 0
        stop = time.monotonic() + deadline
        with tracing.span("client.request") as sp:
            if sp.span is not None:
                self.last_trace_id = sp.span.trace_id
            record = self.submit(job, wait=wait, deadline=stop)
            self._accumulate_server_seconds(record)
            while record["status"] == "running":
                if time.monotonic() > stop:
                    raise ServiceError(
                        202,
                        f"job {record['id']} still running after {deadline}s",
                    )
                try:
                    record = self.poll(record["id"], wait=wait, deadline=stop)
                except ServiceError as exc:
                    if exc.status != 404 or time.monotonic() > stop:
                        raise
                    # The replica holding this job died between our
                    # requests (balancer failover): its record is gone,
                    # but the job is idempotent — resubmit and land on a
                    # surviving replica.
                    CLIENT_METRICS.inc("client.rerouted_jobs")
                    self.last_run_rerouted += 1
                    if sp.span is not None:
                        sp.set(rerouted=self.last_run_rerouted)
                    record = self.submit(job, wait=wait, deadline=stop)
                self._accumulate_server_seconds(record)
        if record["status"] == "failed":
            raise JobFailed(200, record)
        record = dict(record)
        record["attempts"] = self.last_run_attempts
        record["rerouted"] = self.last_run_rerouted
        return record

    def _accumulate_server_seconds(self, record: dict) -> None:
        seconds = record.get("server_seconds")
        if isinstance(seconds, (int, float)):
            self.last_run_server_seconds += float(seconds)

    @staticmethod
    def _expect_ok(response: Response) -> dict:
        if response.status != 200:
            raise ServiceError(response.status, response.payload)
        return response.payload
