"""A small blocking client for the simulation service.

Built on :mod:`http.client` (stdlib, keep-alive) so scripts and the
load generator share one well-behaved access path:

* retries transient failures (connection errors, 429, 503) with
  exponential backoff, honoring the server's ``Retry-After`` header
  when present;
* ``run_job`` submits with ``?wait=`` long-polling and keeps polling
  past the server's per-request wait ceiling until the job is terminal,
  so callers never busy-loop.

With ``REPRO_TRACE=1`` the client opens a ``client.request`` span per
:meth:`~ServiceClient.run_job` (with ``client.submit``/``client.poll``
children per HTTP round trip), sends its ``traceparent`` header so the
server's spans join the same trace, and accumulates the
``server_seconds`` each response reports into
:attr:`~ServiceClient.last_run_server_seconds` — the number loadgen
subtracts from client latency to expose queueing/network time.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any

from repro.telemetry import trace as tracing


class ServiceError(RuntimeError):
    """A definitive (non-retryable) error response from the service."""

    def __init__(self, status: int, payload: Any):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class JobFailed(ServiceError):
    """The job was admitted but the simulation itself failed."""


@dataclass
class Response:
    status: int
    payload: Any
    headers: dict[str, str]


class ServiceClient:
    """Keep-alive HTTP client with retry/backoff for the repro service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 120.0,
        max_retries: int = 5,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._conn: http.client.HTTPConnection | None = None
        #: Total server-reported handling seconds across the HTTP
        #: requests of the most recent :meth:`run_job` call.
        self.last_run_server_seconds: float = 0.0
        #: Trace id of the most recent :meth:`run_job` (None untraced).
        self.last_trace_id: str | None = None

    # plumbing --------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(
        self, method: str, path: str, body: dict | None
    ) -> Response:
        conn = self._connection()
        payload = json.dumps(body).encode() if body is not None else None
        headers = {}
        if payload:
            headers["Content-Type"] = "application/json"
        traceparent = tracing.current_traceparent()
        if traceparent:
            headers["traceparent"] = traceparent
        try:
            conn.request(method, path, body=payload, headers=headers)
            raw = conn.getresponse()
            data = raw.read()
        except (http.client.HTTPException, OSError):
            # The connection is poisoned; rebuild it on retry.
            self.close()
            raise
        headers = {name.lower(): value for name, value in raw.getheaders()}
        try:
            decoded = json.loads(data) if data else None
        except ValueError:
            decoded = {"raw": data.decode("latin-1", "replace")}
        return Response(raw.status, decoded, headers)

    def request(self, method: str, path: str, body: dict | None = None) -> Response:
        """One logical request: retries 429/503/connection errors with
        backoff (honoring ``Retry-After``); other statuses return as-is."""
        delay = self.backoff
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            try:
                response = self._request_once(method, path, body)
            except (http.client.HTTPException, OSError) as exc:
                last = exc
            else:
                if response.status not in (429, 503):
                    return response
                last = ServiceError(response.status, response.payload)
                retry_after = response.headers.get("retry-after")
                if retry_after is not None:
                    try:
                        delay = max(delay, float(retry_after))
                    except ValueError:
                        pass
            if attempt == self.max_retries:
                break
            time.sleep(min(delay, self.max_backoff))
            delay = min(delay * 2, self.max_backoff)
        assert last is not None
        raise last if isinstance(last, ServiceError) else ServiceError(
            0, f"connection failed: {last}"
        )

    # high-level API --------------------------------------------------------

    def health(self) -> dict:
        return self._expect_ok(self.request("GET", "/healthz"))

    def metrics(self) -> dict:
        return self._expect_ok(self.request("GET", "/metrics"))

    def submit(self, job: dict, wait: float = 0.0) -> dict:
        """Submit one job; returns the job record (maybe still running)."""
        path = "/v1/jobs" + (f"?wait={wait:g}" if wait > 0 else "")
        with tracing.span("client.submit"):
            response = self.request("POST", path, job)
        if response.status not in (200, 202):
            raise ServiceError(response.status, response.payload)
        return response.payload

    def poll(self, job_id: str, wait: float = 0.0) -> dict:
        path = f"/v1/jobs/{job_id}" + (f"?wait={wait:g}" if wait > 0 else "")
        with tracing.span("client.poll"):
            response = self.request("GET", path)
        if response.status not in (200, 202):
            raise ServiceError(response.status, response.payload)
        return response.payload

    def submit_batch(self, jobs: list[dict]) -> dict:
        return self._expect_ok(
            self.request("POST", "/v1/batch", {"jobs": jobs})
        )

    def run_job(self, job: dict, wait: float = 30.0, deadline: float = 600.0) -> dict:
        """Submit and block until terminal; returns the ``done`` record.

        Raises :class:`JobFailed` if the simulation failed, or
        :class:`ServiceError` on timeout/rejection.
        """
        self.last_run_server_seconds = 0.0
        self.last_trace_id = None
        with tracing.span("client.request") as sp:
            if sp.span is not None:
                self.last_trace_id = sp.span.trace_id
            record = self.submit(job, wait=wait)
            self._accumulate_server_seconds(record)
            stop = time.monotonic() + deadline
            while record["status"] == "running":
                if time.monotonic() > stop:
                    raise ServiceError(
                        202,
                        f"job {record['id']} still running after {deadline}s",
                    )
                record = self.poll(record["id"], wait=wait)
                self._accumulate_server_seconds(record)
        if record["status"] == "failed":
            raise JobFailed(200, record)
        return record

    def _accumulate_server_seconds(self, record: dict) -> None:
        seconds = record.get("server_seconds")
        if isinstance(seconds, (int, float)):
            self.last_run_server_seconds += float(seconds)

    @staticmethod
    def _expect_ok(response: Response) -> dict:
        if response.status != 200:
            raise ServiceError(response.status, response.payload)
        return response.payload
