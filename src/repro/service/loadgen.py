"""Closed-loop load generator for the simulation service: ``repro loadgen``.

Spins up N thread-based :class:`~repro.service.client.ServiceClient`
workers, each submitting jobs drawn round-robin from a small mix of
specs, and reports throughput plus p50/p95/p99 request latency.

Two-phase protocol:

1. **Warm** — every distinct spec in the mix is run once to completion,
   populating the server memo and the workers' persistent result cache.
   Warm-phase requests are *not* measured.
2. **Timed** — workers hammer the warm specs for ``duration`` seconds;
   each completed request (submit + any polls until terminal) records
   one end-to-end latency sample.

The report lands in ``BENCH_service_throughput.json`` next to the other
benchmark artifacts, with the acceptance floors alongside the measured
numbers so regressions are self-describing.

Each request also records the **server-reported** handling time (the
``server_seconds`` field every response carries, summed over the
submit + polls of one job), so the report shows client latency, server
time and their delta side by side — queueing and network time used to
be invisible in the client-only numbers.

**Cluster mode** (``--cluster``, for a ``repro balance`` front end)
turns the load test into a correctness gauntlet: before any traffic,
every spec in the mix is simulated *in this process* to produce the
reference results, and then **every** completed request — warm and
timed, across failovers, reroutes and replica respawns — is checked
bit-for-bit against its reference.  The report gains a ``cluster``
section (result mismatches, HTTP attempts, reroutes) and ``passed``
additionally requires **zero failed requests and zero mismatches**:
under a chaos schedule this is the "no client-visible failures"
acceptance gate.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.service.client import ServiceClient, ServiceError

#: Acceptance floors (ISSUE: warm-cache service throughput).
THROUGHPUT_FLOOR_RPS = 50.0
P99_CEILING_SECONDS = 0.25

#: Default request mix: small jobs across distinct cache keys, so the
#: timed phase exercises memo hits, coalescing, and HTTP overhead
#: rather than raw simulation speed.
DEFAULT_MIX = [
    {
        "benchmark": "ora",
        "machine": "PI4",
        "scheme": "sequential",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI4",
        "scheme": "collapsing_buffer",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI8",
        "scheme": "sequential",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI8",
        "scheme": "collapsing_buffer",
        "length": 2_000,
        "warmup": 400,
    },
]


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _reference_results(specs: list[dict]) -> list[dict]:
    """Simulate every spec in-process: the ground truth cluster results
    must match bit-for-bit (after the same JSON round trip the wire
    applies — JSON has no tuples)."""
    from repro.service.protocol import validate_job
    from repro.sim.batch import _run_job

    references = []
    for spec in specs:
        job = validate_job(dict(spec))
        references.append(json.loads(json.dumps(_run_job(job).as_dict())))
    return references


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8000,
    clients: int = 8,
    duration: float = 5.0,
    mix: list[dict] | None = None,
    wait: float = 30.0,
    output: str | Path | None = "BENCH_service_throughput.json",
    quiet: bool = False,
    cluster: bool = False,
) -> dict:
    """Run the two-phase load test; returns (and optionally writes) the
    report dict.  With *cluster* on, verify every result bit-for-bit
    against an in-process reference run and require zero failures."""
    specs = list(mix or DEFAULT_MIX)
    references = _reference_results(specs) if cluster else None

    mismatches = 0
    attempts_total = 0
    rerouted_total = 0

    def check_result(spec_index: int, record: dict) -> bool:
        """True if the record matches its reference (cluster mode)."""
        if references is None:
            return True
        return record.get("result") == references[spec_index]

    # Phase 1: warm every spec once (not measured).
    warm_started = time.monotonic()
    with ServiceClient(host, port) as client:
        for spec_index, spec in enumerate(specs):
            record = client.run_job(spec, wait=wait)
            if not check_result(spec_index, record):
                mismatches += 1
    warm_seconds = time.monotonic() - warm_started

    # Phase 2: timed closed loop.
    latencies: list[float] = []
    server_seconds: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    stop_at = time.monotonic() + duration

    def worker(offset: int) -> None:
        nonlocal mismatches, attempts_total, rerouted_total
        local: list[float] = []
        local_server: list[float] = []
        local_errors: list[str] = []
        local_mismatches = 0
        local_attempts = 0
        local_rerouted = 0
        with ServiceClient(host, port) as client:
            index = offset
            while time.monotonic() < stop_at:
                spec_index = index % len(specs)
                spec = specs[spec_index]
                index += 1
                started = time.monotonic()
                try:
                    record = client.run_job(spec, wait=wait)
                except ServiceError as exc:
                    local_errors.append(str(exc))
                    continue
                local.append(time.monotonic() - started)
                local_server.append(client.last_run_server_seconds)
                local_attempts += record.get("attempts", 0) or 0
                local_rerouted += record.get("rerouted", 0) or 0
                if not check_result(spec_index, record):
                    local_mismatches += 1
        with lock:
            latencies.extend(local)
            server_seconds.extend(local_server)
            errors.extend(local_errors)
            mismatches += local_mismatches
            attempts_total += local_attempts
            rerouted_total += local_rerouted

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    timed_started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(duration + 120.0)
    elapsed = time.monotonic() - timed_started

    completed = len(latencies)
    throughput = completed / elapsed if elapsed > 0 else 0.0
    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    p99 = _percentile(latencies, 0.99)
    # Client latency minus server-reported handling time: what the
    # request spent queued, on the wire, or in client-side backoff.
    deltas = [
        max(0.0, latency - server)
        for latency, server in zip(latencies, server_seconds)
    ]
    delta_mean = sum(deltas) / len(deltas) if deltas else 0.0
    report = {
        "config": {
            "host": host,
            "port": port,
            "clients": clients,
            "duration_seconds": duration,
            "distinct_specs": len(specs),
            "benchmark": specs[0].get("benchmark"),
        },
        "warm_phase_seconds": round(warm_seconds, 4),
        "timed_phase": {
            "elapsed_seconds": round(elapsed, 4),
            "requests_completed": completed,
            "requests_failed": len(errors),
            "throughput_rps": round(throughput, 1),
            "latency_seconds": {
                "p50": round(p50, 4),
                "p95": round(p95, 4),
                "p99": round(p99, 4),
            },
            "server_seconds": {
                "p50": round(_percentile(server_seconds, 0.50), 4),
                "p95": round(_percentile(server_seconds, 0.95), 4),
                "p99": round(_percentile(server_seconds, 0.99), 4),
            },
            "client_server_delta_seconds": {
                "mean": round(delta_mean, 4),
                "p50": round(_percentile(deltas, 0.50), 4),
                "p95": round(_percentile(deltas, 0.95), 4),
            },
        },
        "floors": {
            "throughput_rps_min": THROUGHPUT_FLOOR_RPS,
            "p99_seconds_max": P99_CEILING_SECONDS,
        },
        "passed": bool(
            throughput >= THROUGHPUT_FLOOR_RPS and p99 <= P99_CEILING_SECONDS
        ),
    }
    if errors:
        report["timed_phase"]["sample_errors"] = errors[:5]
    if cluster:
        # The zero-lost-requests gauntlet: against a balancer every
        # request must complete AND match the in-process reference run
        # bit-for-bit, failovers and reroutes included.
        report["cluster"] = {
            "requests_failed": len(errors),
            "result_mismatches": mismatches,
            "bit_identical": mismatches == 0,
            "attempts_total": attempts_total,
            "rerouted_total": rerouted_total,
        }
        report["passed"] = bool(
            report["passed"] and not errors and mismatches == 0
        )

    if output is not None:
        path = Path(output)
        path.write_text(json.dumps(report, indent=2) + "\n")
        if not quiet:
            print(f"wrote {path}")
    if not quiet:
        print(
            f"loadgen: {completed} requests in {elapsed:.1f}s "
            f"({throughput:.1f} req/s), "
            f"p50={p50 * 1000:.1f}ms p95={p95 * 1000:.1f}ms "
            f"p99={p99 * 1000:.1f}ms "
            f"client-server delta mean={delta_mean * 1000:.1f}ms "
            f"[{'PASS' if report['passed'] else 'FAIL'}: "
            f"floor {THROUGHPUT_FLOOR_RPS:.0f} req/s, "
            f"p99 <= {P99_CEILING_SECONDS * 1000:.0f}ms]"
        )
        if cluster:
            section = report["cluster"]
            print(
                f"cluster: {section['requests_failed']} failed, "
                f"{section['result_mismatches']} mismatched, "
                f"{section['rerouted_total']} rerouted "
                f"({section['attempts_total']} HTTP attempts) "
                f"[{'bit-identical' if section['bit_identical'] else 'MISMATCH'}]"
            )
    return report
