"""Closed-loop load generator for the simulation service: ``repro loadgen``.

Spins up N thread-based :class:`~repro.service.client.ServiceClient`
workers, each submitting jobs drawn round-robin from a small mix of
specs, and reports throughput plus p50/p95/p99 request latency.

Two-phase protocol:

1. **Warm** — every distinct spec in the mix is run once to completion,
   populating the server memo and the workers' persistent result cache.
   Warm-phase requests are *not* measured.
2. **Timed** — workers hammer the warm specs for ``duration`` seconds;
   each completed request (submit + any polls until terminal) records
   one end-to-end latency sample.

The report lands in ``BENCH_service_throughput.json`` next to the other
benchmark artifacts, with the acceptance floors alongside the measured
numbers so regressions are self-describing.

Each request also records the **server-reported** handling time (the
``server_seconds`` field every response carries, summed over the
submit + polls of one job), so the report shows client latency, server
time and their delta side by side — queueing and network time used to
be invisible in the client-only numbers.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.service.client import ServiceClient, ServiceError

#: Acceptance floors (ISSUE: warm-cache service throughput).
THROUGHPUT_FLOOR_RPS = 50.0
P99_CEILING_SECONDS = 0.25

#: Default request mix: small jobs across distinct cache keys, so the
#: timed phase exercises memo hits, coalescing, and HTTP overhead
#: rather than raw simulation speed.
DEFAULT_MIX = [
    {
        "benchmark": "ora",
        "machine": "PI4",
        "scheme": "sequential",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI4",
        "scheme": "collapsing_buffer",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI8",
        "scheme": "sequential",
        "length": 2_000,
        "warmup": 400,
    },
    {
        "benchmark": "ora",
        "machine": "PI8",
        "scheme": "collapsing_buffer",
        "length": 2_000,
        "warmup": 400,
    },
]


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8000,
    clients: int = 8,
    duration: float = 5.0,
    mix: list[dict] | None = None,
    wait: float = 30.0,
    output: str | Path | None = "BENCH_service_throughput.json",
    quiet: bool = False,
) -> dict:
    """Run the two-phase load test; returns (and optionally writes) the
    report dict."""
    specs = list(mix or DEFAULT_MIX)

    # Phase 1: warm every spec once (not measured).
    warm_started = time.monotonic()
    with ServiceClient(host, port) as client:
        for spec in specs:
            client.run_job(spec, wait=wait)
    warm_seconds = time.monotonic() - warm_started

    # Phase 2: timed closed loop.
    latencies: list[float] = []
    server_seconds: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    stop_at = time.monotonic() + duration

    def worker(offset: int) -> None:
        local: list[float] = []
        local_server: list[float] = []
        local_errors: list[str] = []
        with ServiceClient(host, port) as client:
            index = offset
            while time.monotonic() < stop_at:
                spec = specs[index % len(specs)]
                index += 1
                started = time.monotonic()
                try:
                    client.run_job(spec, wait=wait)
                except ServiceError as exc:
                    local_errors.append(str(exc))
                    continue
                local.append(time.monotonic() - started)
                local_server.append(client.last_run_server_seconds)
        with lock:
            latencies.extend(local)
            server_seconds.extend(local_server)
            errors.extend(local_errors)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    timed_started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(duration + 120.0)
    elapsed = time.monotonic() - timed_started

    completed = len(latencies)
    throughput = completed / elapsed if elapsed > 0 else 0.0
    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    p99 = _percentile(latencies, 0.99)
    # Client latency minus server-reported handling time: what the
    # request spent queued, on the wire, or in client-side backoff.
    deltas = [
        max(0.0, latency - server)
        for latency, server in zip(latencies, server_seconds)
    ]
    delta_mean = sum(deltas) / len(deltas) if deltas else 0.0
    report = {
        "config": {
            "host": host,
            "port": port,
            "clients": clients,
            "duration_seconds": duration,
            "distinct_specs": len(specs),
            "benchmark": specs[0].get("benchmark"),
        },
        "warm_phase_seconds": round(warm_seconds, 4),
        "timed_phase": {
            "elapsed_seconds": round(elapsed, 4),
            "requests_completed": completed,
            "requests_failed": len(errors),
            "throughput_rps": round(throughput, 1),
            "latency_seconds": {
                "p50": round(p50, 4),
                "p95": round(p95, 4),
                "p99": round(p99, 4),
            },
            "server_seconds": {
                "p50": round(_percentile(server_seconds, 0.50), 4),
                "p95": round(_percentile(server_seconds, 0.95), 4),
                "p99": round(_percentile(server_seconds, 0.99), 4),
            },
            "client_server_delta_seconds": {
                "mean": round(delta_mean, 4),
                "p50": round(_percentile(deltas, 0.50), 4),
                "p95": round(_percentile(deltas, 0.95), 4),
            },
        },
        "floors": {
            "throughput_rps_min": THROUGHPUT_FLOOR_RPS,
            "p99_seconds_max": P99_CEILING_SECONDS,
        },
        "passed": bool(
            throughput >= THROUGHPUT_FLOOR_RPS and p99 <= P99_CEILING_SECONDS
        ),
    }
    if errors:
        report["timed_phase"]["sample_errors"] = errors[:5]

    if output is not None:
        path = Path(output)
        path.write_text(json.dumps(report, indent=2) + "\n")
        if not quiet:
            print(f"wrote {path}")
    if not quiet:
        print(
            f"loadgen: {completed} requests in {elapsed:.1f}s "
            f"({throughput:.1f} req/s), "
            f"p50={p50 * 1000:.1f}ms p95={p95 * 1000:.1f}ms "
            f"p99={p99 * 1000:.1f}ms "
            f"client-server delta mean={delta_mean * 1000:.1f}ms "
            f"[{'PASS' if report['passed'] else 'FAIL'}: "
            f"floor {THROUGHPUT_FLOOR_RPS:.0f} req/s, "
            f"p99 <= {P99_CEILING_SECONDS * 1000:.0f}ms]"
        )
    return report
