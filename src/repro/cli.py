"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — benchmarks, machine models, fetch schemes.
* ``simulate BENCH MACHINE SCHEME`` — one full IPC simulation;
  ``--telemetry [DIR]`` runs instrumented and prints the slot
  attribution and phase timings (writing JSONL + manifest to ``DIR``).
* ``eir BENCH MACHINE`` — fetch-only alignment efficiency of all schemes.
* ``stats BENCH MACHINE`` — telemetry breakdown: where every fetch slot
  went, per scheme, with an EIR-gap decomposition against ``perfect``.
* ``characterize [BENCH ...]`` — workload characterisation table.
* ``experiment NAME [NAME ...]`` — regenerate paper tables/figures.
* ``ablation NAME [NAME ...]`` — run the beyond-paper ablation studies.
* ``ablate run|list|report`` — the declarative study engine
  (:mod:`repro.study`): expand a named preset or JSON :class:`StudySpec`
  into baseline/one-factor-off/pairwise runs, execute them under the
  supervised sweep engine (``--resume`` replays the journal), and emit
  importance/interaction/Pareto reports.
* ``sweep`` — batch-simulate a grid of configurations (``--jobs N``)
  under the supervised engine: ``--timeout``/``--retries`` set the
  recovery policy, ``--journal DIR`` records completions and
  ``--resume DIR`` skips work already journalled there;
  ``--sanitize`` runs every job under the pipeline sanitizer,
  ``--telemetry [DIR]`` under the instrumented loop, ``--no-kernel``
  forces the interpreted loop.
* ``bench`` — single-simulation throughput, interpreted vs compiled
  kernel (cold table build and warm tape replay); ``--update PATH``
  refreshes ``BENCH_sim_throughput.json``, ``--floor N`` gates CI.
* ``check`` — lint a benchmark x machine x scheme matrix with the
  ``repro.check`` verifiers (exit 1 on any violation).
* ``lint`` — static analysis of the codebase itself with the
  ``repro.analysis`` analyzers (knob registry, concurrency, fault
  sites, error codes; exit 1 on any non-baselined finding).
* ``serve`` — start the simulation service (HTTP/JSON job server over
  the supervised worker engine; see ``docs/service.md``).
* ``balance`` — spawn N ``serve`` replicas and front them with the
  fault-tolerant cluster balancer (consistent-hash routing, health
  gating, budgeted failover; see ``docs/service.md``).
* ``loadgen`` — benchmark a running service and write
  ``BENCH_service_throughput.json``; ``--cluster`` adds the
  zero-lost-requests bit-identity gauntlet against a balancer.
* ``trace`` — inspect spans recorded with ``REPRO_TRACE=1`` (or the
  ``--trace DIR`` flag on ``sweep``/``serve``): list traces, render one
  as a tree with a critical-path table, export Chrome/Perfetto JSON.
* ``report`` — every paper artifact, in order.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablations import ABLATIONS
from repro.experiments.common import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.report import EXPERIMENTS, run_experiments
from repro.fetch.factory import ALL_SCHEMES, HARDWARE_SCHEMES
from repro.machines.presets import MACHINES, get_machine
from repro.sim.eir import measure_eir
from repro.sim.runner import run_workload
from repro.workloads.analysis import characterization_table
from repro.workloads.profiles import ALL_BENCHMARKS
from repro.workloads.suite import load_workload
from repro.workloads.trace import generate_trace


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in ALL_BENCHMARKS:
        print(f"  {name} ({load_workload(name).workload_class})")
    print("\nmachines:")
    for machine in MACHINES:
        print(
            f"  {machine.name}: issue {machine.issue_rate}, "
            f"window {machine.window_size}, "
            f"{machine.icache_bytes // 1024}KB I-cache / "
            f"{machine.icache_block_bytes}B blocks"
        )
    print("\nfetch schemes:")
    for scheme in ALL_SCHEMES:
        marker = "" if scheme in HARDWARE_SCHEMES + ("perfect",) else "  [extension]"
        print(f"  {scheme}{marker}")
    print("\nexperiments:", ", ".join(EXPERIMENTS))
    print("ablations:", ", ".join(ABLATIONS))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    if args.telemetry is None:
        stats = run_workload(
            args.benchmark,
            machine,
            args.scheme,
            max_instructions=args.length,
            seed=args.seed,
            kernel=False if args.no_kernel else None,
        )
        for key, value in stats.as_dict().items():
            print(f"{key:20s} {value}")
        return 0

    # Instrumented run: build the simulator directly so the full
    # TelemetryReport (phase timers, counters) is available, not just
    # the slot_* keys that survive in SimStats.extra.
    import time

    from repro.sim import cache as result_cache
    from repro.sim.runner import DEFAULT_WARMUP
    from repro.sim.simulator import Simulator
    from repro.telemetry import (
        CAUSES,
        build_manifest,
        config_fingerprint,
        to_jsonl,
        write_manifest,
    )

    workload = load_workload(args.benchmark)
    trace = generate_trace(
        workload.program, workload.behavior, args.length, seed=args.seed
    )
    sim = Simulator(
        machine, trace, args.scheme, warmup=DEFAULT_WARMUP, telemetry=True
    )
    start = time.perf_counter()
    stats = sim.run()
    wall = time.perf_counter() - start
    for key, value in stats.as_dict().items():
        print(f"{key:20s} {value}")

    report = sim.telemetry_report
    assert report is not None
    rates = report.rates()
    print(f"\nslot attribution (of {report.issue_rate} slots/cycle):")
    for cause in CAUSES:
        slots = report.attribution.get(cause, 0)
        if slots:
            print(f"  {cause:20s} {slots:>10d}  {rates[cause]:6.3f}/cycle")
    print("\nphase wall-clock seconds:")
    for name, seconds in sorted(
        report.phase_seconds.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:20s} {seconds:8.4f}")

    if args.telemetry:  # a directory was given
        from pathlib import Path

        out = Path(args.telemetry)
        record = stats.as_dict()
        jsonl_path = to_jsonl([record], out / "telemetry.jsonl")
        manifest = build_manifest(
            command="simulate",
            arguments={
                "benchmark": args.benchmark,
                "machine": machine.name,
                "scheme": args.scheme,
                "length": args.length,
            },
            configs={machine.name: config_fingerprint(machine)},
            seeds={"trace": args.seed},
            timings={"wall": wall, **report.phase_seconds},
            results=[record],
            cache_stats=result_cache.stats.as_dict(),
        )
        manifest_path = write_manifest(out / "manifest.json", manifest)
        print(f"\nwrote {jsonl_path} and {manifest_path}")
    return 0


def _cmd_eir(args: argparse.Namespace) -> int:
    workload = load_workload(args.benchmark)
    machine = get_machine(args.machine)
    trace = generate_trace(
        workload.program, workload.behavior, args.length, seed=args.seed
    )
    perfect = measure_eir(trace, machine, "perfect").eir
    print(f"{args.benchmark} on {machine.name}: EIR(perfect) = {perfect:.2f}")
    for scheme in HARDWARE_SCHEMES:
        eir = measure_eir(trace, machine, scheme).eir
        print(f"  {scheme:24s} {eir:5.2f}  ({100 * eir / perfect:5.1f}%)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Telemetry breakdown: where every fetch slot went, per scheme."""
    import json
    import time

    from repro.experiments.common import telemetry_sim_stats
    from repro.metrics.chart import BarGroup, bar_chart, tornado_chart
    from repro.metrics.summary import format_table
    from repro.sim import cache as result_cache
    from repro.telemetry import (
        CAUSES,
        build_manifest,
        check_conservation,
        config_fingerprint,
        to_csv,
        to_jsonl,
        write_manifest,
    )

    machine = get_machine(args.machine)
    schemes = list(args.schemes or HARDWARE_SCHEMES + ("perfect",))
    issue_rate = machine.issue_rate

    start = time.perf_counter()
    results = {
        scheme: telemetry_sim_stats(
            args.benchmark,
            machine.name,
            scheme,
            length=args.length,
            warmup=args.warmup,
            seed=args.seed,
        )
        for scheme in schemes
    }
    wall = time.perf_counter() - start

    rates: dict[str, dict[str, float]] = {}
    attributions: dict[str, dict[str, int]] = {}
    for scheme, stats in results.items():
        attribution = stats.slot_attribution()
        check_conservation(attribution, stats.cycles, issue_rate)
        attributions[scheme] = attribution
        rates[scheme] = {
            cause: attribution.get(cause, 0) / stats.cycles
            for cause in CAUSES
        }

    # Loss causes that actually occurred anywhere, in taxonomy order.
    losses = [
        cause
        for cause in CAUSES
        if cause != "delivered"
        and any(rates[scheme][cause] > 0 for scheme in schemes)
    ]

    if args.json:
        print(
            json.dumps(
                {
                    "benchmark": args.benchmark,
                    "machine": machine.name,
                    "issue_rate": issue_rate,
                    "schemes": {
                        scheme: {
                            "eir": results[scheme].eir,
                            "ipc": results[scheme].ipc,
                            "cycles": results[scheme].cycles,
                            "attribution": attributions[scheme],
                            "rates": rates[scheme],
                        }
                        for scheme in schemes
                    },
                },
                indent=2,
            )
        )
    else:
        headers = ["scheme", "EIR"] + losses
        rows = [
            [scheme, round(results[scheme].eir, 3)]
            + [round(rates[scheme][cause], 3) for cause in losses]
            for scheme in schemes
        ]
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"fetch-slot attribution, slots/cycle of {issue_rate}: "
                    f"{args.benchmark} on {machine.name}"
                ),
            )
        )

        # Decompose each scheme's EIR deficit against the perfect
        # fetcher: by slot conservation the per-cause rate differences
        # account for the gap exactly.
        if "perfect" in results:
            perfect_eir = results["perfect"].eir
            print(f"\nEIR gap vs perfect ({perfect_eir:.3f}):")
            for scheme in schemes:
                if scheme == "perfect":
                    continue
                gap = perfect_eir - results[scheme].eir
                if gap <= 1e-9:
                    print(f"  {scheme}: no gap")
                    continue
                contributions = {
                    cause: rates[scheme][cause] - rates["perfect"][cause]
                    for cause in CAUSES
                    if cause != "delivered"
                }
                explained = 100 * sum(contributions.values()) / gap
                print(
                    f"  {scheme}: {gap:.3f} slots/cycle "
                    f"({explained:.1f}% explained)"
                )
                entries = [
                    (cause, 100 * delta / gap)
                    for cause, delta in contributions.items()
                    if abs(delta) > 1e-9
                ]
                if entries:
                    chart = tornado_chart(entries, width=32, unit="%")
                    print("    " + chart.replace("\n", "\n    "))

        chart_series = ["delivered"] + losses
        groups = [
            BarGroup(
                label=scheme,
                values=[rates[scheme][cause] for cause in chart_series],
            )
            for scheme in schemes
        ]
        print()
        print(
            bar_chart(
                chart_series,
                groups,
                title="slots per cycle by cause",
                unit=" slots/cyc",
            )
        )

    records = [results[scheme].as_dict() for scheme in schemes]
    if args.export_jsonl:
        print(f"wrote {to_jsonl(records, args.export_jsonl)}")
    if args.export_csv:
        print(f"wrote {to_csv(records, args.export_csv)}")
    if args.manifest:
        manifest = build_manifest(
            command="stats",
            arguments={
                "benchmark": args.benchmark,
                "machine": machine.name,
                "schemes": schemes,
                "length": args.length,
                "warmup": args.warmup,
            },
            configs={machine.name: config_fingerprint(machine)},
            seeds={"trace": args.seed},
            timings={"wall": wall},
            results=records,
            cache_stats=result_cache.stats.as_dict(),
        )
        print(f"wrote {write_manifest(args.manifest, manifest)}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    names = args.benchmarks or list(ALL_BENCHMARKS)
    workloads = [load_workload(name) for name in names]
    print(characterization_table(workloads, trace_length=args.length))
    return 0


def _config_for(args: argparse.Namespace) -> ExperimentConfig:
    scale = getattr(args, "scale", 1.0)
    if scale == 1.0:
        return DEFAULT_CONFIG
    return ExperimentConfig(
        trace_length=max(2000, int(DEFAULT_CONFIG.trace_length * scale)),
        eir_length=max(2000, int(DEFAULT_CONFIG.eir_length * scale)),
        stats_length=max(4000, int(DEFAULT_CONFIG.stats_length * scale)),
        warmup=max(500, int(DEFAULT_CONFIG.warmup * scale)),
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    for result in run_experiments(args.names, _config_for(args)):
        print(result.to_json() if args.json else result.as_text())
        if not args.json:
            print("=" * 72)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    names = list(ABLATIONS) if args.names == ["all"] else args.names
    for name in names:
        if name not in ABLATIONS:
            known = ", ".join(ABLATIONS)
            print(f"unknown ablation {name!r}; known: {known}", file=sys.stderr)
            return 2
    config = _config_for(args)
    for name in names:
        result = ABLATIONS[name](config)
        print(result.to_json() if args.json else result.as_text())
        if not args.json:
            print("=" * 72)
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Declarative study engine: ``ablate run|list|report``."""
    import json
    from pathlib import Path

    from repro import knobs
    from repro.check.errors import CheckFailure
    from repro.study import analysis as study_analysis
    from repro.study.engine import REPORT_JSON, run_study
    from repro.study.presets import PRESETS
    from repro.study.spec import spec_from_json

    if args.action == "list":
        print("study presets:")
        for preset in PRESETS.values():
            ported = (
                f"  [ports ablation {preset.ablation!r}]"
                if preset.ablation
                else ""
            )
            print(f"  {preset.name:16s} {preset.description}{ported}")
        print(
            "\nrun one with 'repro ablate run NAME' "
            "(or pass a JSON StudySpec path)"
        )
        return 0

    if args.action == "report":
        path = Path(args.dir) / REPORT_JSON
        if not path.exists():
            print(f"no study report at {path}", file=sys.stderr)
            return 2
        report = json.loads(path.read_text())
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(study_analysis.render_markdown(report))
        return 0

    # action == "run"
    if args.spec in PRESETS:
        spec = PRESETS[args.spec].build(_config_for(args))
    else:
        path = Path(args.spec)
        if not path.exists():
            known = ", ".join(PRESETS)
            print(
                f"unknown study {args.spec!r}; known presets: {known} "
                "(or pass a JSON StudySpec path)",
                file=sys.stderr,
            )
            return 2
        try:
            spec = spec_from_json(path.read_text())
        except CheckFailure as exc:
            for error in exc.errors:
                print(error, file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"bad study spec {path}: {exc}", file=sys.stderr)
            return 1

    out_dir = Path(args.out) if args.out else (
        Path(knobs.raw("REPRO_STUDY_DIR")) / spec.name
    )
    from repro.sim.batch import BatchError, SupervisorConfig

    config = SupervisorConfig(
        timeout=args.timeout, max_attempts=max(1, args.retries + 1)
    )
    try:
        outcome = run_study(
            spec,
            out_dir,
            processes=args.jobs,
            config=config,
            resume=args.resume,
        )
    except CheckFailure as exc:
        for error in exc.errors:
            print(error, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            f"\nstudy interrupted — completed jobs are journalled in "
            f"{out_dir}; resume with the same command plus '--resume'",
            file=sys.stderr,
        )
        return 130
    except BatchError as exc:
        print(f"study failed: {exc}", file=sys.stderr)
        return 1

    report = outcome.report
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    counts = outcome.manifest["outcomes"]
    print(
        f"study {spec.name} (spec {spec.digest}): "
        f"{len(outcome.expansion.runs)} unique runs, "
        f"{outcome.manifest['jobs']} jobs"
    )
    summary = ", ".join(
        f"{counts[status]} {status}"
        for status in ("ok", "retried", "timeout", "crashed", "skipped")
        if counts.get(status)
    )
    print(f"job outcomes: {summary or 'none'}")
    print()
    print(study_analysis.render_tornado(report).rstrip("\n"))
    frontier = report["pareto"]["frontier"]
    if frontier:
        print(f"\nEIR-vs-cost Pareto frontier: {len(frontier)} point(s)")
    print(
        f"\nwrote {outcome.directory}/report.{{json,md,csv}}, "
        "tornado.txt and manifest.json"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.api import check_matrix

    report = check_matrix(
        benchmarks=args.benchmarks or None,
        machines=args.machines or None,
        schemes=args.schemes or None,
        length=args.length,
        seed=args.seed,
        fetch=not args.no_fetch,
        variants=tuple(args.variants),
    )
    for finding in report.errors + report.warnings:
        print(finding)
    print(
        f"{report.checks_run} checks: {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s)"
    )
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis import Baseline, run_lint

    root = Path(args.root)
    baseline_path = (
        Path(args.baseline) if args.baseline else root / "lint_baseline.json"
    )
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"repro lint: bad baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    report = run_lint(root, baseline=baseline)
    if args.write_baseline:
        written = baseline.write(baseline_path, report.findings)
        count = len(report.findings)
        print(f"wrote {count} suppression(s) to {written}")
        return 0
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.sim.batch import (
        BatchError,
        SupervisorConfig,
        SweepJournal,
        run_batch_report,
        suite_jobs,
    )

    if args.sanitize:
        # Env (not a flag threaded through SimJob) so worker processes
        # inherit it; the result-cache digest includes this knob.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.trace is not None:
        _activate_tracing(args.trace)
    telemetry = args.telemetry is not None
    benchmarks = tuple(args.benchmarks or ALL_BENCHMARKS)
    machines = tuple(args.machines or [m.name for m in MACHINES])
    schemes = tuple(args.schemes or HARDWARE_SCHEMES)
    jobs = suite_jobs(
        benchmarks,
        machines,
        schemes,
        length=args.length,
        warmup=args.warmup,
        seed=args.seed,
        telemetry=telemetry,
        kernel=False if args.no_kernel else None,
    )
    journal_dir = args.resume or args.journal
    journal = SweepJournal(journal_dir) if journal_dir else None
    config = SupervisorConfig(
        timeout=args.timeout, max_attempts=max(1, args.retries + 1)
    )
    try:
        report = run_batch_report(
            jobs,
            processes=args.jobs,
            config=config,
            journal=journal,
            resume=args.resume is not None,
        )
    except KeyboardInterrupt:
        # Workers are already terminated and the journal flushed (the
        # supervisor guarantees both before re-raising).
        print("\nsweep interrupted — workers terminated.", file=sys.stderr)
        if journal_dir:
            print(
                f"completed jobs are journalled in {journal_dir}; resume "
                f"with the same command plus '--resume {journal_dir}'",
                file=sys.stderr,
            )
        else:
            print(
                "no journal was active; pass '--journal DIR' (or "
                "'--resume DIR') to make sweeps resumable",
                file=sys.stderr,
            )
        return 130
    except BatchError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if journal is not None:
            journal.close()
    header = f"{'benchmark':12s} {'machine':8s} {'scheme':24s} {'IPC':>6s}"
    print(header)
    for job, stats in zip(jobs, report.results):
        print(
            f"{job.benchmark:12s} {job.machine:8s} {job.scheme:24s} "
            f"{stats.ipc:6.2f}"
        )
    print(
        f"\n{len(jobs)} simulations in {report.wall_seconds:.2f}s "
        f"({report.instructions_per_second:,.0f} simulated instructions/s, "
        f"{report.processes} process(es))"
    )
    counts = report.outcome_counts
    extra_attempts = sum(len(o.failures) for o in report.outcomes)
    summary = ", ".join(
        f"{counts[status]} {status}"
        for status in ("ok", "retried", "timeout", "crashed", "skipped")
        if counts.get(status)
    )
    print(
        f"job outcomes: {summary or 'none'}"
        + (f" ({extra_attempts} failed attempt(s) retried)" if extra_attempts else "")
        + (" — degraded to serial execution" if report.degraded_serial else "")
    )
    cache = report.cache_stats
    print(
        "result cache: "
        f"{cache.get('hits', 0)} hit(s), {cache.get('misses', 0)} miss(es), "
        f"{cache.get('stores', 0)} store(s), "
        f"{cache.get('coalesced', 0)} coalesced, "
        f"{cache.get('corrupt_dropped', 0)} dropped"
        + (
            " — cache auto-disabled (filesystem error)"
            if cache.get("auto_disabled")
            else ""
        )
    )
    if telemetry and args.telemetry:  # a directory was given
        from pathlib import Path

        from repro.telemetry import (
            build_manifest,
            config_fingerprint,
            to_jsonl,
            write_manifest,
        )

        out = Path(args.telemetry)
        records = [stats.as_dict() for stats in report.results]
        jsonl_path = to_jsonl(records, out / "telemetry.jsonl")
        manifest = build_manifest(
            command="sweep",
            arguments={
                "benchmarks": list(benchmarks),
                "machines": list(machines),
                "schemes": list(schemes),
                "length": args.length,
                "warmup": args.warmup,
                "jobs": report.processes,
                "timeout": args.timeout,
                "retries": args.retries,
                "resume": bool(args.resume),
            },
            configs={
                name: config_fingerprint(get_machine(name))
                for name in machines
            },
            seeds={"trace": args.seed},
            timings={"wall": report.wall_seconds},
            results=records,
            cache_stats=cache,
            outcomes=[outcome.as_dict() for outcome in report.outcomes],
        )
        manifest_path = write_manifest(out / "manifest.json", manifest)
        print(f"wrote {jsonl_path} and {manifest_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.sim.bench import measure_throughput, record_section

    if args.kernel and args.no_kernel:
        print("--kernel and --no-kernel are mutually exclusive", file=sys.stderr)
        return 2
    modes: tuple[str, ...] = ("interpreted", "kernel")
    if args.kernel:
        modes = ("kernel",)
    elif args.no_kernel:
        modes = ("interpreted",)
    report = measure_throughput(
        benchmark=args.benchmark,
        machine_name=args.machine,
        scheme=args.scheme,
        length=args.length,
        warmup=args.warmup,
        seed=args.seed,
        repeats=args.repeats,
        modes=modes,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        interp = report.get("interpreted")
        kernel = report.get("kernel")
        print(
            f"{args.benchmark} on {args.machine}/{args.scheme}, "
            f"{args.length:,} instructions (best of {args.repeats}):"
        )
        if interp:
            print(
                f"  interpreted  {interp['instructions_per_second']:>12,} insn/s"
            )
        if kernel:
            print(
                f"  kernel cold  {kernel['cold_instructions_per_second']:>12,} insn/s"
                "  (table + tape build)"
            )
            print(
                f"  kernel warm  {kernel['warm_instructions_per_second']:>12,} insn/s"
            )
        if "speedup_warm_over_interpreted" in report:
            print(
                f"  speedup      {report['speedup_warm_over_interpreted']:>12}x"
                "  (warm kernel over interpreted)"
            )
    if args.update:
        record_section(args.update, "compiled_kernel", report)
        print(f"updated {args.update}")
    if args.floor is not None:
        kernel = report.get("kernel")
        measured = (
            kernel["warm_instructions_per_second"]
            if kernel
            else report["interpreted"]["instructions_per_second"]
        )
        if measured < args.floor:
            print(
                f"throughput {measured:,} insn/s below floor {args.floor:,}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_pipetrace(args: argparse.Namespace) -> int:
    from repro.sim.pipetrace import trace_pipeline

    workload = load_workload(args.benchmark)
    trace = generate_trace(
        workload.program, workload.behavior, args.length, seed=args.seed
    )
    log = trace_pipeline(
        get_machine(args.machine), trace, args.scheme, max_cycles=args.cycles
    )
    print(log.render(limit=args.cycles))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    for result in run_experiments(config=_config_for(args)):
        print(result.as_text())
        print("=" * 72)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    if args.trace is not None:
        _activate_tracing(args.trace)
    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        job_timeout=args.timeout,
        retries=args.retries,
        drain_timeout=args.drain_timeout,
        start_method=args.start_method,
        quiet=args.quiet,
        name=args.name,
    )


def _cmd_balance(args: argparse.Namespace) -> int:
    from repro.service.cluster import run_cluster

    if args.trace is not None:
        _activate_tracing(args.trace)
    return run_cluster(
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        job_timeout=args.timeout,
        quiet=args.quiet,
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import run_loadgen

    output = args.output
    if args.cluster and output == "BENCH_service_throughput.json":
        # Don't clobber the single-replica artifact by default.
        output = "BENCH_cluster_throughput.json"
    report = run_loadgen(
        host=args.host,
        port=args.port,
        clients=args.clients,
        duration=args.duration,
        output=None if output == "-" else output,
        cluster=args.cluster,
    )
    return 0 if report["passed"] or not args.strict else 1


def _activate_tracing(trace_dir: str) -> None:
    """Turn on ``REPRO_TRACE`` (and the spill directory) via the
    environment so worker processes inherit it — both knobs are
    cache-exempt, so traced results stay bit-identical."""
    import os
    from pathlib import Path

    from repro.telemetry import trace as tracing

    os.environ["REPRO_TRACE"] = "1"
    if trace_dir:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        os.environ["REPRO_TRACE_DIR"] = trace_dir
    tracing.reload()


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.telemetry import timeline
    from repro.telemetry import trace as tracing

    directory = args.dir or tracing.trace_dir()
    if not directory:
        print(
            "no trace directory: pass --dir DIR or set REPRO_TRACE_DIR",
            file=sys.stderr,
        )
        return 2
    spans = timeline.load_dir(directory)
    if not spans:
        print(f"no spans found under {directory}", file=sys.stderr)
        return 1
    if args.trace_id is None and not args.latest:
        print(timeline.render_listing(spans))
        return 0
    if args.latest:
        trace_id = timeline.trace_summaries(spans)[0]["trace_id"]
    else:
        trace_id = args.trace_id
    try:
        bucket = timeline.find_trace(spans, trace_id)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.chrome:
        document = tracing.to_chrome(bucket)
        problems = tracing.validate_chrome(document)
        if problems:
            for problem in problems:
                print(f"chrome export: {problem}", file=sys.stderr)
            return 1
        Path(args.chrome).write_text(json.dumps(document) + "\n")
        print(f"wrote {args.chrome} ({len(bucket)} spans)")
    print(timeline.render_tree(bucket))
    print(timeline.render_critical_path(bucket, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Conte et al., 'Optimization of Instruction "
            "Fetch Mechanisms for High Issue Rates' (ISCA 1995)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, machines, schemes").set_defaults(
        func=_cmd_list
    )

    simulate = sub.add_parser("simulate", help="run one IPC simulation")
    simulate.add_argument("benchmark")
    simulate.add_argument("machine")
    simulate.add_argument("scheme")
    simulate.add_argument("--length", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--no-kernel",
        action="store_true",
        help=(
            "force the interpreted cycle loop instead of the compiled "
            "kernel (bit-identical statistics either way)"
        ),
    )
    simulate.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "run instrumented: print slot attribution and phase timings; "
            "with DIR, also write telemetry.jsonl + manifest.json there"
        ),
    )
    simulate.set_defaults(func=_cmd_simulate)

    eir = sub.add_parser("eir", help="fetch-only alignment efficiency")
    eir.add_argument("benchmark")
    eir.add_argument("machine")
    eir.add_argument("--length", type=int, default=30_000)
    eir.add_argument("--seed", type=int, default=0)
    eir.set_defaults(func=_cmd_eir)

    stats = sub.add_parser(
        "stats",
        help="telemetry slot-attribution breakdown across fetch schemes",
    )
    stats.add_argument("benchmark")
    stats.add_argument("machine")
    stats.add_argument(
        "--schemes",
        nargs="*",
        metavar="SCHEME",
        help="schemes to break down (default: hardware schemes + perfect)",
    )
    stats.add_argument("--length", type=int, default=20_000)
    stats.add_argument("--warmup", type=int, default=4_000)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--json", action="store_true")
    stats.add_argument(
        "--export-jsonl", metavar="PATH", help="write per-scheme records"
    )
    stats.add_argument(
        "--export-csv", metavar="PATH", help="write per-scheme records"
    )
    stats.add_argument(
        "--manifest", metavar="PATH", help="write a run-provenance manifest"
    )
    stats.set_defaults(func=_cmd_stats)

    characterize = sub.add_parser(
        "characterize", help="workload characterisation table"
    )
    characterize.add_argument("benchmarks", nargs="*")
    characterize.add_argument("--length", type=int, default=40_000)
    characterize.set_defaults(func=_cmd_characterize)

    experiment = sub.add_parser(
        "experiment", help="regenerate paper tables/figures"
    )
    experiment.add_argument("names", nargs="+", choices=list(EXPERIMENTS))
    experiment.add_argument("--json", action="store_true")
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.set_defaults(func=_cmd_experiment)

    ablation = sub.add_parser("ablation", help="run ablation studies")
    ablation.add_argument("names", nargs="+", help="ablation names, or 'all'")
    ablation.add_argument("--json", action="store_true")
    ablation.add_argument("--scale", type=float, default=1.0)
    ablation.set_defaults(func=_cmd_ablation)

    ablate = sub.add_parser(
        "ablate",
        help="declarative ablation studies (expand/execute/analyse)",
    )
    ablate_sub = ablate.add_subparsers(dest="action", required=True)
    ablate_list = ablate_sub.add_parser(
        "list", help="list the named study presets"
    )
    ablate_list.set_defaults(func=_cmd_ablate)
    ablate_run = ablate_sub.add_parser(
        "run", help="expand and execute a study, writing its reports"
    )
    ablate_run.add_argument(
        "spec", help="preset name or path to a JSON StudySpec"
    )
    ablate_run.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="output directory (default: $REPRO_STUDY_DIR/<study-name>)",
    )
    ablate_run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve jobs already journalled in the output directory "
            "(bit-identical results) and journal new completions there"
        ),
    )
    ablate_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 1 = serial)",
    )
    ablate_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout (default: none)",
    )
    ablate_run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per job after a crash/timeout (default: 2)",
    )
    ablate_run.add_argument("--scale", type=float, default=1.0)
    ablate_run.add_argument(
        "--json",
        action="store_true",
        help="print report.json to stdout instead of the summary",
    )
    ablate_run.set_defaults(func=_cmd_ablate)
    ablate_report = ablate_sub.add_parser(
        "report", help="re-render a finished study from its report.json"
    )
    ablate_report.add_argument("dir", help="study output directory")
    ablate_report.add_argument("--json", action="store_true")
    ablate_report.set_defaults(func=_cmd_ablate)

    sweep = sub.add_parser(
        "sweep", help="batch-simulate a benchmark x machine x scheme grid"
    )
    sweep.add_argument("--benchmarks", nargs="*", metavar="BENCH")
    sweep.add_argument("--machines", nargs="*", metavar="MACHINE")
    sweep.add_argument("--schemes", nargs="*", metavar="SCHEME")
    sweep.add_argument("--length", type=int, default=20_000)
    sweep.add_argument("--warmup", type=int, default=4_000)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 1 = serial)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-job wall-clock timeout; a stuck worker is terminated "
            "and the job retried (default: none)"
        ),
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "retries per job after a crash/timeout/exception, with "
            "exponential backoff (default: 2)"
        ),
    )
    sweep.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "append each completed job to DIR/journal.jsonl so an "
            "interrupted sweep can be resumed with --resume DIR"
        ),
    )
    sweep.add_argument(
        "--resume",
        metavar="DIR",
        help=(
            "serve jobs already completed in DIR/journal.jsonl "
            "(bit-identical results) and journal new completions there"
        ),
    )
    sweep.add_argument(
        "--sanitize",
        action="store_true",
        help="run every simulation under the pipeline sanitizer",
    )
    sweep.add_argument(
        "--no-kernel",
        action="store_true",
        help="force the interpreted loop for every job",
    )
    sweep.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "run every job instrumented (slot attribution in results); "
            "with DIR, write telemetry.jsonl + manifest.json there"
        ),
    )
    sweep.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "trace the sweep (REPRO_TRACE=1); with DIR, spill spans "
            "there for 'repro trace' (REPRO_TRACE_DIR)"
        ),
    )
    sweep.set_defaults(func=_cmd_sweep)

    check = sub.add_parser(
        "check",
        help="lint programs, configs, traces and fetch packets",
    )
    check.add_argument("--benchmarks", nargs="*", metavar="BENCH")
    check.add_argument("--machines", nargs="*", metavar="MACHINE")
    check.add_argument("--schemes", nargs="*", metavar="SCHEME")
    check.add_argument("--length", type=int, default=4_000)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--no-fetch",
        action="store_true",
        help="skip the packet-checked fetch pass (static layers only)",
    )
    check.add_argument(
        "--variants",
        nargs="*",
        default=["orig"],
        metavar="VARIANT",
        help="program variants to lint (orig reordered pad_all pad_trace)",
    )
    check.set_defaults(func=_cmd_check)

    lint = sub.add_parser(
        "lint",
        help="static analysis of the codebase (repro.analysis)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root to analyze (default: current directory)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: ROOT/lint_baseline.json)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report on stdout",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file",
    )
    lint.set_defaults(func=_cmd_lint)

    bench = sub.add_parser(
        "bench",
        help="single-simulation throughput: interpreted vs compiled kernel",
    )
    bench.add_argument("--benchmark", default="espresso")
    bench.add_argument("--machine", default="PI8")
    bench.add_argument("--scheme", default="interleaved_sequential")
    bench.add_argument("--length", type=int, default=20_000)
    bench.add_argument("--warmup", type=int, default=4_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing (default 3)"
    )
    bench.add_argument(
        "--kernel", action="store_true", help="measure only the compiled kernel"
    )
    bench.add_argument(
        "--no-kernel",
        action="store_true",
        help="measure only the interpreted loop",
    )
    bench.add_argument("--json", action="store_true")
    bench.add_argument(
        "--update",
        metavar="PATH",
        help="write the report into PATH as the 'compiled_kernel' section",
    )
    bench.add_argument(
        "--floor",
        type=int,
        default=None,
        metavar="INSN_PER_SEC",
        help="exit 1 if warm-kernel (or interpreted-only) throughput is lower",
    )
    bench.set_defaults(func=_cmd_bench)

    pipetrace = sub.add_parser(
        "pipetrace", help="cycle-by-cycle pipeline trace"
    )
    pipetrace.add_argument("benchmark")
    pipetrace.add_argument("machine")
    pipetrace.add_argument("scheme")
    pipetrace.add_argument("--cycles", type=int, default=40)
    pipetrace.add_argument("--length", type=int, default=4000)
    pipetrace.add_argument("--seed", type=int, default=0)
    pipetrace.set_defaults(func=_cmd_pipetrace)

    serve = sub.add_parser(
        "serve", help="start the HTTP/JSON simulation service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = in-process serial; default: cpu-based)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="max unfinished jobs before 429 (admission control)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds (timed-out jobs are retried)",
    )
    serve.add_argument("--retries", type=int, default=2)
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight jobs on SIGTERM",
    )
    serve.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method for workers",
    )
    serve.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "trace every request (REPRO_TRACE=1); with DIR, spill spans "
            "there for 'repro trace' (REPRO_TRACE_DIR)"
        ),
    )
    serve.add_argument(
        "--name",
        default="",
        help=(
            "replica name (prefixes job ids, e.g. r1-job-000001, so a "
            "cluster balancer can route polls to the owning replica)"
        ),
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress startup banner"
    )
    serve.set_defaults(func=_cmd_serve)

    balance = sub.add_parser(
        "balance",
        help="front a fleet of serve replicas with a balancer",
    )
    balance.add_argument("--host", default="127.0.0.1")
    balance.add_argument(
        "--port", type=int, default=8100, help="balancer listening port"
    )
    balance.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="number of serve replicas to spawn and supervise",
    )
    balance.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per replica (0 = in-process serial)",
    )
    balance.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="per-replica admission bound (429 beyond it)",
    )
    balance.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout passed to every replica",
    )
    balance.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "trace every request (REPRO_TRACE=1); with DIR, spill spans "
            "there for 'repro trace' (REPRO_TRACE_DIR)"
        ),
    )
    balance.add_argument(
        "--quiet", action="store_true", help="suppress startup banner"
    )
    balance.set_defaults(func=_cmd_balance)

    loadgen = sub.add_parser(
        "loadgen", help="benchmark a running simulation service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8000)
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--duration", type=float, default=5.0)
    loadgen.add_argument(
        "--output",
        default="BENCH_service_throughput.json",
        help="report path ('-' to skip writing)",
    )
    loadgen.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if the throughput/latency floors are missed",
    )
    loadgen.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "cluster gauntlet: verify every result bit-for-bit against "
            "an in-process reference and require zero failed requests "
            "(writes BENCH_cluster_throughput.json by default)"
        ),
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    trace = sub.add_parser(
        "trace",
        help="inspect recorded trace spans (timeline, critical path)",
    )
    trace.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace id (or unique prefix) to render; omit to list traces",
    )
    trace.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="span spill directory (default: REPRO_TRACE_DIR)",
    )
    trace.add_argument(
        "--latest",
        action="store_true",
        help="render the most recently started trace",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the critical-path (self-time) table (default 10)",
    )
    trace.add_argument(
        "--chrome",
        metavar="OUT.json",
        help="also export the trace as a Chrome/Perfetto trace-event file",
    )
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser("report", help="all paper artifacts")
    report.add_argument("--scale", type=float, default=1.0)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
