"""Basic blocks and their terminators.

A basic block is a straight-line sequence of non-control instructions
(``body``) followed by at most one control instruction (``terminator``).
Successor relationships are kept at the block level so the compiler passes
(trace layout, padding) can rearrange code without re-deriving control flow
from instruction addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass

#: Sentinel for "no successor block".
NO_BLOCK = -1


class TermKind(enum.IntEnum):
    """How control leaves a basic block."""

    FALLTHROUGH = 0  #: no control instruction; run into the next block
    COND = 1  #: conditional branch: taken -> ``taken_id``, else ``fall_id``
    JUMP = 2  #: unconditional jump to ``taken_id``
    CALL = 3  #: call ``taken_id``; resume at ``fall_id`` on return
    RET = 4  #: return to caller (or halt from the entry function)


_TERM_OPS = {
    TermKind.COND: OpClass.BR_COND,
    TermKind.JUMP: OpClass.JUMP,
    TermKind.CALL: OpClass.CALL,
    TermKind.RET: OpClass.RET,
}


@dataclass(slots=True, eq=False)
class BasicBlock:
    """One basic block of a program.

    Attributes:
        block_id: Dense integer id, assigned by the CFG.
        func_id: Id of the owning function.
        body: Non-control instructions in program order.
        term_kind: How control leaves the block.
        terminator: The control instruction, or ``None`` for FALLTHROUGH.
        taken_id: Successor when the terminator transfers control
            (COND taken, JUMP, CALL target).
        fall_id: Successor on the sequential path (FALLTHROUGH, COND
            not-taken, the return continuation of a CALL).
        branch_key: Stable identity of a conditional branch for the
            behaviour model; survives code reordering.
        flipped: True if trace layout inverted the branch condition, so
            the behaviour model must invert its taken probability.
        is_func_entry: True for the first block of a function.
    """

    block_id: int = NO_BLOCK
    func_id: int = -1
    body: list[Instruction] = field(default_factory=list)
    term_kind: TermKind = TermKind.FALLTHROUGH
    terminator: Instruction | None = None
    taken_id: int = NO_BLOCK
    fall_id: int = NO_BLOCK
    branch_key: int = -1
    flipped: bool = False
    is_func_entry: bool = False

    def validate(self) -> None:
        """Check internal consistency; raise ``ValueError`` on violation."""
        for instr in self.body:
            if instr.is_control:
                raise ValueError("control instruction inside block body")
        if self.term_kind is TermKind.FALLTHROUGH:
            if self.terminator is not None:
                raise ValueError("FALLTHROUGH block must not have a terminator")
            if self.fall_id == NO_BLOCK:
                raise ValueError("FALLTHROUGH block needs a fall_id")
        else:
            if self.terminator is None:
                raise ValueError(f"{self.term_kind.name} block needs a terminator")
            expected = _TERM_OPS[self.term_kind]
            if self.terminator.op is not expected:
                raise ValueError(
                    f"terminator op {self.terminator.op.name} does not match "
                    f"kind {self.term_kind.name}"
                )
        if self.term_kind is TermKind.COND:
            if self.taken_id == NO_BLOCK or self.fall_id == NO_BLOCK:
                raise ValueError("COND block needs taken_id and fall_id")
        if self.term_kind in (TermKind.JUMP, TermKind.CALL):
            if self.taken_id == NO_BLOCK:
                raise ValueError(f"{self.term_kind.name} block needs taken_id")
        if self.term_kind is TermKind.CALL and self.fall_id == NO_BLOCK:
            raise ValueError("CALL block needs a return continuation fall_id")
        if not self.body and self.terminator is None:
            raise ValueError("empty basic block")

    @property
    def instructions(self) -> list[Instruction]:
        """Body plus terminator, in program order."""
        if self.terminator is None:
            return list(self.body)
        return [*self.body, self.terminator]

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.body) + (1 if self.terminator is not None else 0)

    def successors(self) -> tuple[int, ...]:
        """Static successor block ids (CALL reports the callee entry)."""
        if self.term_kind is TermKind.FALLTHROUGH:
            return (self.fall_id,)
        if self.term_kind is TermKind.COND:
            return (self.taken_id, self.fall_id)
        if self.term_kind in (TermKind.JUMP, TermKind.CALL):
            return (self.taken_id,)
        return ()

    def taken_probability(self, base_probability: float) -> float:
        """Effective taken probability given the block's flip state."""
        return 1.0 - base_probability if self.flipped else base_probability
