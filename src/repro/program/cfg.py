"""Control-flow graph: the set of basic blocks plus function structure."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.basic_block import NO_BLOCK, BasicBlock, TermKind


@dataclass(slots=True)
class Function:
    """A function: a named region of blocks with a single entry block."""

    func_id: int
    name: str
    entry_id: int = NO_BLOCK
    block_ids: list[int] = field(default_factory=list)


class ControlFlowGraph:
    """Whole-program control-flow graph.

    Blocks are owned by the CFG and addressed by dense integer ids.  The
    entry function's entry block is where execution starts; a ``RET`` with
    an empty call stack halts the program.
    """

    def __init__(self) -> None:
        self._blocks: list[BasicBlock] = []
        self._functions: list[Function] = []
        self.entry_func_id: int = -1

    # -- construction -----------------------------------------------------

    def add_function(self, name: str) -> Function:
        """Create a new function and return it."""
        func = Function(func_id=len(self._functions), name=name)
        self._functions.append(func)
        if self.entry_func_id < 0:
            self.entry_func_id = func.func_id
        return func

    def add_block(self, block: BasicBlock, func: Function) -> int:
        """Install *block* into *func*; assigns and returns its id."""
        block.block_id = len(self._blocks)
        block.func_id = func.func_id
        if block.branch_key < 0:
            block.branch_key = block.block_id
        self._blocks.append(block)
        func.block_ids.append(block.block_id)
        if func.entry_id == NO_BLOCK:
            func.entry_id = block.block_id
            block.is_func_entry = True
        return block.block_id

    # -- access -----------------------------------------------------------

    @property
    def blocks(self) -> list[BasicBlock]:
        return self._blocks

    @property
    def functions(self) -> list[Function]:
        return self._functions

    def block(self, block_id: int) -> BasicBlock:
        return self._blocks[block_id]

    def function(self, func_id: int) -> Function:
        return self._functions[func_id]

    @property
    def entry_block_id(self) -> int:
        """Block id where execution starts."""
        if self.entry_func_id < 0:
            raise ValueError("CFG has no functions")
        return self._functions[self.entry_func_id].entry_id

    def num_instructions(self) -> int:
        """Total static instruction count."""
        return sum(block.size for block in self._blocks)

    def conditional_blocks(self) -> list[BasicBlock]:
        """All blocks ending in a conditional branch."""
        return [b for b in self._blocks if b.term_kind is TermKind.COND]

    def validate(self) -> None:
        """Validate every block and all successor references."""
        n = len(self._blocks)
        for block in self._blocks:
            block.validate()
            for succ in block.successors():
                if not 0 <= succ < n:
                    raise ValueError(
                        f"block {block.block_id} references unknown block {succ}"
                    )
            if block.term_kind is TermKind.CALL:
                callee = self._blocks[block.taken_id]
                if not callee.is_func_entry:
                    raise ValueError(
                        f"block {block.block_id} calls non-entry block "
                        f"{block.taken_id}"
                    )
