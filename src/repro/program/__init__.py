"""Program representation: basic blocks, CFG, layout, and a builder."""

from repro.program.basic_block import NO_BLOCK, BasicBlock, TermKind
from repro.program.builder import BuildError, ProgramBuilder
from repro.program.cfg import ControlFlowGraph, Function
from repro.program.program import LayoutError, Program, clone_cfg

__all__ = [
    "BasicBlock",
    "BuildError",
    "ControlFlowGraph",
    "Function",
    "LayoutError",
    "NO_BLOCK",
    "Program",
    "ProgramBuilder",
    "TermKind",
    "clone_cfg",
]
