"""A structured builder for constructing programs.

The builder offers a linear, assembler-like API with labels and forward
references.  Blocks are laid out in creation order, which automatically
satisfies the fall-through invariant.  Conditional branches carry a *taken
probability* used by the workload behaviour model; the builder collects
these into :attr:`ProgramBuilder.branch_probabilities`.

Example::

    b = ProgramBuilder("demo")
    b.begin_function("main")
    loop = b.new_label()
    b.bind(loop)
    b.ialu(1, 1, 2)
    b.branch_if(1, loop, probability=0.9)   # loop back 90% of the time
    b.ret()
    b.end_function()
    program = b.finish()
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.program.basic_block import BasicBlock, TermKind
from repro.program.cfg import ControlFlowGraph, Function
from repro.program.program import Program


class BuildError(ValueError):
    """Raised on invalid builder usage."""


@dataclass(slots=True)
class _PendingTarget:
    """A terminator whose taken target is a label or function name."""

    block_id: int
    label: int | None = None
    func_name: str | None = None


class ProgramBuilder:
    """Incrementally construct a :class:`~repro.program.program.Program`."""

    def __init__(self, name: str = "program", base_address: int = 0) -> None:
        self.name = name
        self.base_address = base_address
        self.cfg = ControlFlowGraph()
        #: taken probability per branch key, consumed by behaviour models.
        self.branch_probabilities: dict[int, float] = {}
        #: repeat correlation per branch key (see BranchBehavior.burstiness).
        self.branch_burstiness: dict[int, float] = {}
        self._order: list[int] = []
        self._current_func: Function | None = None
        self._current_body: list[Instruction] = []
        self._current_block_open = False
        self._label_to_block: dict[int, int] = {}
        self._next_label = 0
        self._pending: list[_PendingTarget] = []
        self._pending_labels: list[int] = []

    # -- functions ----------------------------------------------------------

    def begin_function(self, name: str) -> Function:
        if self._current_func is not None:
            raise BuildError("previous function not ended")
        self._current_func = self.cfg.add_function(name)
        self._open_block()
        return self._current_func

    def end_function(self) -> None:
        if self._current_func is None:
            raise BuildError("no function in progress")
        if self._current_block_open:
            raise BuildError(
                f"function {self._current_func.name!r} does not end in a "
                "control transfer"
            )
        self._current_func = None

    # -- labels ---------------------------------------------------------------

    def new_label(self) -> int:
        """Allocate a fresh label for later :meth:`bind`."""
        label = self._next_label
        self._next_label += 1
        return label

    def bind(self, label: int) -> None:
        """Bind *label* to the next instruction emitted."""
        if label in self._label_to_block:
            raise BuildError(f"label {label} bound twice")
        self._require_function()
        if not self._current_block_open:
            self._open_block()
        elif self._current_body:
            # End the running block; it falls through into the labelled one.
            sealed = self._seal_block(TermKind.FALLTHROUGH, None)
            self._open_block()
            self.cfg.block(sealed).fall_id = self._current_block_id
        self._pending_labels.append(label)

    # -- instruction emission -------------------------------------------------

    def emit(self, instr: Instruction) -> None:
        """Append a non-control instruction to the current block."""
        if instr.is_control:
            raise BuildError("use branch_if/jump/call/ret for control flow")
        self._require_open_block()
        self._current_body.append(instr)
        self._commit_labels()

    def ialu(self, dest: int, src1: int = NO_REG, src2: int = NO_REG) -> None:
        self.emit(Instruction(OpClass.IALU, dest=dest, src1=src1, src2=src2))

    def falu(self, dest: int, src1: int = NO_REG, src2: int = NO_REG) -> None:
        self.emit(Instruction(OpClass.FALU, dest=dest, src1=src1, src2=src2))

    def load(self, dest: int, addr_reg: int = NO_REG) -> None:
        self.emit(Instruction(OpClass.LOAD, dest=dest, src1=addr_reg))

    def store(self, value_reg: int, addr_reg: int = NO_REG) -> None:
        self.emit(Instruction(OpClass.STORE, src1=value_reg, src2=addr_reg))

    def nop(self) -> None:
        self.emit(Instruction(OpClass.NOP))

    # -- control flow -----------------------------------------------------------

    def branch_if(
        self,
        cond_reg: int,
        label: int,
        probability: float = 0.5,
        burstiness: float = 0.0,
    ) -> None:
        """End the block with a conditional branch to *label*.

        *probability* is the long-run chance the branch is taken;
        *burstiness* is the repeat correlation of consecutive outcomes
        (see :class:`~repro.workloads.behavior.BranchBehavior`).  Both are
        keyed by the block's branch key for the behaviour model.
        """
        if not 0.0 <= probability <= 1.0:
            raise BuildError(f"probability out of range: {probability}")
        if not 0.0 <= burstiness < 1.0:
            raise BuildError(f"burstiness out of range: {burstiness}")
        self._require_open_block()
        term = Instruction(OpClass.BR_COND, src1=cond_reg)
        block_id = self._seal_block(TermKind.COND, term)
        self._pending.append(_PendingTarget(block_id, label=label))
        key = self.cfg.block(block_id).branch_key
        self.branch_probabilities[key] = probability
        self.branch_burstiness[key] = burstiness
        self._open_block()
        self.cfg.block(block_id).fall_id = self._current_block_id

    def jump(self, label: int) -> None:
        """End the block with an unconditional jump to *label*."""
        self._require_open_block()
        term = Instruction(OpClass.JUMP)
        block_id = self._seal_block(TermKind.JUMP, term)
        self._pending.append(_PendingTarget(block_id, label=label))
        self._current_block_open = False

    def call(self, func_name: str) -> None:
        """End the block with a call to function *func_name*."""
        self._require_open_block()
        term = Instruction(OpClass.CALL)
        block_id = self._seal_block(TermKind.CALL, term)
        self._pending.append(_PendingTarget(block_id, func_name=func_name))
        self._open_block()
        self.cfg.block(block_id).fall_id = self._current_block_id

    def ret(self) -> None:
        """End the block with a return."""
        self._require_open_block()
        term = Instruction(OpClass.RET)
        self._seal_block(TermKind.RET, term)
        self._current_block_open = False

    # -- finish -----------------------------------------------------------------

    def finish(self) -> Program:
        """Resolve forward references and lay out the program."""
        if self._current_func is not None:
            raise BuildError(
                f"function {self._current_func.name!r} not ended"
            )
        by_name = {f.name: f for f in self.cfg.functions}
        for pending in self._pending:
            block = self.cfg.block(pending.block_id)
            if pending.func_name is not None:
                func = by_name.get(pending.func_name)
                if func is None:
                    raise BuildError(f"call to unknown function {pending.func_name!r}")
                block.taken_id = func.entry_id
            else:
                target = self._label_to_block.get(pending.label)
                if target is None:
                    raise BuildError(f"label {pending.label} never bound")
                block.taken_id = target
        return Program.from_order(
            self.cfg, self._order, base_address=self.base_address, name=self.name
        )

    # -- internals ---------------------------------------------------------------

    @property
    def _current_block_id(self) -> int:
        return self._order[-1]

    def _require_function(self) -> None:
        if self._current_func is None:
            raise BuildError("no function in progress")

    def _require_open_block(self) -> None:
        self._require_function()
        if not self._current_block_open:
            self._open_block()

    def _open_block(self) -> None:
        block = BasicBlock()
        self.cfg.add_block(block, self._current_func)
        self._order.append(block.block_id)
        self._current_body = block.body
        self._current_block_open = True

    def _commit_labels(self) -> None:
        """Attach labels waiting for the first instruction of this block."""
        for label in self._pending_labels:
            self._label_to_block[label] = self._current_block_id
        self._pending_labels.clear()

    def _seal_block(self, kind: TermKind, terminator: Instruction | None) -> int:
        self._commit_labels()
        block = self.cfg.block(self._current_block_id)
        block.term_kind = kind
        block.terminator = terminator
        self._current_block_open = False
        return block.block_id
