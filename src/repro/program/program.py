"""Program: a CFG laid out in instruction memory.

Layout assigns a contiguous word address to every instruction in block
order, patches control-transfer targets, and enforces the fall-through
invariant: any block whose sequential successor (``fall_id``) is executed
by *falling through* (FALLTHROUGH, COND not-taken, CALL return) must be
immediately followed in memory by that successor.  Compiler passes that
permute blocks are responsible for inserting fix-up jumps to preserve the
invariant; :meth:`Program.from_order` checks it.
"""

from __future__ import annotations

import copy

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.program.basic_block import NO_BLOCK, BasicBlock, TermKind
from repro.program.cfg import ControlFlowGraph


class LayoutError(ValueError):
    """Raised when a block order violates the fall-through invariant."""


class Program:
    """An executable program: CFG + memory layout.

    Use :meth:`from_order` (or the :class:`~repro.program.builder.
    ProgramBuilder`) to construct one; the constructor performs layout.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        block_order: list[int],
        base_address: int = 0,
        name: str = "program",
    ) -> None:
        self.cfg = cfg
        self.block_order = list(block_order)
        self.base_address = base_address
        self.name = name
        self.instructions: list[Instruction] = []
        self.block_start: dict[int, int] = {}
        self._layout()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_order(
        cls,
        cfg: ControlFlowGraph,
        block_order: list[int] | None = None,
        base_address: int = 0,
        name: str = "program",
    ) -> "Program":
        """Lay out *cfg* using *block_order* (default: block-id order)."""
        if block_order is None:
            block_order = [b.block_id for b in cfg.blocks]
        return cls(cfg, block_order, base_address=base_address, name=name)

    def _layout(self) -> None:
        cfg = self.cfg
        order = self.block_order
        if sorted(order) != list(range(len(cfg.blocks))):
            raise LayoutError("block order must be a permutation of all blocks")
        cfg.validate()

        # Assign addresses.
        addr = self.base_address
        self.instructions = []
        self.block_start = {}
        for block_id in order:
            block = cfg.block(block_id)
            self.block_start[block_id] = addr
            for instr in block.instructions:
                instr.address = addr
                instr.block_id = block_id
                self.instructions.append(instr)
                addr += 1

        # Enforce the fall-through invariant and patch targets.
        position = {block_id: i for i, block_id in enumerate(order)}
        for block_id in order:
            block = cfg.block(block_id)
            if block.term_kind in (
                TermKind.FALLTHROUGH,
                TermKind.COND,
                TermKind.CALL,
            ):
                pos = position[block_id]
                if pos + 1 >= len(order) or order[pos + 1] != block.fall_id:
                    raise LayoutError(
                        f"block {block_id} falls through to {block.fall_id}, "
                        "which is not physically next"
                    )
            if block.terminator is not None and block.taken_id != NO_BLOCK:
                block.terminator.target = self.block_start[block.taken_id]

    # -- queries -----------------------------------------------------------

    @property
    def entry_address(self) -> int:
        """Address of the first instruction executed."""
        return self.block_start[self.cfg.entry_block_id]

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def end_address(self) -> int:
        """One past the last instruction address."""
        return self.base_address + len(self.instructions)

    def instruction_at(self, address: int) -> Instruction:
        """Instruction stored at word *address*."""
        index = address - self.base_address
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"address out of program range: {address}")
        return self.instructions[index]

    def block_at(self, address: int) -> BasicBlock:
        """Block owning the instruction at *address*."""
        return self.cfg.block(self.instruction_at(address).block_id)

    def image(self) -> bytes:
        """Binary image of the program (4 bytes per instruction)."""
        words = bytearray()
        for instr in self.instructions:
            words += encode(instr).to_bytes(4, "little")
        return bytes(words)

    def static_nop_fraction(self) -> float:
        """Fraction of static instructions that are nops."""
        if not self.instructions:
            return 0.0
        nops = sum(1 for i in self.instructions if i.is_nop)
        return nops / len(self.instructions)


def clone_cfg(cfg: ControlFlowGraph) -> ControlFlowGraph:
    """Deep-copy a CFG so a transform can relayout without aliasing.

    Instruction objects are copied (addresses/targets will be reassigned);
    block ids, function structure, branch keys and flip state are preserved.
    """
    return copy.deepcopy(cfg)
