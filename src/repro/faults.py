"""Deterministic, opt-in fault injection (`repro.faults`).

Chaos testing for the sweep engine: the supervisor, the persistent
result cache and the retry machinery all claim to survive worker
crashes, hangs, transient exceptions and corrupt cache entries — this
module makes those events happen *on demand and reproducibly* so the
chaos test suite (and the CI chaos-smoke job) can prove every recovery
path instead of waiting for production to exercise it.

Activation is purely environmental: ``REPRO_FAULTS=<spec>`` arms the
harness for the process and every worker it spawns (the variable is
inherited across ``fork`` and ``spawn``).  When the variable is unset
the plan parses to ``None`` once per process and every hook is a
memoised ``None`` check — injection sites live at per-job / per-cache-op
granularity, never inside the cycle loop, so simulation results are
bit-identical and the hot path is untouched either way.

Spec grammar (clauses joined by ``;``)::

    REPRO_FAULTS ::= clause (';' clause)*
    clause       ::= 'seed' '=' INT            # global schedule seed
                   | SITE '=' KIND (':' param)*
    param        ::= 'p' '=' FLOAT             # injection probability (default 1)
                   | 'n' '=' INT               # max injections per process
                   | 'a' '=' INT               # only attempts <= a (default: all)
                   | 's' '=' FLOAT             # hang duration seconds (default 3600)

Example: ``REPRO_FAULTS="seed=7;batch.worker=crash:p=0.3:a=1;cache.load=corrupt:n=2"``.

Sites and the kinds they honour:

========================  ===========================  =========================
site                      fired from                   kinds
========================  ===========================  =========================
``batch.worker``          supervisor job wrapper       ``crash`` ``hang`` ``exc``
``sim.run``               ``Simulator.run()`` entry    ``hang`` ``exc``
``sim.kernel``            compiled-kernel selection    ``exc``
``sim.stats``             ``experiments.common``       ``hang`` ``exc``
``cache.load``            result-cache load            ``corrupt``
``cache.store``           result-cache store           ``oserror``
``service.queue``         service job admission        ``exc``
``service.handoff``       pool worker dispatch         ``exc``
``service.replica``       cluster replica monitor      ``crash`` ``hang`` ``exc``
``cache.shard``           sharded cache shard I/O      ``oserror``
``telemetry.trace``       flight-recorder append       ``exc``
========================  ===========================  =========================

The two ``service.*`` sites chaos-test the job server: an injected
``service.queue`` failure must reject the request cleanly *before* it is
accepted (HTTP 503, nothing lost), and ``service.handoff`` (tokened by
job index + attempt, like ``batch.worker``) costs the dispatch one
retry attempt without losing the accepted job.  ``sim.kernel`` is
special: an injected fault there does not fail the run — it makes
``Simulator.run()`` degrade to the interpreted loop (decline reason
``fault-injected``) with bit-identical statistics.  ``telemetry.trace``
fires on every flight-recorder append and is likewise non-fatal by
construction: an injected fault drops that span (counted in the
recorder's ``dropped``) without ever failing the traced operation.

The cluster tier (PR 9) adds two *advisory* sites the call sites apply
themselves: ``service.replica`` fires once per monitor tick per replica
in the :class:`~repro.service.cluster.ClusterManager` — ``crash``
SIGKILLs the replica process (the manager respawns it), ``hang``
SIGSTOPs it for ``s`` seconds (the balancer ejects and later recovers
it), ``exc`` degrades to :class:`FaultInjected` inside the monitor —
and ``cache.shard`` fires on sharded result-cache I/O, where
``oserror`` poisons that shard's reads/writes with ``EROFS`` so the
shard (and only that shard) degrades to compute-through.

Determinism: a *tokened* site (``batch.worker`` passes the job index as
token and the retry attempt number) decides by hashing ``(seed, site,
token)`` — the same job's same attempt injects identically in any
process, which is what lets a chaos sweep converge (``a=1`` fails every
first attempt and passes every retry).  An untokened site draws from a
per-site RNG stream seeded by ``(seed, site)`` advanced by a per-process
hit counter — the schedule of inject/skip decisions is a pure function
of the spec and seed (:meth:`FaultPlan.schedule`).

Effects: ``crash`` calls ``os._exit(FAULT_EXIT_CODE)`` — but only in a
supervised worker (:func:`mark_worker`); anywhere else it degrades to a
:class:`FaultInjected` exception so a chaos run can never kill the
parent or a plain CLI process.  ``hang`` sleeps ``s`` seconds in a
worker (the supervisor's timeout reclaims it) and also degrades to
``FaultInjected`` elsewhere.  ``corrupt``/``oserror`` are *advisory*:
the cache asks :func:`decide` and applies the damage itself.

See ``docs/robustness.md`` for the full operations story.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass

from repro import knobs

#: Exit status of an injected worker crash (distinct from Python's 1).
FAULT_EXIT_CODE = 70

#: Every declared injection site, mirroring the table above.  This is
#: the machine-readable site list the ``repro lint`` fault-site audit
#: (:mod:`repro.analysis.fault_sites`) cross-checks: every
#: ``decide``/``maybe_fail`` call in ``src/`` must name a site declared
#: here (A030), every declared site must still be fired somewhere
#: (A031), and every site must appear in the chaos test suites (A032).
SITES = (
    "batch.worker",
    "sim.run",
    "sim.kernel",
    "sim.stats",
    "cache.load",
    "cache.store",
    "service.queue",
    "service.handoff",
    "service.replica",
    "cache.shard",
    "telemetry.trace",
)

#: Kinds whose effect this module performs (vs. advisory kinds the call
#: site applies itself).
BEHAVIOURAL_KINDS = ("crash", "hang", "exc")
ADVISORY_KINDS = ("corrupt", "oserror")
KINDS = BEHAVIOURAL_KINDS + ADVISORY_KINDS


class FaultSpecError(ValueError):
    """Malformed ``REPRO_FAULTS`` specification."""


class FaultInjected(RuntimeError):
    """The transient exception raised by ``exc`` faults (and by
    ``crash``/``hang`` outside a supervised worker)."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One armed site: what to inject, how often, for how long."""

    site: str
    kind: str
    probability: float = 1.0
    #: Per-process cap on injections at this site (``n=``); ``None`` = unlimited.
    max_injections: int | None = None
    #: Inject only when the caller's attempt number is <= this (``a=``).
    max_attempt: int | None = None
    #: Hang duration in seconds (``s=``).
    seconds: float = 3600.0


def _stable_seed(seed: int, site: str, token: object = None) -> int:
    payload = f"{seed}:{site}:{token!r}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class FaultPlan:
    """Parsed spec plus the per-process injection state."""

    def __init__(self, rules: dict[str, FaultRule], seed: int = 0) -> None:
        self.rules = rules
        self.seed = seed
        self._streams: dict[str, random.Random] = {}
        self._hits: dict[str, int] = {}
        self._injected: dict[str, int] = {}

    def injected(self, site: str) -> int:
        """How many times *site* has injected in this process."""
        return self._injected.get(site, 0)

    def decide(
        self, site: str, token: object = None, attempt: int = 1
    ) -> FaultRule | None:
        """Advance *site*'s schedule one hit; return its rule to inject.

        Tokened decisions hash ``(seed, site, token, attempt)`` and are
        identical in every process; untokened ones consume the site's
        seeded RNG stream (deterministic per process).
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        self._hits[site] = self._hits.get(site, 0) + 1
        if rule.max_attempt is not None and attempt > rule.max_attempt:
            return None
        if (
            rule.max_injections is not None
            and self._injected.get(site, 0) >= rule.max_injections
        ):
            return None
        if token is not None:
            draw = random.Random(
                _stable_seed(self.seed, site, (token, attempt))
            ).random()
        else:
            stream = self._streams.get(site)
            if stream is None:
                stream = random.Random(_stable_seed(self.seed, site))
                self._streams[site] = stream
            draw = stream.random()
        if draw >= rule.probability:
            return None
        self._injected[site] = self._injected.get(site, 0) + 1
        return rule

    def schedule(self, site: str, hits: int) -> list[bool]:
        """The first *hits* untokened inject/skip decisions for *site*,
        computed from a fresh stream (pure; does not advance state)."""
        rule = self.rules.get(site)
        if rule is None:
            return [False] * hits
        stream = random.Random(_stable_seed(self.seed, site))
        decisions: list[bool] = []
        injected = 0
        for _ in range(hits):
            inject = stream.random() < rule.probability
            if (
                rule.max_injections is not None
                and injected >= rule.max_injections
            ):
                inject = False
            if inject:
                injected += 1
            decisions.append(inject)
        return decisions


def parse_spec(spec: str) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` string; ``None`` for an empty spec."""
    rules: dict[str, FaultRule] = {}
    seed = 0
    for raw_clause in spec.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        head, _, tail = clause.partition("=")
        site = head.strip()
        if not tail:
            raise FaultSpecError(
                f"clause {clause!r} is not 'site=kind[:params]' or 'seed=N'"
            )
        if site == "seed":
            try:
                seed = int(tail.strip())
            except ValueError as exc:
                raise FaultSpecError(f"bad seed in {clause!r}") from exc
            continue
        parts = [part.strip() for part in tail.split(":")]
        kind = parts[0]
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {clause!r}; known: {KINDS}"
            )
        probability, max_injections, max_attempt, seconds = 1.0, None, None, 3600.0
        for param in parts[1:]:
            name, eq, value = param.partition("=")
            name, value = name.strip(), value.strip()
            if not eq:
                raise FaultSpecError(f"bad parameter {param!r} in {clause!r}")
            try:
                if name == "p":
                    probability = float(value)
                elif name == "n":
                    max_injections = int(value)
                elif name == "a":
                    max_attempt = int(value)
                elif name == "s":
                    seconds = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown parameter {name!r} in {clause!r} "
                        "(known: p, n, a, s)"
                    )
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad value for {name!r} in {clause!r}"
                ) from exc
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(f"probability out of [0, 1] in {clause!r}")
        if site in rules:
            raise FaultSpecError(f"duplicate site {site!r}")
        rules[site] = FaultRule(
            site=site,
            kind=kind,
            probability=probability,
            max_injections=max_injections,
            max_attempt=max_attempt,
            seconds=seconds,
        )
    if not rules:
        return None
    return FaultPlan(rules, seed=seed)


# -- per-process state --------------------------------------------------------

_plan: FaultPlan | None = None
_parsed = False
_in_worker = False


def plan() -> FaultPlan | None:
    """The process's armed plan (parsed from ``REPRO_FAULTS`` once), or
    ``None`` when fault injection is off."""
    global _plan, _parsed
    if not _parsed:
        spec = knobs.raw("REPRO_FAULTS")
        _plan = parse_spec(spec) if spec else None
        _parsed = True
    return _plan


def reload() -> FaultPlan | None:
    """Drop the memoised plan and re-parse the environment (tests; call
    after changing ``REPRO_FAULTS`` mid-process)."""
    global _parsed, _plan
    _parsed = False
    _plan = None
    return plan()


def mark_worker(active: bool = True) -> None:
    """Tell the harness this process is a supervised batch worker, where
    a ``crash`` fault may really ``os._exit`` (the supervisor respawns
    it).  Everywhere else ``crash``/``hang`` degrade to
    :class:`FaultInjected` so injection can never kill an unsupervised
    process or freeze a serial run."""
    global _in_worker
    _in_worker = active


def decide(site: str, token: object = None, attempt: int = 1) -> str | None:
    """Advisory hook: the kind to inject at *site* now, or ``None``.

    Used by sites that apply the damage themselves (cache corruption,
    injected ``OSError``).  Zero work when the harness is off.
    """
    active = plan()
    if active is None:
        return None
    rule = active.decide(site, token=token, attempt=attempt)
    return rule.kind if rule is not None else None


def maybe_fail(site: str, token: object = None, attempt: int = 1) -> None:
    """Behavioural hook: crash, hang or raise here if the schedule says
    so.  Zero work when the harness is off."""
    active = plan()
    if active is None:
        return
    rule = active.decide(site, token=token, attempt=attempt)
    if rule is None:
        return
    if rule.kind == "crash" and _in_worker:
        os._exit(FAULT_EXIT_CODE)
    if rule.kind == "hang" and _in_worker:
        time.sleep(rule.seconds)
        return
    # exc — and crash/hang degraded outside a supervised worker.
    raise FaultInjected(f"injected {rule.kind} at {site}")
