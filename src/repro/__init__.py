"""repro — reproduction of Conte, Menezes, Mills & Patel (ISCA 1995),
"Optimization of Instruction Fetch Mechanisms for High Issue Rates".

Quick start::

    from repro import PI8, load_workload, run_workload

    stats = run_workload("compress", PI8, "collapsing_buffer")
    print(stats.ipc, stats.eir)

Layers (see DESIGN.md):

* :mod:`repro.isa` / :mod:`repro.program` — instruction set and CFG model
* :mod:`repro.workloads` — synthetic SPEC92-style benchmark suite
* :mod:`repro.memory` / :mod:`repro.branch` — I-cache and interleaved BTB
* :mod:`repro.fetch` — the paper's fetch/alignment schemes
* :mod:`repro.core` — Tomasulo out-of-order execution core
* :mod:`repro.compiler` — trace selection/layout, nop padding, scheduler
* :mod:`repro.machines` / :mod:`repro.sim` — PI4/PI8/PI12 and the driver
* :mod:`repro.experiments` — every table and figure of the paper
"""

from repro.compiler import pad_all, pad_trace, reorder_program
from repro.fetch import (
    ALL_SCHEMES,
    HARDWARE_SCHEMES,
    create_fetch_unit,
)
from repro.machines import MACHINES, PI4, PI8, PI12, MachineConfig, get_machine
from repro.sim import (
    SimStats,
    Simulator,
    measure_eir,
    run_program,
    run_trace,
    run_workload,
)
from repro.workloads import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INTEGER_BENCHMARKS,
    Workload,
    generate_trace,
    load_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "ALL_SCHEMES",
    "FP_BENCHMARKS",
    "HARDWARE_SCHEMES",
    "INTEGER_BENCHMARKS",
    "MACHINES",
    "MachineConfig",
    "PI4",
    "PI8",
    "PI12",
    "SimStats",
    "Simulator",
    "Workload",
    "create_fetch_unit",
    "generate_trace",
    "get_machine",
    "load_workload",
    "measure_eir",
    "pad_all",
    "pad_trace",
    "reorder_program",
    "run_program",
    "run_trace",
    "run_workload",
    "__version__",
]
