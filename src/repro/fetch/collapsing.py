"""The *collapsing buffer* scheme — the paper's contribution (Section 3.3).

Extends banked sequential with a buffer that *collapses* the gap between
an intra-block taken branch and its target, so the target instruction
follows the branch in the decoder (merging).  The controller modelled in
the paper handles **forward** intra-block branches (multiple per block)
plus one inter-block branch per fetch; backward intra-block branches are
not supported (the crossbar implementation could, but the paper's
controller does not).

Two implementations are sketched in paper Figure 8 — a shifter and a
bus-based crossbar (cost models in :mod:`repro.fetch.alignment`).  The
crossbar keeps the fetch misprediction penalty at two cycles; the shifter
raises it to three (evaluated in paper Figure 11 via
``MachineConfig.with_fetch_penalty(3)``).
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan, FetchUnit


class CollapsingBufferFetch(FetchUnit):
    """Finely-banked fetch with intra-block gap collapsing.

    Paper Figure 7 draws the collapsing buffer's cache with one bank per
    instruction slot (four at PI4), unlike the two-bank organisation of
    interleaved/banked sequential (Figure 4) — so successor-block bank
    interference is proportionally rarer here.
    """

    name = "collapsing_buffer"
    num_banks = 2  # class default; per-machine value set in __init__

    def __init__(self, config, trace, **kwargs) -> None:
        self.num_banks = config.words_per_block
        super().__init__(config, trace, **kwargs)

    def _walk_collapsing(
        self,
        start: int,
        block: int,
        limit: int,
        plan: FetchPlan,
    ) -> int:
        """Walk within *block*, collapsing forward intra-block branches.

        Returns the predicted target when a taken branch *leaves* the walk
        (inter-block target, or an un-collapsible backward intra-block
        target), else -1 when the walk ends sequentially.  Sets
        ``plan.next_address``.
        """
        end = self._block_end(block)
        predict = self._slot_predictor
        address = start
        while address < end and len(plan.addresses) < limit:
            plan.addresses.append(address)
            prediction = predict(address)
            if prediction.taken:
                target = prediction.target
                if self._block_of(target) == block and target > address:
                    # Forward intra-block branch: collapse the gap and keep
                    # delivering from the target in the same block.
                    address = target
                    continue
                plan.next_address = target
                plan.break_reason = "taken_branch"
                return target
            address += 1
        plan.next_address = address
        plan.break_reason = (
            "full" if len(plan.addresses) >= limit else "alignment"
        )
        return -1

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        block = self._block_of(fetch_address)
        if not self.cache.access(block):
            self.cache.fill(block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)

        plan = FetchPlan()
        target = self._walk_collapsing(fetch_address, block, limit, plan)
        if len(plan.addresses) >= limit:
            return plan

        if target >= 0:
            successor_block = self._block_of(target)
            if successor_block == block:
                # Backward intra-block branch: the modelled controller does
                # not collapse it; stop at the branch.
                return plan
            successor_start = target
        else:
            successor_block = block + 1
            successor_start = self._block_end(block)

        if self.cache.bank_of(successor_block) == self.cache.bank_of(block):
            plan.break_reason = "bank_conflict"
            return plan
        if not self.cache.access(successor_block):
            self.cache.fill(successor_block)
            plan.break_reason = "cache_miss"
            return plan

        self._walk_collapsing(successor_start, successor_block, limit, plan)
        return plan
