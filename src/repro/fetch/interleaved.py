"""The *interleaved sequential* scheme (paper Figure 4, Section 3.1).

The I-cache is split into two banks and the next sequential block is
prefetched alongside the fetch block, so a fetch run may span a block
boundary.  Delivery still terminates at the first predicted-taken branch:
non-sequential accesses are not possible.  The interchange switch restores
bank order and the valid-select logic picks the valid instructions (their
logic-level cost models live in :mod:`repro.fetch.alignment`).
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan, FetchUnit


class InterleavedSequentialFetch(FetchUnit):
    """Two-bank sequential fetch with next-block prefetch."""

    name = "interleaved_sequential"
    num_banks = 2

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        block = self._block_of(fetch_address)
        if not self.cache.access(block):
            self.cache.fill(block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)
        # Consecutive blocks always map to different banks, so the
        # sequential prefetch never conflicts.  A prefetch miss merely
        # truncates this cycle's run at the block boundary (the block is
        # filled for the next access).
        stop_block = block
        prefetch_missed = False
        if self.cache.access(block + 1):
            stop_block = block + 1
        else:
            self.cache.fill(block + 1)
            prefetch_missed = True
        plan = FetchPlan()
        self._walk_sequential(
            fetch_address, self._block_end(stop_block), limit, plan
        )
        if prefetch_missed and plan.break_reason == "alignment":
            # The run reached the boundary only because the prefetched
            # successor block was absent.
            plan.break_reason = "cache_miss"
        return plan
