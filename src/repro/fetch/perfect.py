"""The *perfect* fetch bound (paper Section 3).

"The upper bound of instruction fetch bandwidth is when the pipeline is
never starved due to a lack of instructions ... perfect assumes that the
instruction memory bandwidth into the scheduling window is unlimited (in
the absence of instruction cache misses)."

Perfect is therefore an *alignment* bound, not a prediction oracle: it
follows the same BTB-predicted path as the hardware schemes, but delivers
a full issue group every cycle regardless of block boundaries, bank
conflicts, or how many taken branches the group crosses.  Branch
mispredictions cost the same as everywhere else, and I-cache misses still
stall fetch — which is why ``EIR(perfect)`` falls short of the ideal
issue rate (paper Section 3.4).
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan, FetchUnit


class PerfectFetch(FetchUnit):
    """Upper-bound fetch: unlimited alignment capability."""

    name = "perfect"
    num_banks = 1

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        plan = FetchPlan()
        first_block = self._block_of(fetch_address)
        if not self.cache.access(first_block):
            self.cache.fill(first_block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)

        seen_blocks = {first_block}
        address = fetch_address
        plan.break_reason = "full"
        while len(plan.addresses) < limit:
            block = self._block_of(address)
            if block not in seen_blocks:
                if not self.cache.access(block):
                    # Fill in the background; the group truncates just
                    # before the missing block.
                    self.cache.fill(block)
                    plan.break_reason = "cache_miss"
                    break
                seen_blocks.add(block)
            plan.addresses.append(address)
            prediction = self._slot_predictor(address)
            address = prediction.target if prediction.taken else address + 1
        plan.next_address = address
        return plan
