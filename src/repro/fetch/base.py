"""Fetch-unit framework shared by all alignment schemes.

Each scheme plans a *predicted path* for one fetch cycle from nothing but
addresses, the I-cache and the interleaved BTB — exactly the information
the hardware has.  The trace-driven harness then compares the plan with
the known dynamic trace:

* matching prefix -> delivered (correct-path) instructions;
* first divergence -> the immediately preceding control instruction was
  mispredicted; delivery truncates there, fetch stalls until the branch
  resolves in the core, and resumes ``fetch_penalty`` cycles later;
* a plan whose *continuation address* disagrees with the trace is equally
  a misprediction charged to the last delivered instruction.

This reproduces the paper's penalty model: the fetch misprediction
penalty (two cycles; three for the shifter collapsing buffer) plus the
instruction-stream-dependent time until the branch resolves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.branch.btb import BranchTargetBuffer, BTBPrediction
from repro.branch.predictors import DirectionPredictor
from repro.branch.ras import ReturnAddressStack
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.machines.config import MachineConfig
from repro.memory.icache import InstructionCache
from repro.workloads.trace import DynamicTrace

if TYPE_CHECKING:
    from repro.check.sanitizer import PacketChecker


@dataclass(slots=True)
class FetchPlan:
    """A scheme's plan for one cycle.

    Attributes:
        addresses: Predicted instruction addresses to deliver, in order.
        next_address: Where fetch believes the stream continues after the
            last planned address.
        stall_cycles: If positive, an I-cache miss: deliver nothing and
            stall this many cycles (the missing block has been filled).
        break_reason: Why the plan stopped short of the issue width —
            ``"full"`` (it didn't), ``"taken_branch"``, ``"alignment"``
            (block boundary / structural limit), ``"bank_conflict"``, or
            ``"cache_miss"`` (successor block missing).  Telemetry maps
            it to a slot-attribution cause
            (:mod:`repro.telemetry.attribution`).
    """

    addresses: list[int] = field(default_factory=list)
    next_address: int = -1
    stall_cycles: int = 0
    break_reason: str = ""


@dataclass(slots=True)
class FetchResult:
    """Outcome of one fetch cycle.

    Attributes:
        instructions: Correct-path instructions delivered to decode.
        mispredict: True if the last delivered instruction was a
            mispredicted control transfer; fetch must stall until it
            resolves.
        stall_cycles: I-cache miss stall (no delivery this cycle).
        break_reason: The plan's :attr:`FetchPlan.break_reason`, passed
            through for slot attribution.
    """

    instructions: list[Instruction]
    mispredict: bool = False
    stall_cycles: int = 0
    break_reason: str = ""

    @property
    def delivered(self) -> int:
        return len(self.instructions)


@dataclass(slots=True)
class FetchStats:
    """Aggregate fetch-unit statistics."""

    cycles: int = 0
    delivered: int = 0
    mispredicts: int = 0
    cache_stall_cycles: int = 0
    full_deliveries: int = 0  #: cycles delivering a full issue group


class FetchUnit(ABC):
    """Base class for the paper's fetch/alignment schemes.

    Subclasses define :attr:`num_banks` and implement :meth:`plan`.
    """

    #: Scheme name used in reports (overridden by subclasses).
    name: str = "abstract"
    #: I-cache banks the scheme requires.
    num_banks: int = 1
    #: Optional packet-legality checker (``repro.check``): when set,
    #: every delivered plan is verified against the scheme's declarative
    #: capability rules before it is compared with the trace.
    checker: "PacketChecker | None" = None

    def __init__(
        self,
        config: MachineConfig,
        trace: DynamicTrace,
        direction_predictor: DirectionPredictor | None = None,
        return_stack: ReturnAddressStack | None = None,
        num_banks: int | None = None,
    ) -> None:
        """Create the unit.

        The optional *direction_predictor* replaces the BTB's 2-bit
        counters for conditional-branch direction (targets still come
        from the BTB); the optional *return_stack* predicts return
        targets.  Both are extensions beyond the paper's baseline,
        used by the predictor ablations (the conclusion asks whether a
        better predictor makes the shifter collapsing buffer viable).
        *num_banks* overrides the scheme's cache banking (ablations).
        """
        self.config = config
        self.trace = trace
        self.direction_predictor = direction_predictor
        self.return_stack = return_stack
        if num_banks is not None:
            self.num_banks = num_banks
        self.block_words = config.words_per_block
        self.cache = InstructionCache(
            size_bytes=config.icache_bytes,
            block_bytes=config.icache_block_bytes,
            num_banks=self.num_banks,
            miss_latency=config.icache_miss_latency,
        )
        self.btb = BranchTargetBuffer(
            num_entries=config.btb_entries,
            interleave=config.words_per_block,
        )
        self.stats = FetchStats()
        #: Precomputed trace address array (the trace is complete by the
        #: time a unit is built); :meth:`fetch_cycle` compares plans
        #: against plain ints instead of touching Instruction objects.
        self._trace_addresses = trace.address_array()
        #: Per-slot prediction hook for the planning walks.  Without the
        #: optional direction predictor and return stack (the paper's
        #: baseline) :meth:`predict_slot` reduces to a plain BTB lookup,
        #: so the walks skip the wrapper entirely.
        if direction_predictor is None and return_stack is None:
            self._slot_predictor = self.btb.predict
        else:
            self._slot_predictor = self.predict_slot

    # -- the per-scheme planning step ---------------------------------------

    @abstractmethod
    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        """Plan one fetch cycle starting at *fetch_address*.

        *limit* caps the number of addresses planned (window space and
        issue width).  Implementations may only use addresses, the cache
        and the BTB — never the trace.
        """

    # -- harness ------------------------------------------------------------

    def fetch_cycle(self, position: int, limit: int) -> FetchResult:
        """Run one fetch cycle at trace *position*; see module docstring."""
        trace = self.trace.instructions
        addresses = self._trace_addresses
        total = len(trace)
        if position >= total or limit <= 0:
            return FetchResult([])
        self.stats.cycles += 1
        fetch_address = addresses[position]
        width = min(limit, self.config.issue_rate)
        plan = self.plan(fetch_address, width)
        if plan.stall_cycles > 0:
            self.stats.cache_stall_cycles += plan.stall_cycles
            return FetchResult([], stall_cycles=plan.stall_cycles)
        if self.checker is not None:
            self.checker.check_plan(self, fetch_address, plan, width)

        matched = 0
        mispredict = False
        plan_addresses = plan.addresses
        count = len(plan_addresses)
        if (
            position + count <= total
            and addresses[position : position + count] == plan_addresses
        ):
            # Common case — the whole plan matches (one C-level compare).
            matched = count
        else:
            for planned_address in plan_addresses:
                index = position + matched
                if index >= total:
                    break
                if addresses[index] != planned_address:
                    mispredict = True
                    break
                matched += 1
        if not mispredict:
            cont = position + matched
            if cont < total and plan.next_address != addresses[cont]:
                mispredict = True
        if matched == 0:
            # The plan always starts at the actual fetch address.
            raise AssertionError("fetch plan diverged at its own fetch address")

        delivered = trace[position : position + matched]
        self.stats.delivered += matched
        if mispredict:
            self.stats.mispredicts += 1
        if matched == self.config.issue_rate:
            self.stats.full_deliveries += 1
        return FetchResult(
            delivered, mispredict=mispredict, break_reason=plan.break_reason
        )

    def wrong_path_cycle(self, address: int, limit: int) -> int:
        """Fetch one *wrong-path* cycle starting at *address*.

        Used by the optional wrong-path-fetch simulation mode: after a
        misprediction real hardware keeps fetching down the predicted
        (wrong) path until the branch resolves, touching — and polluting
        — the instruction cache.  The planned instructions are discarded;
        only the cache side effects and the continuation address matter.
        Returns the next wrong-path fetch address (or -1 to stop, e.g. on
        a cache-miss stall).
        """
        if address < 0:
            return -1
        plan = self.plan(address, min(limit, self.config.issue_rate))
        if plan.stall_cycles > 0:
            # The miss fill was already triggered; hardware would wait —
            # stop following this path (resolution usually wins the race).
            return -1
        return plan.next_address

    def train(
        self,
        instruction: Instruction,
        taken: bool,
        target: int,
    ) -> None:
        """Train the predictors with a resolved control transfer
        (called by the core at branch resolution)."""
        self.btb.update(
            instruction.address,
            taken,
            target,
            is_unconditional=instruction.is_unconditional,
            is_call=instruction.op is OpClass.CALL,
            is_return=instruction.op is OpClass.RET,
        )
        if (
            self.direction_predictor is not None
            and instruction.is_conditional_branch
        ):
            self.direction_predictor.update(
                instruction.address, instruction.target, taken
            )

    def predict_slot(self, address: int) -> BTBPrediction:
        """Predict one instruction slot, combining BTB, the optional
        direction predictor, and the optional return stack.

        The return stack is speculative and unrepaired: capacity-cut
        walks may pop/push without the instructions being delivered,
        exactly as wrong-path fetch would perturb real hardware.
        """
        prediction = self.btb.predict(address)
        if not prediction.hit:
            return prediction
        if prediction.is_conditional and self.direction_predictor is not None:
            taken = self.direction_predictor.predict(
                address, prediction.target
            )
            prediction = BTBPrediction(
                hit=True,
                taken=taken,
                target=prediction.target,
                is_conditional=True,
            )
        if self.return_stack is not None and prediction.taken:
            if prediction.is_return:
                predicted = self.return_stack.pop()
                if predicted >= 0:
                    prediction = BTBPrediction(
                        hit=True,
                        taken=True,
                        target=predicted,
                        is_return=True,
                    )
            elif prediction.is_call:
                self.return_stack.push(address + 1)
        return prediction

    # -- shared helpers -----------------------------------------------------

    def _block_of(self, address: int) -> int:
        return address // self.block_words

    def _block_start(self, block: int) -> int:
        return block * self.block_words

    def _block_end(self, block: int) -> int:
        """One past the last address of *block*."""
        return (block + 1) * self.block_words

    def _walk_sequential(
        self,
        start: int,
        stop: int,
        limit: int,
        plan: FetchPlan,
    ) -> int:
        """Append addresses from *start* while sequential, BTB-guided.

        Walks ``[start, stop)`` appending to the plan until *limit* is
        reached or the BTB predicts a taken transfer.  Returns the
        predicted taken target, or -1 if the walk ended sequentially
        (at *stop* or at the limit).  ``plan.next_address`` and
        ``plan.break_reason`` are set (callers that continue the plan —
        successor-block walks — overwrite the reason with the final
        outcome).
        """
        predict = self._slot_predictor
        address = start
        while address < stop and len(plan.addresses) < limit:
            plan.addresses.append(address)
            prediction = predict(address)
            if prediction.taken:
                plan.next_address = prediction.target
                plan.break_reason = "taken_branch"
                return prediction.target
            address += 1
        plan.next_address = address
        plan.break_reason = (
            "full" if len(plan.addresses) >= limit else "alignment"
        )
        return -1
