"""A simple trace cache — the *extension* this paper's line of work led to.

The collapsing buffer realigns instructions as they leave a conventional
instruction cache; the trace cache (Rotenberg/Bennett/Smith, 1996) takes
the next step and caches the *dynamic* sequences themselves, so a fetch
hit delivers an already-collapsed run crossing any number of taken
branches.  This module implements a deliberately simple variant as a
beyond-the-paper comparison point:

* lines hold up to one issue group of instruction addresses, recorded
  from the correct-path stream as it is delivered (fill-unit style);
* lines are indexed by starting address, direct-mapped, implicitly
  predicting "the same path as last time" (no multiple-branch predictor);
* misses fall back to interleaved-sequential fetch through the ordinary
  instruction cache, modelling the conventional fetch path the original
  design kept alongside.

Registered with the factory as ``trace_cache``; it is *not* part of the
paper's scheme set (``HARDWARE_SCHEMES``), and appears in the ablation
experiments instead.
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan
from repro.fetch.interleaved import InterleavedSequentialFetch


class TraceCacheFetch(InterleavedSequentialFetch):
    """Trace-cache fetch with an interleaved-sequential fallback path."""

    name = "trace_cache"
    num_banks = 2

    def __init__(
        self,
        config,
        trace,
        num_lines: int = 256,
        **kwargs,
    ) -> None:
        super().__init__(config, trace, **kwargs)
        self.num_lines = num_lines
        #: start address -> recorded path (list of addresses)
        self._lines: dict[int, list[int]] = {}
        #: fill buffer accumulating the current correct-path segment
        self._fill_start = -1
        self._fill: list[int] = []
        self.trace_hits = 0
        self.trace_misses = 0

    # -- lookup -----------------------------------------------------------

    def _line_slot(self, address: int) -> int:
        return address % self.num_lines

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        line = self._lines.get(fetch_address)
        if line is not None:
            # A trace-cache hit supplies the recorded path regardless of
            # alignment; the conventional cache is untouched this cycle.
            self.trace_hits += 1
            addresses = line[:limit]
            if len(addresses) < len(line):
                next_address = line[len(addresses)]
            else:
                last = addresses[-1]
                prediction = self.predict_slot(last)
                next_address = (
                    prediction.target if prediction.taken else last + 1
                )
            return FetchPlan(
                addresses=addresses,
                next_address=next_address,
                # A short hit is a structural line limit — the recorded
                # trace ended — which telemetry files under misalignment.
                break_reason=(
                    "full" if len(addresses) >= limit else "alignment"
                ),
            )
        self.trace_misses += 1
        return super().plan(fetch_address, limit)

    # -- fill unit ------------------------------------------------------------

    def fetch_cycle(self, position: int, limit: int):
        result = super().fetch_cycle(position, limit)
        if result.stall_cycles or not result.instructions:
            return result
        # Record the delivered correct-path addresses into the fill buffer;
        # a completed group (or a misprediction) seals the line.
        for instr in result.instructions:
            if self._fill_start < 0:
                self._fill_start = instr.address
            self._fill.append(instr.address)
            if len(self._fill) >= self.config.issue_rate:
                self._seal_line()
        if result.mispredict:
            # The recorded path ends at a misprediction; seal what we have
            # so the next encounter re-records the (new) hot path.
            self._seal_line()
        return result

    def _seal_line(self) -> None:
        if self._fill_start >= 0 and len(self._fill) > 1:
            if len(self._lines) >= self.num_lines:
                # Direct-mapped flavour: evict the line sharing the slot,
                # else an arbitrary victim.
                slot = self._line_slot(self._fill_start)
                victim = next(
                    (
                        start
                        for start in self._lines
                        if self._line_slot(start) == slot
                    ),
                    next(iter(self._lines)),
                )
                del self._lines[victim]
            self._lines[self._fill_start] = list(self._fill)
        self._fill_start = -1
        self._fill.clear()

    @property
    def trace_hit_ratio(self) -> float:
        total = self.trace_hits + self.trace_misses
        return self.trace_hits / total if total else 0.0
