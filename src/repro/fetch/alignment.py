"""Logic-level cost models of the alignment hardware.

The paper details the implementation of each alignment component and its
gate/delay budget (Figures 6 and 8).  These models reproduce those
formulas so designs can be compared quantitatively:

* interchange switch       — Figure 6(a)
* valid-select logic       — Figure 6(b)
* shifter collapsing buffer — Figure 8(a)
* crossbar collapsing buffer — Figure 8(b)

``k`` is the number of instructions per cache block (= issue rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class HardwareCost:
    """Area/delay summary of one alignment component.

    Attributes:
        component: Component name.
        transmission_gates: Pass-transistor count.
        latches: 1-bit register count.
        muxes: Multiplexer inventory ``{description: count}``.
        demuxes: Demultiplexer inventory ``{description: count}``.
        delay_gates: Worst-case delay in gate delays (-1: not gate-limited).
        delay_latches: Worst-case delay in latch delays.
        notes: Qualifications (e.g. bus propagation terms).
    """

    component: str
    transmission_gates: int = 0
    latches: int = 0
    muxes: dict[str, int] = field(default_factory=dict)
    demuxes: dict[str, int] = field(default_factory=dict)
    delay_gates: int = 0
    delay_latches: int = 0
    notes: str = ""


def interchange_switch_cost(k: int) -> HardwareCost:
    """Interchange switch reversing fetch/target block order (Fig. 6a)."""
    _check_k(k)
    return HardwareCost(
        component="interchange_switch",
        transmission_gates=64 * k,
        delay_gates=2,
        notes="plus inverter/driver per line; all lines 32 bits wide",
    )


def valid_select_cost(k: int) -> HardwareCost:
    """Valid-select logic picking k valid instructions from 2k (Fig. 6b)."""
    _check_k(k)
    return HardwareCost(
        component="valid_select",
        muxes={
            f"{k}-to-1 32-bit": 3,
            f"{k - 1}-to-1 32-bit": 3,
            "2-to-1 32-bit": 3,
        },
        delay_gates=4,
        notes="all lines 32 bits wide",
    )


def collapsing_buffer_shifter_cost(k: int) -> HardwareCost:
    """Shifter implementation of the collapsing buffer (Fig. 8a).

    Delay is input dependent: best case one latch delay, worst case
    ``(lg(k) - 1)`` latch delays (e.g. two for a PI4-sized buffer per the
    paper's parenthetical, counting its doubled 2k-entry datapath).
    """
    _check_k(k)
    worst = max(1, int(math.log2(2 * k)) - 1)
    return HardwareCost(
        component="collapsing_buffer_shifter",
        latches=64 * k,
        transmission_gates=64 * k - 32,
        delay_latches=worst,
        notes="input-dependent delay; best case 1 latch delay",
    )


def collapsing_buffer_crossbar_cost(k: int) -> HardwareCost:
    """Bus-based crossbar implementation of the collapsing buffer (Fig. 8b).

    One gate delay plus bus propagation; also capable of handling backward
    branches (not exploited by the modelled controller).
    """
    _check_k(k)
    return HardwareCost(
        component="collapsing_buffer_crossbar",
        demuxes={f"1-to-{k} 32-bit": 2 * k},
        delay_gates=1,
        notes="plus bus propagation delays; can handle backward branches",
    )


def scheme_hardware_inventory(scheme: str, k: int) -> list[HardwareCost]:
    """Alignment components required by *scheme* at block size *k*.

    Scheme names follow :mod:`repro.fetch.factory`.  ``sequential`` needs
    only masking logic (no extra alignment hardware); the collapsing
    buffer subsumes the valid-select logic and (in crossbar form) the
    interchange switch.
    """
    _check_k(k)
    if scheme == "sequential":
        return []
    if scheme == "interleaved_sequential" or scheme == "banked_sequential":
        return [interchange_switch_cost(k), valid_select_cost(k)]
    if scheme == "collapsing_buffer":
        return [collapsing_buffer_crossbar_cost(k)]
    if scheme == "collapsing_buffer_shifter":
        return [interchange_switch_cost(k), collapsing_buffer_shifter_cost(k)]
    if scheme == "perfect":
        return []
    raise KeyError(f"unknown scheme: {scheme!r}")


def _check_k(k: int) -> None:
    if k < 2:
        raise ValueError(f"unsupported instructions-per-block: {k}")
