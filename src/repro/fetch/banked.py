"""The *banked sequential* scheme (paper Section 3.2).

Like interleaved sequential, but the second cache access targets the
BTB-predicted *successor block* rather than blindly the next sequential
block, so fetch may continue across one **inter-block** taken branch per
cycle.  Two failure modes remain:

* **bank conflict** — the successor block maps to the same bank as the
  fetch block; the successor is not fetched this cycle;
* **intra-block branches** — a taken branch whose target lies in the
  fetch block itself cannot be realigned; delivery stops at the branch.

The BTB need not be queried twice per cycle: the successor block's valid
bits come from the overlapped BTB access of the following fetch (paper
Section 3.2), which our single-cycle planning models directly.
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan, FetchUnit


class BankedSequentialFetch(FetchUnit):
    """Two-bank fetch crossing one inter-block taken branch per cycle."""

    name = "banked_sequential"
    num_banks = 2

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        block = self._block_of(fetch_address)
        if not self.cache.access(block):
            self.cache.fill(block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)

        plan = FetchPlan()
        target = self._walk_sequential(
            fetch_address, self._block_end(block), limit, plan
        )
        if len(plan.addresses) >= limit:
            return plan

        if target >= 0:
            successor_block = self._block_of(target)
            if successor_block == block:
                # Intra-block branch: no realignment hardware; stop at the
                # branch (next cycle restarts at the target).
                return plan
            successor_start = target
        else:
            # No predicted-taken branch: continue sequentially, exactly
            # like interleaved sequential.
            successor_block = block + 1
            successor_start = self._block_end(block)

        if self.cache.bank_of(successor_block) == self.cache.bank_of(block):
            # Bank interference: the successor block is not fetched.
            plan.break_reason = "bank_conflict"
            return plan
        if not self.cache.access(successor_block):
            self.cache.fill(successor_block)
            plan.break_reason = "cache_miss"
            return plan

        self._walk_sequential(
            successor_start, self._block_end(successor_block), limit, plan
        )
        return plan
