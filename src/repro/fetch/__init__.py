"""Instruction fetch/alignment schemes — the paper's core contribution."""

from repro.fetch.alignment import (
    HardwareCost,
    collapsing_buffer_crossbar_cost,
    collapsing_buffer_shifter_cost,
    interchange_switch_cost,
    scheme_hardware_inventory,
    valid_select_cost,
)
from repro.fetch.banked import BankedSequentialFetch
from repro.fetch.base import FetchPlan, FetchResult, FetchStats, FetchUnit
from repro.fetch.collapsing import CollapsingBufferFetch
from repro.fetch.factory import (
    ALL_SCHEMES,
    HARDWARE_SCHEMES,
    SCHEMES,
    create_fetch_unit,
)
from repro.fetch.interleaved import InterleavedSequentialFetch
from repro.fetch.perfect import PerfectFetch
from repro.fetch.sequential import SequentialFetch
from repro.fetch.trace_cache import TraceCacheFetch

__all__ = [
    "ALL_SCHEMES",
    "BankedSequentialFetch",
    "CollapsingBufferFetch",
    "FetchPlan",
    "FetchResult",
    "FetchStats",
    "FetchUnit",
    "HARDWARE_SCHEMES",
    "HardwareCost",
    "InterleavedSequentialFetch",
    "PerfectFetch",
    "SCHEMES",
    "SequentialFetch",
    "TraceCacheFetch",
    "collapsing_buffer_crossbar_cost",
    "collapsing_buffer_shifter_cost",
    "create_fetch_unit",
    "interchange_switch_cost",
    "scheme_hardware_inventory",
    "valid_select_cost",
]
