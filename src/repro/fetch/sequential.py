"""The *sequential* block-fetch scheme (paper Figure 2).

Fetches one cache block and masks from the fetch offset to the first
predicted-taken branch or the end of the block.  No hardware handles
branches inside the block, so only sequential instruction runs are
supplied.  This is the realistic lower bound of the paper's study.
"""

from __future__ import annotations

from repro.fetch.base import FetchPlan, FetchUnit


class SequentialFetch(FetchUnit):
    """Single-block, mask-based sequential fetch.

    The single sequential walk also yields the plan's telemetry
    ``break_reason`` directly: ``taken_branch`` when the run ends at a
    predicted-taken branch, ``alignment`` at the block boundary,
    ``full`` when the issue width is filled.
    """

    name = "sequential"
    num_banks = 1

    def plan(self, fetch_address: int, limit: int) -> FetchPlan:
        block = self._block_of(fetch_address)
        if not self.cache.access(block):
            self.cache.fill(block)
            return FetchPlan(stall_cycles=self.cache.miss_latency)
        plan = FetchPlan()
        self._walk_sequential(
            fetch_address, self._block_end(block), limit, plan
        )
        return plan
