"""Fetch-scheme registry and factory."""

from __future__ import annotations

from repro.fetch.banked import BankedSequentialFetch
from repro.fetch.base import FetchUnit
from repro.fetch.collapsing import CollapsingBufferFetch
from repro.fetch.interleaved import InterleavedSequentialFetch
from repro.fetch.perfect import PerfectFetch
from repro.fetch.sequential import SequentialFetch
from repro.fetch.trace_cache import TraceCacheFetch
from repro.branch.predictors import DirectionPredictor
from repro.branch.ras import ReturnAddressStack
from repro.machines.config import MachineConfig
from repro.workloads.trace import DynamicTrace

#: All fetch schemes, keyed by their canonical names, in the paper's
#: order of increasing capability.
SCHEMES: dict[str, type[FetchUnit]] = {
    SequentialFetch.name: SequentialFetch,
    InterleavedSequentialFetch.name: InterleavedSequentialFetch,
    BankedSequentialFetch.name: BankedSequentialFetch,
    CollapsingBufferFetch.name: CollapsingBufferFetch,
    PerfectFetch.name: PerfectFetch,
    # Beyond the paper: the trace-cache direction this work led to.
    TraceCacheFetch.name: TraceCacheFetch,
}

#: The four hardware schemes compared in paper Figures 9 and 10.
HARDWARE_SCHEMES: tuple[str, ...] = (
    "sequential",
    "interleaved_sequential",
    "banked_sequential",
    "collapsing_buffer",
)

ALL_SCHEMES: tuple[str, ...] = tuple(SCHEMES)


def create_fetch_unit(
    scheme: str,
    config: MachineConfig,
    trace: DynamicTrace,
    direction_predictor: DirectionPredictor | None = None,
    return_stack: ReturnAddressStack | None = None,
    num_banks: int | None = None,
) -> FetchUnit:
    """Instantiate the fetch unit named *scheme* for *config* and *trace*.

    The optional predictor and banking arguments enable the beyond-paper
    extensions and ablations (see :class:`~repro.fetch.base.FetchUnit`).
    """
    try:
        cls = SCHEMES[scheme]
    except KeyError:
        known = ", ".join(SCHEMES)
        raise KeyError(f"unknown fetch scheme {scheme!r}; known: {known}") from None
    return cls(
        config,
        trace,
        direction_predictor=direction_predictor,
        return_stack=return_stack,
        num_banks=num_banks,
    )
