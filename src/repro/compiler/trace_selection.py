"""Fisher-style trace selection (paper Section 4, refs [7], [17]).

Traces are grown greedily around *seed* blocks in order of decreasing
execution count, following the mutual-most-likely heuristic: block B is
appended after A only when B is A's most frequent successor *and* A is
B's most frequent predecessor.  Growth also proceeds backwards from the
seed.  Traces never cross function boundaries, and every block ends up in
exactly one trace (cold blocks form singleton traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.profile import EdgeProfile
from repro.program.cfg import ControlFlowGraph


@dataclass(slots=True)
class TraceSet:
    """The selected traces, in final layout order.

    ``traces`` lists block ids trace by trace; concatenated they are a
    permutation of all blocks.  Function blocks stay contiguous.
    ``heats`` holds each trace's peak block-execution count, used by
    pad-trace to pad only traces that actually run.
    """

    traces: list[list[int]] = field(default_factory=list)
    heats: list[int] = field(default_factory=list)

    def layout_order(self) -> list[int]:
        return [block_id for trace in self.traces for block_id in trace]


def select_traces(cfg: ControlFlowGraph, profile: EdgeProfile) -> TraceSet:
    """Grow traces over *cfg* using *profile* (mutual-most-likely)."""
    # Precompute hottest successor/predecessor maps once, plus totals for
    # the profit guard.
    best_succ: dict[int, tuple[int, int]] = {}
    best_pred: dict[int, tuple[int, int]] = {}
    out_total: dict[int, int] = {}
    in_edges: dict[int, list[tuple[int, int]]] = {}
    for (src, dst), count in profile.edge_counts.items():
        if count > best_succ.get(src, (-1, 0))[1]:
            best_succ[src] = (dst, count)
        if count > best_pred.get(dst, (-1, 0))[1]:
            best_pred[dst] = (src, count)
        out_total[src] = out_total.get(src, 0) + count
        in_edges.setdefault(dst, []).append((count, src))

    def _profitable(src: int, dst: int, count: int) -> bool:
        """Is placing *dst* right after *src* a net win in taken branches?

        Placing dst after src turns the src->dst edge into a fall-through
        but (a) forces src's other out-edge to stay taken and (b) denies
        dst's other predecessors the adjacency, costing a jump on the
        hottest of them.  E.g. a hammock skip-branch with taken
        probability p profits only when p > 2/3 — below that, keeping the
        then-part in place is cheaper.
        """
        other_out = out_total.get(src, 0) - count
        other_in = max(
            (c for c, pred in in_edges.get(dst, ()) if pred != src),
            default=0,
        )
        return count >= other_out + other_in

    visited: set[int] = set()
    traces_by_func: dict[int, list[tuple[int, list[int]]]] = {}

    seeds = sorted(
        (block.block_id for block in cfg.blocks),
        key=lambda bid: (-profile.block_counts.get(bid, 0), bid),
    )
    for seed in seeds:
        if seed in visited:
            continue
        func_id = cfg.block(seed).func_id
        trace = [seed]
        visited.add(seed)

        # Grow forward.
        current = seed
        while True:
            succ, count = best_succ.get(current, (-1, 0))
            if (
                succ < 0
                or succ in visited
                or cfg.block(succ).func_id != func_id
                or best_pred.get(succ, (-1, 0))[0] != current
                or not _profitable(current, succ, count)
            ):
                break
            trace.append(succ)
            visited.add(succ)
            current = succ

        # Grow backward.
        current = seed
        while True:
            pred, count = best_pred.get(current, (-1, 0))
            if (
                pred < 0
                or pred in visited
                or cfg.block(pred).func_id != func_id
                or best_succ.get(pred, (-1, 0))[0] != current
                or not _profitable(pred, current, count)
            ):
                break
            trace.insert(0, pred)
            visited.add(pred)
            current = pred

        heat = profile.block_counts.get(seed, 0)
        traces_by_func.setdefault(func_id, []).append((heat, trace))

    # Keep functions in their original order.  Within a function, chain
    # traces greedily: after placing a trace, prefer the unplaced trace
    # headed by the hottest successor (any out-edge) of the placed
    # trace's tail, so hot inter-trace transitions — loop exits, merge
    # continuations — become fall-throughs (Pettis-Hansen-style
    # chaining); start from the hottest trace.
    successors: dict[int, list[tuple[int, int]]] = {}
    for (src, dst), count in profile.edge_counts.items():
        successors.setdefault(src, []).append((count, dst))
    for edges in successors.values():
        edges.sort(reverse=True)

    result = TraceSet()
    for func in cfg.functions:
        entries = traces_by_func.get(func.func_id, [])
        if not entries:
            continue
        unplaced: dict[int, tuple[int, list[int]]] = {
            trace[0]: (heat, trace) for heat, trace in entries
        }
        current: list[int] | None = None
        while unplaced:
            chosen_head = -1
            if current is not None:
                for _, succ in successors.get(current[-1], ()):
                    if succ in unplaced:
                        chosen_head = succ
                        break
            if chosen_head < 0:
                chosen_head = max(
                    unplaced, key=lambda head: (unplaced[head][0], -head)
                )
            heat, current = unplaced.pop(chosen_head)
            result.traces.append(current)
            result.heats.append(heat)
    return result
