"""Profile-driven compiler optimizations (paper Section 4)."""

from repro.compiler.layout_opt import ReorderResult, apply_layout, reorder_program
from repro.compiler.padding import PaddingResult, pad_all, pad_trace
from repro.compiler.profile import EdgeProfile, collect_profile
from repro.compiler.scheduler import schedule_block_body, schedule_program
from repro.compiler.superblock import SuperblockResult, form_superblocks
from repro.compiler.trace_selection import TraceSet, select_traces

__all__ = [
    "EdgeProfile",
    "PaddingResult",
    "ReorderResult",
    "TraceSet",
    "apply_layout",
    "collect_profile",
    "pad_all",
    "pad_trace",
    "reorder_program",
    "SuperblockResult",
    "form_superblocks",
    "schedule_block_body",
    "schedule_program",
    "select_traces",
]
