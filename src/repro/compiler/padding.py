"""Nop padding for branch-target alignment (paper Section 4.1).

* **pad-trace** pads the end of each selected trace with nops so the next
  trace begins at a cache-block boundary.  Trace-ending branches are
  likely taken (Fisher's selection places them there), so the pads are
  seldom executed — code grows only a few percent (paper Table 4).
* **pad-all** pads after *every* basic block, without regard for trace
  membership — no profile needed, but code expands dramatically at large
  block sizes (up to ~255% in the paper), wrecking cache locality.

Pads are materialised as nop-only fall-through blocks spliced into the
layout; when the preceding block can fall through, its fall edge is
rewired through the pad so semantics are preserved (the nops execute on
that path, exactly as in real padded code).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.layout_opt import ReorderResult
from repro.isa.instruction import nop
from repro.program.basic_block import BasicBlock, TermKind
from repro.program.program import Program, clone_cfg


@dataclass(slots=True)
class PaddingResult:
    """A padded program plus expansion statistics."""

    program: Program
    nops_inserted: int
    original_size: int

    @property
    def expansion(self) -> float:
        """Inserted nops as a fraction of the original code size
        (paper Table 4 reports this as a percentage)."""
        return self.nops_inserted / self.original_size if self.original_size else 0.0


def pad_all(program: Program, block_words: int) -> PaddingResult:
    """Align every basic block to a cache-block boundary."""
    boundaries = set(range(len(program.block_order)))
    return _insert_pads(program, boundaries, block_words)


def pad_trace(
    reordered: ReorderResult,
    block_words: int,
    heat_fraction: float = 0.05,
) -> PaddingResult:
    """Align each *hot* trace of a reordered program to a block boundary.

    Only traces whose profiled heat reaches *heat_fraction* of the hottest
    trace are padded: cold code (which in the paper's SPEC binaries never
    forms meaningful traces) is left untouched, keeping the static cost an
    order of magnitude below pad-all (paper Table 4).
    """
    program = reordered.program
    heats = reordered.trace_heats or [1] * len(reordered.traces)
    threshold = max(1, int(heat_fraction * max(heats, default=1)))
    # Pad the end of trace i when the *following* trace is hot: the point
    # is to make hot traces begin at block boundaries.
    boundaries: set[int] = set()
    index = -1
    for position, trace in enumerate(reordered.traces):
        index += len(trace)
        if position + 1 < len(heats) and heats[position + 1] >= threshold:
            boundaries.add(index)
    return _insert_pads(program, boundaries, block_words)


def _insert_pads(
    program: Program,
    boundaries: set[int],
    block_words: int,
) -> PaddingResult:
    """Insert alignment pads after the order positions in *boundaries*."""
    if block_words <= 0:
        raise ValueError("block_words must be positive")
    cfg = clone_cfg(program.cfg)
    old_order = list(program.block_order)
    new_order: list[int] = []
    address = program.base_address
    nops_inserted = 0

    for index, block_id in enumerate(old_order):
        block = cfg.block(block_id)
        new_order.append(block_id)
        address += block.size
        if index not in boundaries or index + 1 >= len(old_order):
            continue
        pad_len = (block_words - address % block_words) % block_words
        if pad_len == 0:
            continue
        successor = old_order[index + 1]
        pad = BasicBlock(
            body=[nop() for _ in range(pad_len)],
            term_kind=TermKind.FALLTHROUGH,
            fall_id=successor,
        )
        cfg.add_block(pad, cfg.function(block.func_id))
        # Reroute the preceding block's sequential path through the pad so
        # a not-taken branch (or plain fall-through) executes the nops.
        if block.term_kind in (
            TermKind.FALLTHROUGH,
            TermKind.COND,
            TermKind.CALL,
        ):
            if block.fall_id != successor:
                raise AssertionError(
                    "fall-through invariant broken before padding"
                )
            block.fall_id = pad.block_id
        new_order.append(pad.block_id)
        address += pad_len
        nops_inserted += pad_len

    padded = Program.from_order(
        cfg,
        new_order,
        base_address=program.base_address,
        name=program.name,
    )
    return PaddingResult(
        program=padded,
        nops_inserted=nops_inserted,
        original_size=program.num_instructions,
    )
