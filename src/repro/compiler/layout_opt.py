"""Trace layout: profile-driven code reordering (paper Section 4).

Blocks are permuted into trace order, then control flow is repaired so
the fall-through invariant holds:

* a conditional branch whose *taken* successor was placed next is
  **flipped** (condition inverted, successors swapped) — the hot path
  falls through, which is the mechanism that removes dynamic taken
  branches (paper Table 3);
* a conditional branch with neither successor adjacent keeps its taken
  target and gets a **trampoline jump** for the fall-through path;
* an unconditional jump whose target lands adjacent is **deleted**
  (the block becomes a fall-through);
* a call's return continuation must stay adjacent; a trampoline jump is
  inserted when layout moved it away.

The behaviour model is address-independent (keyed by branch identity,
with flips handled logically), so original and reordered programs follow
identical logical paths from the same input seed — exactly the setup the
paper needs to compare layouts fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.profile import collect_profile
from repro.compiler.trace_selection import TraceSet, select_traces
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.program.basic_block import NO_BLOCK, BasicBlock, TermKind
from repro.program.program import Program, clone_cfg
from repro.workloads.behavior import BehaviorModel
from repro.workloads.trace import PROFILING_SEEDS


@dataclass(slots=True)
class ReorderResult:
    """Outcome of code reordering.

    Attributes:
        program: The re-laid-out program (freshly cloned CFG).
        traces: Block ids per trace in final order, including any
            trampoline blocks appended during fix-up (used by pad-trace).
        trace_heats: Peak profiled block count per trace (aligned with
            ``traces``); pad-trace pads only hot traces.
        flipped_branches: Conditional branches whose condition was
            inverted so the hot successor falls through.
        inserted_jumps: Trampoline jumps (and fall-through conversions)
            added to preserve semantics.
        removed_jumps: Unconditional jumps deleted because their target
            became adjacent.
    """

    program: Program
    traces: list[list[int]] = field(default_factory=list)
    trace_heats: list[int] = field(default_factory=list)
    flipped_branches: int = 0
    inserted_jumps: int = 0
    removed_jumps: int = 0


def reorder_program(
    program: Program,
    behavior: BehaviorModel,
    seeds: tuple[int, ...] = PROFILING_SEEDS,
    max_transitions: int = 60_000,
) -> ReorderResult:
    """Profile *program*, select traces, and apply the new layout."""
    profile = collect_profile(program, behavior, seeds, max_transitions)
    traces = select_traces(program.cfg, profile)
    return apply_layout(program, traces)


def apply_layout(
    program: Program,
    trace_set: TraceSet,
    cfg_override=None,
) -> ReorderResult:
    """Permute *program* into *trace_set* order with control-flow fix-ups.

    *cfg_override* supplies an already-transformed CFG (e.g. with
    superblock tail duplicates) instead of a fresh clone of the
    program's; the trace set must then cover exactly its blocks.
    """
    cfg = cfg_override if cfg_override is not None else clone_cfg(program.cfg)
    traces = [list(trace) for trace in trace_set.traces]
    flat = [block_id for trace in traces for block_id in trace]
    if sorted(flat) != list(range(len(cfg.blocks))):
        raise ValueError("trace set is not a permutation of the CFG's blocks")

    result_traces: list[list[int]] = []
    flipped = inserted = removed = 0

    # Successor of each block in the flat order (None for the last).
    def _next_of(index: int) -> int | None:
        return flat[index + 1] if index + 1 < len(flat) else None

    position = 0
    for trace in traces:
        new_trace: list[int] = []
        for block_id in trace:
            block = cfg.block(block_id)
            new_trace.append(block_id)
            nxt = _next_of(position)
            position += 1
            kind = block.term_kind

            if kind is TermKind.RET:
                continue
            if kind is TermKind.JUMP:
                if block.taken_id == nxt and block.body:
                    # The jump became redundant: fall through instead.
                    block.term_kind = TermKind.FALLTHROUGH
                    block.terminator = None
                    block.fall_id = block.taken_id
                    block.taken_id = NO_BLOCK
                    removed += 1
                continue
            if kind is TermKind.FALLTHROUGH:
                if block.fall_id != nxt:
                    # Layout separated the block from its successor.
                    block.term_kind = TermKind.JUMP
                    block.terminator = Instruction(OpClass.JUMP)
                    block.taken_id = block.fall_id
                    block.fall_id = NO_BLOCK
                    inserted += 1
                continue
            if kind is TermKind.CALL and block.fall_id == nxt:
                continue
            if kind is TermKind.COND:
                if block.fall_id == nxt:
                    continue
                if block.taken_id == nxt:
                    block.taken_id, block.fall_id = (
                        block.fall_id,
                        block.taken_id,
                    )
                    block.flipped = not block.flipped
                    flipped += 1
                    continue
            # COND with neither successor adjacent, or CALL whose return
            # continuation moved: trampoline the fall-through path.
            trampoline = BasicBlock(
                term_kind=TermKind.JUMP,
                terminator=Instruction(OpClass.JUMP),
                taken_id=block.fall_id,
            )
            cfg.add_block(trampoline, cfg.function(block.func_id))
            block.fall_id = trampoline.block_id
            new_trace.append(trampoline.block_id)
            inserted += 1
        result_traces.append(new_trace)

    order = [block_id for trace in result_traces for block_id in trace]
    new_program = Program.from_order(
        cfg, order, base_address=program.base_address, name=program.name
    )
    heats = list(trace_set.heats) or [0] * len(result_traces)
    return ReorderResult(
        program=new_program,
        traces=result_traces,
        trace_heats=heats,
        flipped_branches=flipped,
        inserted_jumps=inserted,
        removed_jumps=removed,
    )
