"""Edge profiling for profile-driven code reordering.

The paper generates profile statistics from five training inputs per
benchmark and holds out a sixth input for the processor simulations
(Section 4).  Here each profiling input is a behaviour-model seed; the
profiler walks the CFG at basic-block granularity (far cheaper than full
instruction traces) counting block executions and *layout successor*
transitions — the edges trace selection cares about:

* COND: taken / fall-through edge per the behaviour model;
* JUMP / FALLTHROUGH: the single static successor;
* CALL: the edge goes to the *return continuation* (the callee lives in
  another function and is laid out separately);
* RET: no layout edge (the successor is call-site dependent).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.program.basic_block import TermKind
from repro.program.program import Program
from repro.workloads.behavior import BehaviorModel
from repro.workloads.trace import PROFILING_SEEDS


@dataclass(slots=True)
class EdgeProfile:
    """Execution counts gathered over the profiling inputs."""

    block_counts: Counter = field(default_factory=Counter)
    edge_counts: Counter = field(default_factory=Counter)

    def successors_by_weight(self, block_id: int) -> list[tuple[int, int]]:
        """(successor, count) pairs of *block_id*, heaviest first."""
        out = [
            (dst, count)
            for (src, dst), count in self.edge_counts.items()
            if src == block_id
        ]
        out.sort(key=lambda pair: -pair[1])
        return out

    def hottest_successor(self, block_id: int) -> int:
        """Most frequent layout successor of *block_id* (-1 if none)."""
        best, best_count = -1, 0
        for (src, dst), count in self.edge_counts.items():
            if src == block_id and count > best_count:
                best, best_count = dst, count
        return best

    def hottest_predecessor(self, block_id: int) -> int:
        """Most frequent layout predecessor of *block_id* (-1 if none)."""
        best, best_count = -1, 0
        for (src, dst), count in self.edge_counts.items():
            if dst == block_id and count > best_count:
                best, best_count = src, count
        return best


def collect_profile(
    program: Program,
    behavior: BehaviorModel,
    seeds: tuple[int, ...] = PROFILING_SEEDS,
    max_transitions: int = 60_000,
) -> EdgeProfile:
    """Profile *program* over the given behaviour seeds.

    Each seed contributes up to *max_transitions* block transitions
    (restarting the program when it halts), mirroring the paper's
    multiple-training-input methodology.
    """
    profile = EdgeProfile()
    cfg = program.cfg
    for seed in seeds:
        rng = random.Random(seed)
        behavior.reset()
        call_stack: list[int] = []
        current = cfg.entry_block_id
        for _ in range(max_transitions):
            block = cfg.block(current)
            profile.block_counts[current] += 1
            kind = block.term_kind
            if kind is TermKind.FALLTHROUGH:
                nxt = block.fall_id
                profile.edge_counts[(current, nxt)] += 1
            elif kind is TermKind.COND:
                nxt = behavior.decide_successor(block, rng)
                profile.edge_counts[(current, nxt)] += 1
            elif kind is TermKind.JUMP:
                nxt = block.taken_id
                profile.edge_counts[(current, nxt)] += 1
            elif kind is TermKind.CALL:
                # Layout edge to the return continuation; execution enters
                # the callee.
                profile.edge_counts[(current, block.fall_id)] += 1
                call_stack.append(block.fall_id)
                nxt = block.taken_id
            else:  # RET
                nxt = call_stack.pop() if call_stack else cfg.entry_block_id
            current = nxt
    return profile
