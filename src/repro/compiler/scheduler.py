"""DAG-based local instruction scheduler.

The paper compiles with ``gcc -O -fschedule-insns``, a DAG-based local
scheduler, noting it "marginally enhances parallelism".  This pass is the
equivalent: within each basic block, instructions are list-scheduled by
earliest ready time under true (RAW), output (WAW), and anti (WAR)
register dependences, with memory operations kept in their original
relative order (no alias analysis).  Control flow and block contents are
otherwise untouched, so traces and behaviour models remain valid.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.program.program import Program, clone_cfg

_MEMORY_OPS = (OpClass.LOAD, OpClass.STORE)


def schedule_block_body(body: list[Instruction]) -> list[Instruction]:
    """Return a list-scheduled permutation of *body*.

    Dependences honoured: RAW, WAW, WAR on registers, plus program order
    among memory operations.  Ready instructions are issued greedily by
    (ready time, original index), which keeps the schedule stable and
    deterministic.
    """
    n = len(body)
    if n <= 2:
        return list(body)

    successors: list[list[int]] = [[] for _ in range(n)]
    pending: list[int] = [0] * n
    ready_time: list[int] = [0] * n

    last_writer: dict[int, int] = {}
    readers: dict[int, list[int]] = {}
    last_memory = -1

    def add_edge(src: int, dst: int) -> None:
        successors[src].append(dst)
        pending[dst] += 1

    for i, instr in enumerate(body):
        for reg in instr.sources():
            if reg in last_writer:
                add_edge(last_writer[reg], i)  # RAW
        if instr.dest != NO_REG:
            if instr.dest in last_writer:
                add_edge(last_writer[instr.dest], i)  # WAW
            for reader in readers.get(instr.dest, ()):
                if reader != i:
                    add_edge(reader, i)  # WAR
            last_writer[instr.dest] = i
            readers[instr.dest] = []
        for reg in instr.sources():
            readers.setdefault(reg, []).append(i)
        if instr.op in _MEMORY_OPS:
            if last_memory >= 0:
                add_edge(last_memory, i)
            last_memory = i

    scheduled: list[Instruction] = []
    ready = [i for i in range(n) if pending[i] == 0]
    clock = 0
    while ready:
        ready.sort(key=lambda i: (ready_time[i], i))
        index = ready.pop(0)
        clock = max(clock, ready_time[index])
        scheduled.append(body[index])
        finish = clock + body[index].latency
        for succ in successors[index]:
            pending[succ] -= 1
            ready_time[succ] = max(ready_time[succ], finish)
            if pending[succ] == 0:
                ready.append(succ)
        clock += 1

    if len(scheduled) != n:  # pragma: no cover - defensive
        raise AssertionError("scheduler dropped instructions (cyclic deps?)")
    return scheduled


def schedule_program(program: Program) -> Program:
    """Apply the local scheduler to every block of *program*.

    Returns a new program with the same layout but scheduled block bodies.
    """
    cfg = clone_cfg(program.cfg)
    for block in cfg.blocks:
        block.body = schedule_block_body(block.body)
    return Program.from_order(
        cfg,
        list(program.block_order),
        base_address=program.base_address,
        name=program.name,
    )
