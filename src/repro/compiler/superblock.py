"""Superblock formation: trace layout plus tail duplication.

The paper's code reordering uses *traces* (Fisher [17]); its reference
[18] — Hwu et al., "The superblock: an effective structure for VLIW and
superscalar compilation" — removes the remaining obstacle, side
entrances, by duplicating the trace tail from the first side entrance
onward.  The hot path then has a single entry: later passes can treat it
as straight-line code, and its fall-through chain is never broken by
merge points.

This module is a beyond-paper extension: it reuses the profiler and
trace selector, duplicates side-entered tails, and lays out the result
with the same fix-up machinery as plain reordering.  Duplicated blocks
share their original's ``branch_key``, so the behaviour model (and RNG
alignment across program variants) is preserved.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.compiler.layout_opt import ReorderResult, apply_layout
from repro.compiler.profile import collect_profile
from repro.compiler.trace_selection import TraceSet, select_traces
from repro.program.basic_block import NO_BLOCK, BasicBlock, TermKind
from repro.program.program import Program, clone_cfg
from repro.workloads.behavior import BehaviorModel
from repro.workloads.trace import PROFILING_SEEDS


@dataclass(slots=True)
class SuperblockResult:
    """Outcome of superblock formation.

    Attributes:
        reorder: The underlying layout result (program, traces, fix-up
            counters).
        duplicated_blocks: Tail blocks copied to remove side entrances.
        duplicated_instructions: Instructions added by duplication.
        original_size: Instruction count before formation.
    """

    reorder: ReorderResult
    duplicated_blocks: int
    duplicated_instructions: int
    original_size: int

    @property
    def program(self) -> Program:
        return self.reorder.program

    @property
    def code_growth(self) -> float:
        """Added instructions as a fraction of the original size."""
        if not self.original_size:
            return 0.0
        return self.duplicated_instructions / self.original_size


def form_superblocks(
    program: Program,
    behavior: BehaviorModel,
    seeds: tuple[int, ...] = PROFILING_SEEDS,
    max_transitions: int = 60_000,
    min_trace_heat: float = 0.05,
) -> SuperblockResult:
    """Profile, select traces, duplicate side-entered tails, and lay out.

    Only traces whose heat reaches *min_trace_heat* of the hottest trace
    become superblocks (duplicating cold code would inflate the binary
    for nothing); the rest go through plain trace layout.
    """
    profile = collect_profile(program, behavior, seeds, max_transitions)
    traces = select_traces(program.cfg, profile)
    cfg = clone_cfg(program.cfg)

    predecessors: dict[int, set[int]] = {}
    for block in cfg.blocks:
        for successor in block.successors():
            predecessors.setdefault(successor, set()).add(block.block_id)

    heats = traces.heats or [0] * len(traces.traces)
    threshold = max(1, int(min_trace_heat * max(heats, default=1)))

    new_traces: list[list[int]] = []
    new_heats: list[int] = []
    displaced_traces: list[list[int]] = []
    duplicated_blocks = 0
    duplicated_instructions = 0

    for trace, heat in zip(traces.traces, heats):
        split = (
            _first_side_entrance(trace, predecessors)
            if len(trace) >= 2 and heat >= threshold
            else -1
        )
        if split < 0:
            new_traces.append(list(trace))
            new_heats.append(heat)
            continue

        tail = trace[split:]
        remap: dict[int, int] = {}
        copies: list[int] = []
        for block_id in tail:
            original = cfg.block(block_id)
            duplicate = _clone_block(original)
            cfg.add_block(duplicate, cfg.function(original.func_id))
            duplicate.is_func_entry = False
            remap[block_id] = duplicate.block_id
            copies.append(duplicate.block_id)
            duplicated_blocks += 1
            duplicated_instructions += duplicate.size

        # The block before the split enters the duplicated tail; within
        # the copies, edges into the tail are remapped (calls are never
        # remapped: callee entries live in other functions, outside any
        # trace of this function).
        _redirect(cfg.block(trace[split - 1]), {tail[0]: remap[tail[0]]})
        for copy_id in copies:
            _redirect(cfg.block(copy_id), remap)

        new_traces.append(trace[:split] + copies)
        new_heats.append(heat)
        # The displaced originals stay together as their own colder trace,
        # still serving the side entrances.
        displaced_traces.append(tail)

    for tail in displaced_traces:
        new_traces.append(tail)
        new_heats.append(0)

    trace_set = TraceSet(traces=new_traces, heats=new_heats)
    reorder = apply_layout(program, trace_set, cfg_override=cfg)
    return SuperblockResult(
        reorder=reorder,
        duplicated_blocks=duplicated_blocks,
        duplicated_instructions=duplicated_instructions,
        original_size=program.num_instructions,
    )


def _redirect(block: BasicBlock, remap: dict[int, int]) -> None:
    """Remap *block*'s layout successors through *remap* (never the
    callee edge of a CALL)."""
    if block.term_kind is not TermKind.CALL and block.taken_id in remap:
        block.taken_id = remap[block.taken_id]
    if block.fall_id in remap:
        block.fall_id = remap[block.fall_id]


def _first_side_entrance(
    trace: list[int], predecessors: dict[int, set[int]]
) -> int:
    """First trace position (>=1) entered from outside the trace, -1 if
    none."""
    for position in range(1, len(trace)):
        preds = predecessors.get(trace[position], set())
        if preds - {trace[position - 1]}:
            return position
    return -1


def _clone_block(block: BasicBlock) -> BasicBlock:
    """Copy a block for tail duplication (fresh instructions, same
    successors and branch identity)."""
    return BasicBlock(
        block_id=NO_BLOCK,
        func_id=block.func_id,
        body=[copy.copy(instr) for instr in block.body],
        term_kind=block.term_kind,
        terminator=copy.copy(block.terminator)
        if block.terminator is not None
        else None,
        taken_id=block.taken_id,
        fall_id=block.fall_id,
        branch_key=block.branch_key,
        flipped=block.flipped,
        is_func_entry=False,
    )
