"""Reorder buffer: precise in-order retirement (paper Section 2).

The Messy register file alone would limit the machine to imprecise
interrupts; the reorder buffer remedies this, and retirement from it
defines the paper's performance metric (IPC = instructions retired per
cycle).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.isa.instruction import Instruction


class EntryState(enum.IntEnum):
    """Lifecycle of an in-flight instruction."""

    WAITING = 0  #: in the scheduling window, operands not all ready
    EXECUTING = 1  #: issued to a functional unit
    DONE = 2  #: result written back; eligible to retire


@dataclass(slots=True, eq=False)
class ROBEntry:
    """One in-flight dynamic instruction.

    Attributes:
        seq: Global dynamic sequence number; doubles as the Tomasulo tag.
        instruction: The static instruction.
        trace_index: Position in the dynamic trace.
        state: Execution state.
        fetch_mispredicted: The fetch unit flagged this control transfer
            as mispredicted; its resolution restarts fetch.
        actual_taken / actual_target: Resolved outcome of a control
            transfer (recorded at dispatch from the trace oracle, observed
            by the predictors only at writeback).
        pending_operands: Unsatisfied source operands while the entry
            sits in the scheduling window (the entry doubles as its own
            reservation station — one object per in-flight instruction).
    """

    seq: int
    instruction: Instruction
    trace_index: int
    state: EntryState = EntryState.WAITING
    fetch_mispredicted: bool = False
    actual_taken: bool = False
    actual_target: int = -1
    pending_operands: int = 0

    @property
    def ready(self) -> bool:
        """All operands available; eligible to fire."""
        return self.pending_operands == 0

    @property
    def rob_entry(self) -> "ROBEntry":
        """The window-entry view is the ROB entry itself (the separate
        wrapper object was merged away); kept for API compatibility."""
        return self


class ReorderBuffer:
    """Bounded FIFO of in-flight instructions with in-order retirement."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: deque[ROBEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def head_done(self) -> bool:
        """True when the head entry is eligible to retire (O(1) peek used
        by the simulator's event-skipping loop)."""
        entries = self._entries
        return bool(entries) and entries[0].state is EntryState.DONE

    def append(self, entry: ROBEntry) -> None:
        if self.full:
            raise OverflowError("reorder buffer overflow")
        self._entries.append(entry)

    def retire(self, width: int) -> list[ROBEntry]:
        """Retire up to *width* completed entries from the head, in order."""
        retired: list[ROBEntry] = []
        while (
            len(retired) < width
            and self._entries
            and self._entries[0].state is EntryState.DONE
        ):
            retired.append(self._entries.popleft())
        return retired

    def occupancy(self) -> int:
        return len(self._entries)
