"""Functional units and result buses (paper Figure 1 / Table 1).

Units are fully pipelined: each unit accepts one new operation per cycle
and results appear after the operation-class latency.  Completions are
distributed over result buses whose count equals the total number of
function units, so bus contention seldom occurs (paper Section 2) — but
it is modelled: surplus completions slip to the next cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import UNIT_FOR_OP, OpClass, UnitType
from repro.machines.config import MachineConfig


@dataclass(slots=True)
class UnitStats:
    """Issue counters per unit type."""

    issues: dict[UnitType, int] = field(
        default_factory=lambda: {t: 0 for t in UnitType}
    )
    structural_stalls: int = 0  #: ready instructions denied a unit


class FunctionalUnits:
    """Per-cycle issue-port tracker for all unit types."""

    def __init__(self, config: MachineConfig) -> None:
        self.capacity: dict[UnitType, int] = {
            UnitType.FXU: config.num_fxu,
            UnitType.FPU: config.num_fpu,
            UnitType.BRANCH: config.num_branch_units,
            UnitType.LOAD_UNIT: config.load_units,
            UnitType.STORE_BUFFER: config.store_buffers,
        }
        self._used: dict[UnitType, int] = {t: 0 for t in UnitType}
        self.stats = UnitStats()

    def begin_cycle(self) -> None:
        """Reset this cycle's issue ports."""
        for unit_type in self._used:
            self._used[unit_type] = 0

    def try_issue(self, op: OpClass) -> bool:
        """Claim an issue port for *op*; False if all units of its type
        are busy this cycle."""
        unit_type = UNIT_FOR_OP[op]
        if self._used[unit_type] >= self.capacity[unit_type]:
            self.stats.structural_stalls += 1
            return False
        self._used[unit_type] += 1
        self.stats.issues[unit_type] += 1
        return True


class ResultBuses:
    """Arbiter for the completion buses."""

    def __init__(self, num_buses: int) -> None:
        if num_buses <= 0:
            raise ValueError("need at least one result bus")
        self.num_buses = num_buses
        self.contention_slips = 0

    def grant(self, requested: int) -> int:
        """Grant up to ``num_buses`` of *requested* completions; the rest
        slip to the next cycle."""
        granted = min(requested, self.num_buses)
        if requested > granted:
            self.contention_slips += requested - granted
        return granted
