"""The scheduling window: reservation stations with Tomasulo renaming.

Entries correspond to generic reservation stations (paper Section 2).
Renaming is performed through tags — here the global sequence number of
the producing in-flight instruction.  The *producer table* is the tag
side of the Messy register file: for each architectural register it holds
the tag of the newest in-flight producer, or ``READY`` when the value is
available in the register file itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.regfiles import READY, MessyTagFile
from repro.core.rob import ROBEntry
from repro.isa.registers import NO_REG, NUM_REGS


@dataclass(slots=True, eq=False)
class WindowEntry:
    """A reservation station holding one dispatched instruction."""

    rob_entry: ROBEntry
    pending_operands: int = 0

    @property
    def ready(self) -> bool:
        return self.pending_operands == 0


class SchedulingWindow:
    """Bounded pool of reservation stations with register renaming."""

    def __init__(self, size: int, num_regs: int = NUM_REGS) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._entries: list[WindowEntry] = []
        self.messy = MessyTagFile(num_regs)
        # tag -> reservation stations waiting on it
        self._consumers: dict[int, list[WindowEntry]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def free_slots(self) -> int:
        return self.size - len(self._entries)

    # -- dispatch ------------------------------------------------------------

    def dispatch(
        self,
        rob_entry: ROBEntry,
        extra_dependencies: tuple[int, ...] = (),
    ) -> WindowEntry:
        """Insert an instruction, renaming its operands.

        *extra_dependencies* are additional in-flight tags to wait on
        (e.g. memory-ordering edges); the caller must guarantee each tag
        is still in flight, or the entry would never wake.

        Raises ``OverflowError`` when no reservation station is free.
        """
        if self.full:
            raise OverflowError("scheduling window overflow")
        entry = WindowEntry(rob_entry)
        instr = rob_entry.instruction
        for src in instr.sources():
            tag = self.messy.producer_of(src)
            if tag != READY:
                entry.pending_operands += 1
                self._consumers.setdefault(tag, []).append(entry)
        for tag in extra_dependencies:
            entry.pending_operands += 1
            self._consumers.setdefault(tag, []).append(entry)
        self.messy.rename_dest(instr.dest, rob_entry.seq)
        self._entries.append(entry)
        return entry

    # -- issue ----------------------------------------------------------------

    def take_ready(self, limit: int | None = None) -> list[WindowEntry]:
        """Remove and return up to *limit* ready entries, oldest first.

        The caller decides (via functional-unit availability) which of the
        returned entries actually issue; entries it cannot issue must be
        handed back through :meth:`put_back`.
        """
        ready = [e for e in self._entries if e.ready]
        if limit is not None:
            ready = ready[:limit]
        for entry in ready:
            self._entries.remove(entry)
        return ready

    def put_back(self, entries: list[WindowEntry]) -> None:
        """Return un-issued ready entries to the window (oldest-first order
        is restored by sorting on sequence number)."""
        self._entries.extend(entries)
        self._entries.sort(key=lambda e: e.rob_entry.seq)

    # -- writeback ----------------------------------------------------------------

    def writeback(self, seq: int, dest: int) -> None:
        """Broadcast a completed result: wake consumers, free the tag."""
        for waiter in self._consumers.pop(seq, ()):
            waiter.pending_operands -= 1
        self.messy.writeback(dest, seq)

    # -- inspection -------------------------------------------------------------------

    def pending_tags(self) -> set[int]:
        """Tags some reservation station is still waiting on (for tests)."""
        return set(self._consumers)
