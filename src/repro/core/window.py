"""The scheduling window: reservation stations with Tomasulo renaming.

Entries correspond to generic reservation stations (paper Section 2).
Renaming is performed through tags — here the global sequence number of
the producing in-flight instruction.  The *producer table* is the tag
side of the Messy register file: for each architectural register it holds
the tag of the newest in-flight producer, or ``READY`` when the value is
available in the register file itself.

The window never stores its waiting entries in a scannable list: an
entry with unsatisfied operands is reachable only through the consumer
lists of the tags it waits on, and it moves to the *ready list* when the
last one writes back.  The fire phase therefore touches only ready
entries instead of rescanning the whole window every cycle; occupancy is
a plain counter.
"""

from __future__ import annotations

from operator import attrgetter

from repro.core.regfiles import READY, MessyTagFile
from repro.core.rob import ROBEntry
from repro.isa.registers import NO_REG, NUM_REGS

#: A reservation station IS the in-flight instruction's ROB entry: the
#: separate wrapper object was merged into :class:`ROBEntry` (its
#: ``pending_operands`` / ``ready`` members), halving the per-dispatch
#: allocations.  The old name remains for API compatibility.
WindowEntry = ROBEntry

_BY_SEQ = attrgetter("seq")


class SchedulingWindow:
    """Bounded pool of reservation stations with register renaming."""

    def __init__(self, size: int, num_regs: int = NUM_REGS) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        #: occupied reservation stations (waiting entries live in the
        #: consumer lists, ready entries in ``_ready``).
        self._occupied = 0
        self._ready: list[WindowEntry] = []
        self.messy = MessyTagFile(num_regs)
        # tag -> reservation stations waiting on it
        self._consumers: dict[int, list[WindowEntry]] = {}

    def __len__(self) -> int:
        return self._occupied

    @property
    def full(self) -> bool:
        return self._occupied >= self.size

    @property
    def free_slots(self) -> int:
        return self.size - self._occupied

    @property
    def ready_count(self) -> int:
        """Entries currently eligible to fire (O(1))."""
        return len(self._ready)

    # -- dispatch ------------------------------------------------------------

    def dispatch(
        self,
        rob_entry: ROBEntry,
        extra_dependencies: tuple[int, ...] = (),
    ) -> WindowEntry:
        """Insert an instruction, renaming its operands.

        *extra_dependencies* are additional in-flight tags to wait on
        (e.g. memory-ordering edges); the caller must guarantee each tag
        is still in flight, or the entry would never wake.

        Raises ``OverflowError`` when no reservation station is free.
        """
        if self._occupied >= self.size:
            raise OverflowError("scheduling window overflow")
        entry = rob_entry
        instr = rob_entry.instruction
        # Renaming is inlined (rather than via MessyTagFile accessors):
        # this runs once per dynamic instruction and dominates dispatch.
        producer = self.messy._producer
        consumers = self._consumers
        pending = 0
        src = instr.src1
        if src != NO_REG:
            tag = producer[src]
            if tag != READY:
                pending += 1
                consumers.setdefault(tag, []).append(entry)
        src = instr.src2
        if src != NO_REG:
            tag = producer[src]
            if tag != READY:
                pending += 1
                consumers.setdefault(tag, []).append(entry)
        for tag in extra_dependencies:
            pending += 1
            consumers.setdefault(tag, []).append(entry)
        entry.pending_operands = pending
        dest = instr.dest
        if dest != NO_REG:
            producer[dest] = rob_entry.seq
        self._occupied += 1
        if pending == 0:
            self._ready.append(entry)
        return entry

    # -- issue ----------------------------------------------------------------

    def take_ready(self, limit: int | None = None) -> list[WindowEntry]:
        """Remove and return up to *limit* ready entries, oldest first.

        The caller decides (via functional-unit availability) which of the
        returned entries actually issue; entries it cannot issue must be
        handed back through :meth:`put_back`.
        """
        ready = self._ready
        if not ready:
            return []
        ready.sort(key=_BY_SEQ)
        if limit is None or limit >= len(ready):
            taken = ready[:]
            ready.clear()
        else:
            taken = ready[:limit]
            del ready[:limit]
        self._occupied -= len(taken)
        return taken

    def put_back(self, entries: list[WindowEntry]) -> None:
        """Return un-issued ready entries to the window (oldest-first
        order is restored by the sort in the next :meth:`take_ready`)."""
        self._ready.extend(entries)
        self._occupied += len(entries)

    # -- writeback ----------------------------------------------------------------

    def writeback(self, seq: int, dest: int) -> None:
        """Broadcast a completed result: wake consumers, free the tag."""
        ready = self._ready
        for waiter in self._consumers.pop(seq, ()):
            waiter.pending_operands -= 1
            if waiter.pending_operands == 0:
                ready.append(waiter)
        self.messy.writeback(dest, seq)

    # -- inspection -------------------------------------------------------------------

    def pending_tags(self) -> set[int]:
        """Tags some reservation station is still waiting on (for tests)."""
        return set(self._consumers)
