"""The Messy and Future register files (paper Figure 1).

The simulator tracks timing, not data values, so the register files carry
*status* rather than contents:

* the **Messy file**'s tag side is the producer table used for Tomasulo
  renaming — per architectural register, the tag (sequence number) of the
  newest in-flight producer, or ``READY`` once the value has been written
  back out of order;
* the **Future file** is updated in order at retirement and therefore
  always reflects precise architectural state; together with the reorder
  buffer it provides the paper's precise-interrupt facility.
"""

from __future__ import annotations

from repro.isa.registers import NO_REG, NUM_REGS

#: Tag value meaning "value available" (no in-flight producer).
READY = -1


class MessyTagFile:
    """Producer tags of the out-of-order (Messy) register file."""

    def __init__(self, num_regs: int = NUM_REGS) -> None:
        self._producer: list[int] = [READY] * num_regs

    def producer_of(self, reg: int) -> int:
        """Tag of the in-flight producer of *reg*, or ``READY``."""
        return self._producer[reg]

    def rename_dest(self, reg: int, tag: int) -> None:
        """Record *tag* as the newest producer of *reg* (at dispatch)."""
        if reg != NO_REG:
            self._producer[reg] = tag

    def writeback(self, reg: int, tag: int) -> None:
        """Mark *reg* available if *tag* is still its newest producer."""
        if reg != NO_REG and self._producer[reg] == tag:
            self._producer[reg] = READY

    def busy_registers(self) -> list[int]:
        """Registers with an in-flight producer (for tests/inspection)."""
        return [r for r, tag in enumerate(self._producer) if tag != READY]


class FutureFile:
    """In-order architectural state, updated at retirement.

    Stores, per register, the sequence number of the last *retired*
    writer; this is the precise state an interrupt would observe.
    """

    def __init__(self, num_regs: int = NUM_REGS) -> None:
        self._last_retired_writer: list[int] = [READY] * num_regs

    def retire_write(self, reg: int, seq: int) -> None:
        if reg != NO_REG:
            self._last_retired_writer[reg] = seq

    def last_writer(self, reg: int) -> int:
        """Sequence number of the last retired writer of *reg* (or READY)."""
        return self._last_retired_writer[reg]
