"""The out-of-order execution core: window, ROB, units, register files."""

from repro.core.pipeline import CoreStats, ExecutionCore
from repro.core.regfiles import READY, FutureFile, MessyTagFile
from repro.core.rob import EntryState, ReorderBuffer, ROBEntry
from repro.core.units import FunctionalUnits, ResultBuses, UnitStats
from repro.core.window import SchedulingWindow, WindowEntry

__all__ = [
    "CoreStats",
    "EntryState",
    "ExecutionCore",
    "FunctionalUnits",
    "FutureFile",
    "MessyTagFile",
    "READY",
    "ReorderBuffer",
    "ROBEntry",
    "ResultBuses",
    "SchedulingWindow",
    "UnitStats",
    "WindowEntry",
]
