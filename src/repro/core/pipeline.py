"""The out-of-order execution core (paper Figure 1).

Full-Tomasulo engine: fetch delivers into the scheduling window (via the
simulator), independent instructions fire to functional units, results
return over the result buses, and the reorder buffer retires in order.
The core never sees wrong-path instructions — in the trace-driven harness
fetch stops at a mispredicted branch — so recovery is purely a fetch-side
stall until the flagged branch resolves here.

Per-cycle phase order (driven by the simulator, reverse pipeline order to
avoid same-cycle races): retire -> writeback -> fire -> dispatch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.regfiles import READY, FutureFile
from repro.core.rob import EntryState, ReorderBuffer, ROBEntry
from repro.core.units import FunctionalUnits, ResultBuses
from repro.core.window import SchedulingWindow
from repro.isa.registers import NO_REG
from repro.isa.instruction import Instruction
from repro.isa.opcodes import LATENCY_FOR_OP, UNIT_FOR_OP, OpClass
from repro.machines.config import MachineConfig


@dataclass(slots=True)
class CoreStats:
    """Aggregate execution-core statistics."""

    retired: int = 0
    dispatched: int = 0
    window_full_stalls: int = 0
    speculation_stalls: int = 0


class ExecutionCore:
    """Tomasulo out-of-order core with a reorder buffer."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.window = SchedulingWindow(config.window_size)
        self.rob = ReorderBuffer(config.rob_size)
        self.units = FunctionalUnits(config)
        self.buses = ResultBuses(config.num_result_buses)
        self.future_file = FutureFile()
        self.stats = CoreStats()
        #: min-heap of (result_cycle, seq, entry) awaiting writeback.
        self._inflight: list[tuple[int, int, ROBEntry]] = []
        #: unresolved conditional branches in flight (speculation depth).
        self.unresolved_branches = 0
        self._next_seq = 0
        #: last store still in flight (memory_ordering="conservative").
        self._pending_store_seq = -1
        self._conservative = config.memory_ordering == "conservative"

    # -- dispatch ------------------------------------------------------------

    def can_dispatch(self, instruction: Instruction) -> bool:
        """True if *instruction* may enter the window this cycle.

        Blocked by a full window, a full ROB, or — for a conditional
        branch — the machine's speculation depth (PI4 speculates beyond 2
        branches, PI8 beyond 4, PI12 beyond 6).
        """
        window = self.window
        rob = self.rob
        if (
            window._occupied >= window.size
            or len(rob._entries) >= rob.capacity
        ):
            self.stats.window_full_stalls += 1
            return False
        if (
            instruction.op is OpClass.BR_COND
            and self.unresolved_branches >= self.config.speculation_depth
        ):
            self.stats.speculation_stalls += 1
            return False
        return True

    def dispatch(
        self,
        instruction: Instruction,
        trace_index: int,
        fetch_mispredicted: bool = False,
        actual_taken: bool = False,
        actual_target: int = -1,
    ) -> ROBEntry:
        """Enter *instruction* into the window and ROB.

        Call :meth:`can_dispatch` first; this raises on overflow.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = ROBEntry(
            seq,
            instruction,
            trace_index,
            EntryState.WAITING,
            fetch_mispredicted,
            actual_taken,
            actual_target,
        )
        # ROB append inlined (overflow already excluded by can_dispatch).
        rob_entries = self.rob._entries
        if len(rob_entries) >= self.rob.capacity:
            raise OverflowError("reorder buffer overflow")
        rob_entries.append(entry)
        op = instruction.op
        extra: tuple[int, ...] = ()
        if self._conservative:
            if (
                op in (OpClass.LOAD, OpClass.STORE)
                and self._pending_store_seq >= 0
            ):
                # No disambiguation hardware: memory operations wait for
                # the previous store to complete.
                extra = (self._pending_store_seq,)
            if op is OpClass.STORE:
                self._pending_store_seq = seq
        self.window.dispatch(entry, extra)
        if op is OpClass.BR_COND:
            self.unresolved_branches += 1
        self.stats.dispatched += 1
        return entry

    def dispatch_queue(
        self,
        head: int,
        tail: int,
        instructions,
        flagged_index: int,
        is_taken,
        next_addr,
    ) -> int:
        """Dispatch trace indices ``[head, tail)`` until blocked — one
        cycle's worth.  Returns the new head.

        The fetch queue is always a contiguous index range (fetch
        delivers consecutive correct-path instructions), so the
        simulator's fast loop passes two ints instead of a queue.  Batch
        form of ``can_dispatch`` + ``dispatch`` + ``window.dispatch``:
        one call per cycle instead of three per instruction, with the
        renaming inlined.  The stall accounting is identical — the first
        blocked head charges exactly one stall counter and ends the
        cycle (window/ROB capacity is checked before speculation depth,
        the ``can_dispatch`` order).
        """
        stats = self.stats
        window = self.window
        window_size = window.size
        occupied = window._occupied
        ready_append = window._ready.append
        producer = window.messy._producer
        consumers = window._consumers
        rob_entries = self.rob._entries
        rob_capacity = self.rob.capacity
        conservative = self._conservative
        speculation_depth = self.config.speculation_depth
        waiting = EntryState.WAITING
        br_cond = OpClass.BR_COND
        load = OpClass.LOAD
        store = OpClass.STORE
        seq = self._next_seq
        start = head
        while head < tail:
            if (
                occupied >= window_size
                or len(rob_entries) >= rob_capacity
            ):
                stats.window_full_stalls += 1
                break
            index = head
            instruction = instructions[index]
            op = instruction.op
            if (
                op is br_cond
                and self.unresolved_branches >= speculation_depth
            ):
                stats.speculation_stalls += 1
                break
            entry = ROBEntry(
                seq,
                instruction,
                index,
                waiting,
                index == flagged_index,
                is_taken[index],
                next_addr[index],
            )
            rob_entries.append(entry)
            # The entry is its own reservation station (no wrapper).
            pending = 0
            src = instruction.src1
            if src != NO_REG:
                tag = producer[src]
                if tag != READY:
                    pending += 1
                    consumers.setdefault(tag, []).append(entry)
            src = instruction.src2
            if src != NO_REG:
                tag = producer[src]
                if tag != READY:
                    pending += 1
                    consumers.setdefault(tag, []).append(entry)
            if conservative and (op is load or op is store):
                if self._pending_store_seq >= 0:
                    pending += 1
                    consumers.setdefault(
                        self._pending_store_seq, []
                    ).append(entry)
                if op is store:
                    self._pending_store_seq = seq
            entry.pending_operands = pending
            dest = instruction.dest
            if dest != NO_REG:
                producer[dest] = seq
            occupied += 1
            if pending == 0:
                ready_append(entry)
            if op is br_cond:
                self.unresolved_branches += 1
            seq += 1
            head += 1
        window._occupied = occupied
        self._next_seq = seq
        stats.dispatched += head - start
        return head

    # -- cycle phases ------------------------------------------------------------

    def retire_fast(self) -> bool:
        """Retire up to the retire width; returns True when a retired
        entry was a flagged fetch misprediction.

        Used by the simulator's fast loop, which only needs the flag (to
        restart fetch under ``recovery_at_retire``) — not the entry list
        :meth:`do_retire` builds.
        """
        entries = self.rob._entries
        width = self.config.retire_width
        done = EntryState.DONE
        last_writer = self.future_file._last_retired_writer
        flagged = False
        n = 0
        while n < width and entries and entries[0].state is done:
            entry = entries.popleft()
            dest = entry.instruction.dest
            if dest != NO_REG:
                last_writer[dest] = entry.seq
            if entry.fetch_mispredicted:
                flagged = True
            n += 1
        self.stats.retired += n
        return flagged

    def do_retire(self, cycle: int) -> list[ROBEntry]:
        """Retire up to the retire width from the ROB head, updating the
        Future file (precise state)."""
        entries = self.rob._entries
        width = self.config.retire_width
        done = EntryState.DONE
        retired: list[ROBEntry] = []
        while len(retired) < width and entries and entries[0].state is done:
            retired.append(entries.popleft())
        last_writer = self.future_file._last_retired_writer
        for entry in retired:
            dest = entry.instruction.dest
            if dest != NO_REG:
                last_writer[dest] = entry.seq
        self.stats.retired += len(retired)
        return retired

    def do_writeback(self, cycle: int) -> list[ROBEntry]:
        """Complete executions whose results are due, bus-arbitrated.

        Returns the completed entries (control transfers among them have
        *resolved*; the simulator trains the BTB and restarts fetch for
        flagged mispredictions).
        """
        inflight = self._inflight
        heappop = heapq.heappop
        window = self.window
        consumers = window._consumers
        producer = window.messy._producer
        ready_append = window._ready.append
        num_buses = self.buses.num_buses
        done = EntryState.DONE
        br_cond = OpClass.BR_COND
        completed: list[ROBEntry] = []
        # Pop due completions oldest-first straight off the heap; counting
        # every due entry up front would rescan the whole in-flight list
        # each cycle.  Bus arbitration grants the `num_buses` oldest.
        while len(completed) < num_buses and inflight and inflight[0][0] <= cycle:
            _, seq, entry = heappop(inflight)
            entry.state = done
            # window.writeback inlined: wake the consumers, free the tag.
            waiters = consumers.pop(seq, None)
            if waiters:
                for waiter in waiters:
                    waiter.pending_operands -= 1
                    if waiter.pending_operands == 0:
                        ready_append(waiter)
            instruction = entry.instruction
            dest = instruction.dest
            if dest != NO_REG and producer[dest] == seq:
                producer[dest] = READY
            if instruction.op is br_cond:
                self.unresolved_branches -= 1
            if seq == self._pending_store_seq:
                self._pending_store_seq = -1
            completed.append(entry)
        if inflight and inflight[0][0] <= cycle:
            # Surplus completions slip to the next cycle (rare); only then
            # is the full scan needed, for the contention statistics.
            self.buses.grant(
                len(completed) + sum(1 for item in inflight if item[0] <= cycle)
            )
        return completed

    def do_fire(self, cycle: int) -> int:
        """Issue ready window entries to free functional units.

        Returns the number fired.  Oldest-ready-first arbitration.
        """
        units = self.units
        # begin_cycle + try_issue inlined: one dict probe per ready entry.
        used = units._used
        for unit_type in used:
            used[unit_type] = 0
        ready = self.window.take_ready()
        if not ready:
            return 0
        capacity = units.capacity
        unit_stats = units.stats
        issues = unit_stats.issues
        unit_for_op = UNIT_FOR_OP
        heappush = heapq.heappush
        inflight = self._inflight
        latency_for_op = LATENCY_FOR_OP
        executing = EntryState.EXECUTING
        not_issued = []
        fired = 0
        for entry in ready:
            op = entry.instruction.op
            unit_type = unit_for_op[op]
            if used[unit_type] < capacity[unit_type]:
                used[unit_type] += 1
                issues[unit_type] += 1
                entry.state = executing
                heappush(inflight, (cycle + latency_for_op[op], entry.seq, entry))
                fired += 1
            else:
                unit_stats.structural_stalls += 1
                not_issued.append(entry)
        if not_issued:
            self.window.put_back(not_issued)
        return fired

    # -- state -----------------------------------------------------------------------

    def next_writeback_cycle(self) -> int | None:
        """Cycle of the earliest pending writeback, or ``None`` when
        nothing is in flight (the simulator's event-skipping loop jumps
        straight to this cycle when the machine is otherwise idle)."""
        inflight = self._inflight
        return inflight[0][0] if inflight else None

    @property
    def has_ready(self) -> bool:
        """True when some window entry could fire this cycle (O(1))."""
        return self.window.ready_count > 0

    @property
    def drained(self) -> bool:
        """True when nothing is in flight."""
        return self.rob.empty

    @property
    def retired_count(self) -> int:
        return self.stats.retired
