"""The out-of-order execution core (paper Figure 1).

Full-Tomasulo engine: fetch delivers into the scheduling window (via the
simulator), independent instructions fire to functional units, results
return over the result buses, and the reorder buffer retires in order.
The core never sees wrong-path instructions — in the trace-driven harness
fetch stops at a mispredicted branch — so recovery is purely a fetch-side
stall until the flagged branch resolves here.

Per-cycle phase order (driven by the simulator, reverse pipeline order to
avoid same-cycle races): retire -> writeback -> fire -> dispatch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.regfiles import FutureFile
from repro.core.rob import EntryState, ReorderBuffer, ROBEntry
from repro.core.units import FunctionalUnits, ResultBuses
from repro.core.window import SchedulingWindow
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.machines.config import MachineConfig


@dataclass(slots=True)
class CoreStats:
    """Aggregate execution-core statistics."""

    retired: int = 0
    dispatched: int = 0
    window_full_stalls: int = 0
    speculation_stalls: int = 0


class ExecutionCore:
    """Tomasulo out-of-order core with a reorder buffer."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.window = SchedulingWindow(config.window_size)
        self.rob = ReorderBuffer(config.rob_size)
        self.units = FunctionalUnits(config)
        self.buses = ResultBuses(config.num_result_buses)
        self.future_file = FutureFile()
        self.stats = CoreStats()
        #: min-heap of (result_cycle, seq, entry) awaiting writeback.
        self._inflight: list[tuple[int, int, ROBEntry]] = []
        #: unresolved conditional branches in flight (speculation depth).
        self.unresolved_branches = 0
        self._next_seq = 0
        #: last store still in flight (memory_ordering="conservative").
        self._pending_store_seq = -1

    # -- dispatch ------------------------------------------------------------

    def can_dispatch(self, instruction: Instruction) -> bool:
        """True if *instruction* may enter the window this cycle.

        Blocked by a full window, a full ROB, or — for a conditional
        branch — the machine's speculation depth (PI4 speculates beyond 2
        branches, PI8 beyond 4, PI12 beyond 6).
        """
        if self.window.full or self.rob.full:
            self.stats.window_full_stalls += 1
            return False
        if (
            instruction.op is OpClass.BR_COND
            and self.unresolved_branches >= self.config.speculation_depth
        ):
            self.stats.speculation_stalls += 1
            return False
        return True

    def dispatch(
        self,
        instruction: Instruction,
        trace_index: int,
        fetch_mispredicted: bool = False,
        actual_taken: bool = False,
        actual_target: int = -1,
    ) -> ROBEntry:
        """Enter *instruction* into the window and ROB.

        Call :meth:`can_dispatch` first; this raises on overflow.
        """
        entry = ROBEntry(
            seq=self._next_seq,
            instruction=instruction,
            trace_index=trace_index,
            fetch_mispredicted=fetch_mispredicted,
            actual_taken=actual_taken,
            actual_target=actual_target,
        )
        self._next_seq += 1
        self.rob.append(entry)
        extra: tuple[int, ...] = ()
        if (
            self.config.memory_ordering == "conservative"
            and instruction.op in (OpClass.LOAD, OpClass.STORE)
            and self._pending_store_seq >= 0
        ):
            # No disambiguation hardware: memory operations wait for the
            # previous store to complete.
            extra = (self._pending_store_seq,)
        self.window.dispatch(entry, extra_dependencies=extra)
        if instruction.op is OpClass.BR_COND:
            self.unresolved_branches += 1
        if (
            self.config.memory_ordering == "conservative"
            and instruction.op is OpClass.STORE
        ):
            self._pending_store_seq = entry.seq
        self.stats.dispatched += 1
        return entry

    # -- cycle phases ------------------------------------------------------------

    def do_retire(self, cycle: int) -> list[ROBEntry]:
        """Retire up to the retire width from the ROB head, updating the
        Future file (precise state)."""
        retired = self.rob.retire(self.config.retire_width)
        for entry in retired:
            self.future_file.retire_write(entry.instruction.dest, entry.seq)
        self.stats.retired += len(retired)
        return retired

    def do_writeback(self, cycle: int) -> list[ROBEntry]:
        """Complete executions whose results are due, bus-arbitrated.

        Returns the completed entries (control transfers among them have
        *resolved*; the simulator trains the BTB and restarts fetch for
        flagged mispredictions).
        """
        inflight = self._inflight
        due = sum(1 for item in inflight if item[0] <= cycle)
        granted = self.buses.grant(due)
        completed: list[ROBEntry] = []
        for _ in range(granted):
            _, seq, entry = heapq.heappop(inflight)
            entry.state = EntryState.DONE
            self.window.writeback(seq, entry.instruction.dest)
            if entry.instruction.op is OpClass.BR_COND:
                self.unresolved_branches -= 1
            if seq == self._pending_store_seq:
                self._pending_store_seq = -1
            completed.append(entry)
        return completed

    def do_fire(self, cycle: int) -> int:
        """Issue ready window entries to free functional units.

        Returns the number fired.  Oldest-ready-first arbitration.
        """
        self.units.begin_cycle()
        ready = self.window.take_ready()
        not_issued = []
        fired = 0
        for wentry in ready:
            entry = wentry.rob_entry
            if self.units.try_issue(entry.instruction.op):
                entry.state = EntryState.EXECUTING
                result_cycle = cycle + entry.instruction.latency
                heapq.heappush(self._inflight, (result_cycle, entry.seq, entry))
                fired += 1
            else:
                not_issued.append(wentry)
        if not_issued:
            self.window.put_back(not_issued)
        return fired

    # -- state -----------------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """True when nothing is in flight."""
        return self.rob.empty

    @property
    def retired_count(self) -> int:
        return self.stats.retired
