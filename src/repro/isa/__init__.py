"""Simplified fixed-format 32-bit RISC instruction set (paper Section 2)."""

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import (
    BYTES_PER_INSTRUCTION,
    UNPLACED,
    Instruction,
    nop,
)
from repro.isa.opcodes import (
    CONTROL_OPS,
    LATENCY_FOR_OP,
    UNCONDITIONAL_OPS,
    UNIT_FOR_OP,
    OpClass,
    UnitType,
    is_control,
    is_unconditional,
)
from repro.isa.registers import (
    FP_REG_BASE,
    INT_REG_BASE,
    NO_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_name,
)

__all__ = [
    "BYTES_PER_INSTRUCTION",
    "CONTROL_OPS",
    "EncodingError",
    "FP_REG_BASE",
    "INT_REG_BASE",
    "Instruction",
    "LATENCY_FOR_OP",
    "NO_REG",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "OpClass",
    "UNCONDITIONAL_OPS",
    "UNIT_FOR_OP",
    "UNPLACED",
    "UnitType",
    "decode",
    "encode",
    "fp_reg",
    "int_reg",
    "is_control",
    "is_fp_reg",
    "is_unconditional",
    "nop",
    "reg_name",
]
