"""Operation classes for the simplified 32-bit RISC instruction set.

The paper encodes instructions in a fixed 32-bit format derived from GCC's
intermediate code after PA-RISC register allocation.  We model the same
abstraction level: a small set of operation *classes*, each mapped to a
functional-unit type and an execution latency (paper Table 1: fixed-point
latency 1, floating-point latency 2, branch latency 1).
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Operation class of an instruction.

    The class determines which functional unit executes the instruction
    and its latency.  Control-flow classes (``BR_COND``, ``JUMP``, ``CALL``,
    ``RET``) execute on branch units.
    """

    NOP = 0
    IALU = 1
    FALU = 2
    LOAD = 3
    STORE = 4
    BR_COND = 5
    JUMP = 6
    CALL = 7
    RET = 8


class UnitType(enum.IntEnum):
    """Functional-unit types of the execution core (paper Figure 1)."""

    FXU = 0
    FPU = 1
    BRANCH = 2
    LOAD_UNIT = 3
    STORE_BUFFER = 4


#: Functional unit executing each operation class.
UNIT_FOR_OP: dict[OpClass, UnitType] = {
    OpClass.NOP: UnitType.FXU,
    OpClass.IALU: UnitType.FXU,
    OpClass.FALU: UnitType.FPU,
    OpClass.LOAD: UnitType.LOAD_UNIT,
    OpClass.STORE: UnitType.STORE_BUFFER,
    OpClass.BR_COND: UnitType.BRANCH,
    OpClass.JUMP: UnitType.BRANCH,
    OpClass.CALL: UnitType.BRANCH,
    OpClass.RET: UnitType.BRANCH,
}

#: Execution latency in cycles for each operation class.  Fixed-point and
#: branch operations take one cycle, floating-point two (paper Table 1).
#: Loads take two cycles through the load units; data-cache misses are not
#: modelled (paper Section 2).
LATENCY_FOR_OP: dict[OpClass, int] = {
    OpClass.NOP: 1,
    OpClass.IALU: 1,
    OpClass.FALU: 2,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.BR_COND: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
}

#: Operation classes that transfer control.
CONTROL_OPS: frozenset[OpClass] = frozenset(
    {OpClass.BR_COND, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)

#: Control operations that are always taken when executed.
UNCONDITIONAL_OPS: frozenset[OpClass] = frozenset(
    {OpClass.JUMP, OpClass.CALL, OpClass.RET}
)


def is_control(op: OpClass) -> bool:
    """Return True if *op* transfers control."""
    return op in CONTROL_OPS


def is_unconditional(op: OpClass) -> bool:
    """Return True if *op* always redirects the instruction stream."""
    return op in UNCONDITIONAL_OPS
