"""Architectural register name space.

A single flat space of 64 registers is used: integer registers ``r0``-``r31``
occupy ids 0-31 and floating-point registers ``f0``-``f31`` ids 32-63.  A
flat space keeps Tomasulo renaming uniform across both files while still
letting workload generators draw from the appropriate class.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Sentinel meaning "no register operand".
NO_REG = -1

INT_REG_BASE = 0
FP_REG_BASE = NUM_INT_REGS


def int_reg(index: int) -> int:
    """Return the flat register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return INT_REG_BASE + index


def fp_reg(index: int) -> int:
    """Return the flat register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index


def is_fp_reg(reg: int) -> bool:
    """Return True if the flat register id names a floating-point register."""
    return FP_REG_BASE <= reg < NUM_REGS


def reg_name(reg: int) -> str:
    """Human-readable name of a flat register id."""
    if reg == NO_REG:
        return "-"
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if is_fp_reg(reg):
        return f"f{reg - FP_REG_BASE}"
    return f"r{reg}"
