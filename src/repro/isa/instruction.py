"""The Instruction record.

Instructions use a fixed, 32-bit format (paper Section 2).  Internally an
instruction is a small slotted object; its ``address`` is an instruction-word
index assigned when the program is laid out in memory (one word = 4 bytes).
Control-flow instructions carry a ``target`` word address, patched during
layout from the owning basic block's successor labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    LATENCY_FOR_OP,
    OpClass,
    is_control,
    is_unconditional,
)
from repro.isa.registers import NO_REG, reg_name

#: Address value before layout has assigned one.
UNPLACED = -1

BYTES_PER_INSTRUCTION = 4


@dataclass(slots=True, eq=False)
class Instruction:
    """A single machine instruction.

    Attributes:
        op: Operation class.
        dest: Destination register id, or ``NO_REG``.
        src1: First source register id, or ``NO_REG``.
        src2: Second source register id, or ``NO_REG``.
        address: Instruction-word address; ``UNPLACED`` until layout.
        target: Control-transfer target word address (branches only);
            ``UNPLACED`` until layout.  ``RET`` instructions keep
            ``UNPLACED`` (target depends on the call site).
        block_id: Id of the owning basic block, assigned by the CFG.
    """

    op: OpClass
    dest: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    address: int = UNPLACED
    target: int = UNPLACED
    block_id: int = -1

    @property
    def is_control(self) -> bool:
        """True if this instruction can redirect the instruction stream."""
        return is_control(self.op)

    @property
    def is_conditional_branch(self) -> bool:
        """True for conditional branches."""
        return self.op is OpClass.BR_COND

    @property
    def is_unconditional(self) -> bool:
        """True for jumps, calls and returns."""
        return is_unconditional(self.op)

    @property
    def is_nop(self) -> bool:
        return self.op is OpClass.NOP

    @property
    def latency(self) -> int:
        """Execution latency in cycles."""
        return LATENCY_FOR_OP[self.op]

    @property
    def byte_address(self) -> int:
        """Byte address of the instruction (4 bytes per instruction)."""
        return self.address * BYTES_PER_INSTRUCTION

    def sources(self) -> tuple[int, ...]:
        """Register ids read by this instruction (excludes ``NO_REG``)."""
        srcs = []
        if self.src1 != NO_REG:
            srcs.append(self.src1)
        if self.src2 != NO_REG:
            srcs.append(self.src2)
        return tuple(srcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name.lower()]
        if self.dest != NO_REG:
            parts.append(reg_name(self.dest))
        for src in self.sources():
            parts.append(reg_name(src))
        loc = f"@{self.address}" if self.address != UNPLACED else "@?"
        tgt = f"->{self.target}" if self.target != UNPLACED else ""
        return f"<{' '.join(parts)} {loc}{tgt}>"


def nop() -> Instruction:
    """Construct a fresh ``NOP`` instruction."""
    return Instruction(OpClass.NOP)
