"""Binary encoding of the fixed 32-bit instruction format.

The paper's instruction set is "a simplified version of GCC's intermediate
code ... encoded using a fixed, 32-bit format".  We define a concrete
encoding so programs have a real binary image (used by the I-cache model's
capacity accounting and by tests that round-trip programs):

Register format (NOP/IALU/FALU/LOAD/STORE)::

    [31:26] opcode  [25:19] dest  [18:12] src1  [11:5] src2  [4:0] zero

Branch format (BR_COND)::

    [31:26] opcode  [25:19] src1  [18:0] signed target displacement (words)

Jump format (JUMP/CALL/RET)::

    [31:26] opcode  [25:0] signed target displacement (words)

Displacements are relative to the branch's own word address.  ``RET``
encodes a zero displacement (targets are call-site dependent).
"""

from __future__ import annotations

from repro.isa.instruction import UNPLACED, Instruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG

_OPCODE_SHIFT = 26
_DEST_SHIFT = 19
_SRC1_SHIFT = 12
_SRC2_SHIFT = 5
_REG_MASK = 0x7F

_BR_DISP_BITS = 19
_JMP_DISP_BITS = 26

#: Register field value encoding "no register".  Fields are 7 bits wide
#: so all 64 architectural registers (f31 = id 63) encode alongside the
#: sentinel; a 6-bit field would alias f31 with "no register".
_REG_NONE = 0x7F


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _encode_reg(reg: int) -> int:
    if reg == NO_REG:
        return _REG_NONE
    if not 0 <= reg < _REG_NONE:
        raise EncodingError(f"register id not encodable: {reg}")
    return reg


def _decode_reg(field: int) -> int:
    return NO_REG if field == _REG_NONE else field


def _encode_disp(value: int, bits: int) -> int:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"displacement {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def _decode_disp(field: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (field & (sign - 1)) - (field & sign)


def encode(instr: Instruction) -> int:
    """Encode *instr* into its 32-bit binary word.

    Control instructions must be placed (have an address) so the target
    displacement can be computed; ``RET`` is exempt.
    """
    word = int(instr.op) << _OPCODE_SHIFT
    if instr.op in (OpClass.BR_COND, OpClass.JUMP, OpClass.CALL, OpClass.RET):
        if instr.op is OpClass.RET:
            disp = 0
        else:
            if instr.address == UNPLACED or instr.target == UNPLACED:
                raise EncodingError(
                    "control instruction must be laid out before encoding"
                )
            disp = instr.target - instr.address
        if instr.op is OpClass.BR_COND:
            word |= _encode_reg(instr.src1) << _DEST_SHIFT
            word |= _encode_disp(disp, _BR_DISP_BITS)
        else:
            word |= _encode_disp(disp, _JMP_DISP_BITS)
        return word
    word |= _encode_reg(instr.dest) << _DEST_SHIFT
    word |= _encode_reg(instr.src1) << _SRC1_SHIFT
    word |= _encode_reg(instr.src2) << _SRC2_SHIFT
    return word


def decode(word: int, address: int = UNPLACED) -> Instruction:
    """Decode a 32-bit binary word into an :class:`Instruction`.

    If *address* is given, branch targets are materialised from the encoded
    displacement.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word!r}")
    opcode = word >> _OPCODE_SHIFT
    try:
        op = OpClass(opcode)
    except ValueError as exc:
        raise EncodingError(f"unknown opcode: {opcode}") from exc
    if op in (OpClass.JUMP, OpClass.CALL, OpClass.RET):
        disp = _decode_disp(word & ((1 << _JMP_DISP_BITS) - 1), _JMP_DISP_BITS)
        target = UNPLACED
        if op is not OpClass.RET and address != UNPLACED:
            target = address + disp
        return Instruction(op, address=address, target=target)
    if op is OpClass.BR_COND:
        src1 = _decode_reg((word >> _DEST_SHIFT) & _REG_MASK)
        disp = _decode_disp(word & ((1 << _BR_DISP_BITS) - 1), _BR_DISP_BITS)
        target = address + disp if address != UNPLACED else UNPLACED
        return Instruction(op, src1=src1, address=address, target=target)
    dest = _decode_reg((word >> _DEST_SHIFT) & _REG_MASK)
    src1 = _decode_reg((word >> _SRC1_SHIFT) & _REG_MASK)
    src2 = _decode_reg((word >> _SRC2_SHIFT) & _REG_MASK)
    return Instruction(op, dest=dest, src1=src1, src2=src2, address=address)
