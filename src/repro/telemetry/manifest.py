"""Run provenance: the JSON manifest written next to telemetry output.

A manifest answers "what exactly produced these numbers?" months later:
the command and its arguments, a digest of the simulator sources (the
same one that keys the persistent result cache, so a manifest can be
matched to the cache generation that served it), the machine-config
fingerprints, every ``REPRO_*`` environment knob, the host, and the
wall-clock phase timings.  ``runner``/``batch``/``sweep`` fill in their
own ``results`` payloads.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


def config_fingerprint(config) -> str:
    """Stable digest of a machine config (or any dataclass/dict)."""
    import hashlib

    if is_dataclass(config) and not isinstance(config, type):
        payload = repr(sorted(asdict(config).items()))
    elif isinstance(config, dict):
        payload = repr(sorted(config.items()))
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def environment_knobs() -> dict[str, str]:
    """Every ``REPRO_*`` environment variable currently set."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def build_manifest(
    command: str,
    arguments: dict | None = None,
    configs: dict[str, str] | None = None,
    seeds: dict[str, int] | None = None,
    timings: dict[str, float] | None = None,
    results: dict | list | None = None,
    cache_stats: dict[str, int] | None = None,
    outcomes: list[dict] | None = None,
) -> dict:
    """Assemble the manifest document (pure data, JSON-serialisable)."""
    # Imported lazily: the cache module lives in repro.sim, which in
    # turn imports the telemetry package for the simulator hooks.
    from repro.sim.cache import source_version

    return {
        "manifest_version": MANIFEST_VERSION,
        "created_unix": round(time.time(), 3),
        "created_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "command": command,
        "arguments": arguments or {},
        "source_version": source_version(),
        "config_fingerprints": configs or {},
        "seeds": seeds or {},
        "environment": environment_knobs(),
        "host": {
            "hostname": socket.gethostname(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "timings_seconds": {
            name: round(seconds, 6)
            for name, seconds in (timings or {}).items()
        },
        "result_cache": cache_stats or {},
        #: Per-job supervision audit from the sweep engine
        #: (ok/retried/timeout/crashed/skipped, attempts, failures).
        "job_outcomes": outcomes or [],
        "results": results if results is not None else {},
    }


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write *manifest* as pretty-printed JSON, creating parents."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return target
