"""Telemetry: metrics, stall attribution, tracing, provenance, export.

Cooperating pieces:

* :mod:`repro.telemetry.core` — a tiny metrics registry (counters,
  histograms, wall-clock timers) with a null backend, plus
  :class:`TelemetryReport`, the record one instrumented simulation
  produces.
* :mod:`repro.telemetry.attribution` — the slot-conservation ledger:
  every cycle each of the machine's ``issue_rate`` slots is charged to
  exactly one cause, so losses sum to ``cycles * issue_rate`` exactly.
* :mod:`repro.telemetry.trace` — distributed tracing: spans with W3C
  trace-context propagation across every process boundary, a bounded
  in-process flight recorder with crash-safe spill files, and Chrome
  trace-event (Perfetto) export.  Opt-in via ``REPRO_TRACE=1``.
* :mod:`repro.telemetry.timeline` — read-side trace analysis for the
  ``repro trace`` CLI (trace trees, critical-path self-time tables).
* :mod:`repro.telemetry.manifest` — JSON run-provenance documents
  (source digest, config fingerprints, environment knobs, host,
  timings, result-cache statistics).
* :mod:`repro.telemetry.export` — JSONL/CSV record writers plus the
  Prometheus text exposition renderer behind ``/metrics?format=prom``.

Telemetry is strictly opt-in: ``Simulator(..., telemetry=True)`` (or
``REPRO_TELEMETRY=1`` through the runners) switches to an instrumented
per-cycle loop; with it off the fast event-skipping loop runs untouched
and ``SimStats`` stays bit-identical.  Tracing follows the same
discipline — ``REPRO_TRACE=0`` (the default) makes every span call a
shared no-op singleton.  See ``docs/observability.md``.
"""

from repro.telemetry.attribution import (
    CAUSES,
    SlotAttribution,
    check_conservation,
    queue_gate_cause,
    shortfall_cause,
)
from repro.telemetry.core import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetryReport,
    telemetry_enabled,
)
from repro.telemetry.export import read_jsonl, to_csv, to_jsonl, to_prometheus
from repro.telemetry.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    config_fingerprint,
    environment_knobs,
    write_manifest,
)

__all__ = [
    "CAUSES",
    "Histogram",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SlotAttribution",
    "TelemetryReport",
    "build_manifest",
    "check_conservation",
    "config_fingerprint",
    "environment_knobs",
    "queue_gate_cause",
    "read_jsonl",
    "shortfall_cause",
    "telemetry_enabled",
    "to_csv",
    "to_jsonl",
    "to_prometheus",
    "tracing_enabled",
    "write_manifest",
]

from repro.telemetry.trace import tracing_enabled  # noqa: E402 (cycle-free)
