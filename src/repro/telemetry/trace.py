"""Distributed tracing: spans, a flight recorder, and trace-context
propagation across every process boundary the stack owns.

PR 3 attributed every lost issue slot inside *one* simulation; this
module attributes wall-clock across the *system* — client → HTTP server
→ scheduler → supervised worker → simulator → kernel/cache — so one
request can be followed end to end.  It is stdlib-only and strictly
observational: spans record timing, they never feed back into what a
simulation computes (which is why the ``REPRO_TRACE`` knob is declared
``exempt`` from cache salting in :mod:`repro.knobs`).

Model (W3C trace-context shaped):

* A :class:`Span` is one timed operation: ``trace_id`` (shared by every
  span of one request), ``span_id``, ``parent_id``, name, epoch start,
  duration, structured attributes, ``ok``/``error`` status, plus the
  recording pid/role so cross-process trees render honestly.
* Context propagates in-process through a :data:`contextvars.ContextVar`
  and across process boundaries as a ``traceparent`` string
  (``00-<trace_id>-<span_id>-01``): an HTTP header on the service
  client/server, an optional job-payload field through the protocol, and
  a task-envelope field through the supervisor/worker pool.  The trace
  context deliberately rides *outside* :class:`~repro.sim.batch.SimJob`:
  the job description is the coalescing key, the journal key and the
  result-cache key, and tracing must never perturb any of them.
* Finished spans land in the process's :class:`FlightRecorder`, a
  bounded ring buffer.  Supervised workers ship their buffered spans
  back to the parent with each job result; when ``REPRO_TRACE_DIR`` is
  set every finished span is *also* appended (flushed) to a per-process
  spill file, so a crash-killed worker's buffered spans survive on disk
  — no silent span loss (the chaos suite proves it).
* Export: the spill files are plain JSONL; :func:`to_chrome` converts
  spans to the Chrome trace-event format, which Perfetto and
  ``chrome://tracing`` load directly.  ``repro trace`` renders trees and
  critical paths from either (:mod:`repro.telemetry.timeline`).

Cost discipline: with ``REPRO_TRACE=0`` (the default) :func:`span`
returns the :data:`NULL_SPAN` singleton — no span object, no recorder
work, no allocations in this module — and the hooks sit at per-run /
per-request / per-cache-op granularity, never inside the cycle loop
(the same rule :mod:`repro.faults` follows).  The ``telemetry.trace``
fault site fires on every recorder append; an injected fault there
drops the span (counted in :attr:`FlightRecorder.dropped`) instead of
ever failing the traced operation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import faults, knobs

#: W3C traceparent version prefix this module emits.
TRACEPARENT_VERSION = "00"

#: Ring-buffer capacity of the per-process flight recorder.
RING_CAPACITY = 4096

#: Spill-file name pattern inside ``REPRO_TRACE_DIR`` (one per process).
SPILL_PATTERN = "spans-{pid}.jsonl"


# -- enablement ---------------------------------------------------------------

_enabled_memo: bool | None = None


def tracing_enabled() -> bool:
    """Whether spans are recorded (``REPRO_TRACE``), memoised per
    process so the hot-path check is one global read."""
    global _enabled_memo
    if _enabled_memo is None:
        _enabled_memo = knobs.enabled("REPRO_TRACE")
    return _enabled_memo


def reload() -> bool:
    """Re-read the environment (tests; call after flipping
    ``REPRO_TRACE``/``REPRO_TRACE_DIR`` mid-process)."""
    global _enabled_memo, _spill_handle, _spill_pid
    _enabled_memo = None
    if _spill_handle is not None:
        try:
            _spill_handle.close()
        except OSError:  # pragma: no cover - already severed
            pass
    _spill_handle = None
    _spill_pid = None
    return tracing_enabled()


def trace_dir() -> Path | None:
    """Persistent span-export directory (``REPRO_TRACE_DIR``), or
    ``None`` when export is off (ring buffer only)."""
    raw = knobs.raw("REPRO_TRACE_DIR")
    return Path(raw) if raw else None


# -- identifiers and context --------------------------------------------------


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagatable identity of a span: its trace and its id."""

    trace_id: str
    span_id: str

    def traceparent(self) -> str:
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` string; ``None`` on any malformation
    (propagation is best-effort, a bad header never fails a request)."""
    if not value or not isinstance(value, str):
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    _version, trace_id, span_id, _flags = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return TraceContext(trace_id, span_id)


#: Ambient span context of the current thread/task (inherited by child
#: spans started without an explicit parent).
_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)

#: Role label stamped on spans this process records ("main" unless
#: :func:`set_process_role` renames it — workers, the server).
_role = "main"


def set_process_role(role: str) -> None:
    """Label spans recorded by this process (e.g. ``worker``,
    ``server``) so multi-process trees render honestly."""
    global _role
    _role = role


def current_context() -> TraceContext | None:
    """The ambient span context, or ``None`` (also when tracing is
    off — disabled processes never propagate)."""
    if not tracing_enabled():
        return None
    return _current.get()


def current_traceparent() -> str | None:
    """The ambient context as a ``traceparent`` string, or ``None``."""
    ctx = current_context()
    return ctx.traceparent() if ctx is not None else None


# -- spans --------------------------------------------------------------------


@dataclass(slots=True)
class Span:
    """One finished (or finishing) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    #: Epoch seconds — comparable across processes on one host, and the
    #: Chrome trace-event timebase.
    start: float
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    pid: int = field(default_factory=os.getpid)
    process: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "attributes": self.attributes,
            "status": self.status,
            "error": self.error,
            "pid": self.pid,
            "process": self.process,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            name=record.get("name", "?"),
            trace_id=record.get("trace_id", ""),
            span_id=record.get("span_id", ""),
            parent_id=record.get("parent_id"),
            start=float(record.get("start", 0.0)),
            duration=float(record.get("duration", 0.0)),
            attributes=dict(record.get("attributes") or {}),
            status=record.get("status", "ok"),
            error=record.get("error"),
            pid=int(record.get("pid", 0)),
            process=record.get("process", ""),
        )


#: Sentinel: "inherit the ambient context" (vs. an explicit ``None``
#: parent, which forces a new root trace).
_AMBIENT = object()


class SpanHandle:
    """A live span: context manager (activates the span as the ambient
    context) or manual (:meth:`end` from any thread)."""

    __slots__ = ("span", "_token", "_done")

    def __init__(self, span: Span) -> None:
        self.span = span
        self._token = None
        self._done = False

    def context(self) -> TraceContext:
        return TraceContext(self.span.trace_id, self.span.span_id)

    def traceparent(self) -> str | None:
        return self.context().traceparent()

    def set(self, **attributes: Any) -> "SpanHandle":
        self.span.attributes.update(attributes)
        return self

    def end(self, error: str | None = None) -> None:
        """Finish the span (idempotent) and hand it to the recorder."""
        if self._done:
            return
        self._done = True
        self.span.duration = max(0.0, time.time() - self.span.start)
        if error is not None:
            self.span.status = "error"
            self.span.error = error
        recorder.record(self.span)

    def __enter__(self) -> "SpanHandle":
        self._token = _current.set(self.context())
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        self.end(
            error=f"{exc_type.__name__}: {exc}" if exc_type is not None else None
        )


class NullSpan:
    """The do-nothing span handle returned while tracing is off.

    A single module-level instance (:data:`NULL_SPAN`) so the disabled
    path allocates nothing: same surface as :class:`SpanHandle`, every
    method a no-op.
    """

    __slots__ = ()

    span = None

    def context(self) -> None:
        return None

    def traceparent(self) -> None:
        return None

    def set(self, **_attributes: Any) -> "NullSpan":
        return self

    def end(self, error: str | None = None) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        pass


#: The shared disabled-path handle (identity-testable by the tests).
NULL_SPAN = NullSpan()


def _make_span(
    name: str, parent: TraceContext | None, attributes: dict[str, Any]
) -> Span:
    if parent is None:
        trace_id, parent_id = _new_trace_id(), None
    else:
        trace_id, parent_id = parent.trace_id, parent.span_id
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_span_id(),
        parent_id=parent_id,
        start=time.time(),
        attributes=attributes,
        process=_role,
    )


def span(
    name: str, parent: Any = _AMBIENT, **attributes: Any
) -> SpanHandle | NullSpan:
    """Start a span (``with trace.span("sim.run") as sp: ...``).

    *parent* defaults to the ambient context; pass an explicit
    :class:`TraceContext` (e.g. parsed from a ``traceparent``) to join a
    remote trace, or ``None`` to force a new root.  Returns
    :data:`NULL_SPAN` while tracing is off.
    """
    if not tracing_enabled():
        return NULL_SPAN
    resolved = _current.get() if parent is _AMBIENT else parent
    return SpanHandle(_make_span(name, resolved, dict(attributes)))


def start_span(
    name: str, parent: Any = _AMBIENT, **attributes: Any
) -> SpanHandle | NullSpan:
    """Like :func:`span` but for manual lifecycles: does not become the
    ambient context; finish it with ``handle.end()`` (any thread)."""
    return span(name, parent=parent, **attributes)


def record_span(
    name: str,
    parent: TraceContext | None,
    start: float,
    end: float,
    **attributes: Any,
) -> None:
    """Record an already-elapsed interval as a finished span (used to
    synthesize e.g. queue-wait spans from timestamps after the fact)."""
    if not tracing_enabled():
        return
    finished = _make_span(name, parent, dict(attributes))
    finished.start = start
    finished.duration = max(0.0, end - start)
    recorder.record(finished)


# -- flight recorder ----------------------------------------------------------


class FlightRecorder:
    """Bounded in-process ring buffer of finished spans.

    Always available once tracing is on; oldest spans fall off past
    *capacity*.  When ``REPRO_TRACE_DIR`` is set, every recorded span is
    also appended (flushed) to this process's spill file, so buffered
    spans survive a crash.  The ``telemetry.trace`` fault site fires on
    every append: an injected fault drops the span (counted) — tracing
    failures never propagate into the traced operation.
    """

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0
        self.absorbed = 0

    def record(self, span: Span) -> None:
        try:
            faults.maybe_fail("telemetry.trace")
        except faults.FaultInjected:
            with self._lock:
                self.dropped += 1
            return
        with self._lock:
            self._spans.append(span)
            self.recorded += 1
        _spill(span)

    def absorb(self, records: list[dict]) -> None:
        """Fold spans shipped from another process (a worker's result
        message) into this recorder; already spilled at their origin."""
        if not records:
            return
        with self._lock:
            for record in records:
                self._spans.append(Span.from_dict(record))
                self.absorbed += 1

    def drain(self) -> list[dict]:
        """Remove and return every buffered span as dicts (workers ship
        these back with each job result)."""
        with self._lock:
            spans = [span.as_dict() for span in self._spans]
            self._spans.clear()
        return spans

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def find(self, trace_id: str) -> list[Span]:
        """Buffered spans of one trace (exact id or unique prefix)."""
        with self._lock:
            exact = [s for s in self._spans if s.trace_id == trace_id]
            if exact:
                return exact
            return [s for s in self._spans if s.trace_id.startswith(trace_id)]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.recorded = 0
            self.dropped = 0
            self.absorbed = 0

    def dump(self, path: str | Path) -> Path:
        """Write the buffered spans as JSONL (flight-recorder dump)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            for span in self.spans():
                handle.write(json.dumps(span.as_dict()) + "\n")
        return target


#: The process-wide recorder.
recorder = FlightRecorder()


def drain_spans() -> list[dict]:
    """Ship-and-clear helper for workers; cheap no-op when tracing is
    off (nothing was ever recorded)."""
    if not tracing_enabled():
        return []
    return recorder.drain()


def absorb(records: list[dict]) -> None:
    """Parent-side half of :func:`drain_spans`."""
    if records:
        recorder.absorb(records)


# -- persistent spill (crash-safe export) -------------------------------------

_spill_handle = None
_spill_pid: int | None = None
_spill_lock = threading.Lock()


def spill_path() -> Path | None:
    """This process's spill file under ``REPRO_TRACE_DIR`` (or None)."""
    directory = trace_dir()
    if directory is None:
        return None
    return directory / SPILL_PATTERN.format(pid=os.getpid())


def _spill(span: Span) -> None:
    """Append one span to the spill file, flushed immediately so a
    crash loses at most the span in flight.  The handle is reopened
    after a fork (the pid changes) so workers never interleave writes
    into an inherited parent handle."""
    global _spill_handle, _spill_pid
    path = spill_path()
    if path is None:
        return
    with _spill_lock:
        if _spill_handle is None or _spill_pid != os.getpid():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                _spill_handle = path.open("a")
                _spill_pid = os.getpid()
            except OSError:  # pragma: no cover - unwritable export dir
                return
        try:
            _spill_handle.write(json.dumps(span.as_dict()) + "\n")
            _spill_handle.flush()
        except (OSError, ValueError):  # pragma: no cover - severed handle
            _spill_handle = None


# -- Chrome trace-event export ------------------------------------------------


def to_chrome(spans: list[Span] | list[dict]) -> dict:
    """Convert spans to the Chrome trace-event JSON object format
    (complete ``"X"`` events), loadable by Perfetto and
    ``chrome://tracing``."""
    events = []
    for item in spans:
        record = item.as_dict() if isinstance(item, Span) else item
        args = dict(record.get("attributes") or {})
        args["trace_id"] = record.get("trace_id")
        args["span_id"] = record.get("span_id")
        args["parent_id"] = record.get("parent_id")
        args["status"] = record.get("status", "ok")
        if record.get("error"):
            args["error"] = record["error"]
        events.append(
            {
                "name": record.get("name", "?"),
                "cat": record.get("process") or "repro",
                "ph": "X",
                "ts": float(record.get("start", 0.0)) * 1e6,
                "dur": max(0.0, float(record.get("duration", 0.0))) * 1e6,
                "pid": int(record.get("pid", 0)),
                "tid": int(record.get("pid", 0)),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome(document: object) -> list[str]:
    """Schema problems of a Chrome trace-event document (empty list =
    valid); the trace-smoke CI job gates on this."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for key, kinds in (
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if not isinstance(event.get(key), kinds):
                problems.append(f"event {index}: bad or missing {key!r}")
        if event.get("ph") == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            problems.append(f"event {index}: complete event without dur")
    return problems
