"""Telemetry exporters: JSON-lines and CSV.

Both take flat record dictionaries (one per simulation — typically
``SimStats.as_dict()`` rows, which carry the ``slot_*`` attribution
keys when the run was instrumented) and write them out for downstream
tooling.  JSONL preserves types and ragged keys; CSV flattens onto the
union of all keys for spreadsheet use.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Sequence
from pathlib import Path


def to_jsonl(records: Iterable[dict], path: str | Path) -> Path:
    """Write one JSON document per line; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=False))
            handle.write("\n")
    return target


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL file back into record dictionaries."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _union_fields(records: Sequence[dict]) -> list[str]:
    """All keys across *records*, first-seen order."""
    fields: dict[str, None] = {}
    for record in records:
        for key in record:
            fields.setdefault(key)
    return list(fields)


def to_csv(records: Iterable[dict], path: str | Path) -> Path:
    """Write records as CSV over the union of their keys."""
    rows = list(records)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=_union_fields(rows), restval=""
        )
        writer.writeheader()
        writer.writerows(rows)
    return target
