"""Telemetry exporters: JSON-lines, CSV and Prometheus text exposition.

:func:`to_jsonl` / :func:`to_csv` take flat record dictionaries (one
per simulation — typically ``SimStats.as_dict()`` rows, which carry the
``slot_*`` attribution keys when the run was instrumented) and write
them out for downstream tooling.  JSONL preserves types and ragged
keys; CSV flattens onto the union of all keys for spreadsheet use.
:func:`to_prometheus` renders a nested metrics tree (the service
``/metrics`` JSON) in the Prometheus text exposition format so standard
scrapers work against ``/metrics?format=prom``.
"""

from __future__ import annotations

import csv
import json
import re
from collections.abc import Iterable, Sequence
from pathlib import Path


def to_jsonl(records: Iterable[dict], path: str | Path) -> Path:
    """Write one JSON document per line; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=False))
            handle.write("\n")
    return target


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL file back into record dictionaries."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _union_fields(records: Sequence[dict]) -> list[str]:
    """All keys across *records*, first-seen order."""
    fields: dict[str, None] = {}
    for record in records:
        for key in record:
            fields.setdefault(key)
    return list(fields)


def to_csv(records: Iterable[dict], path: str | Path) -> Path:
    """Write records as CSV over the union of their keys."""
    rows = list(records)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=_union_fields(rows), restval=""
        )
        writer.writeheader()
        writer.writerows(rows)
    return target


_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def to_prometheus(tree: dict, prefix: str = "repro") -> str:
    """Render a nested metrics tree as Prometheus text exposition.

    Every numeric leaf becomes one sample named by its underscore-joined
    path under *prefix* (booleans count as 0/1; strings and nulls are
    skipped — they are labels in spirit, and this exposition carries
    none).  Leaves under a ``counters`` subtree are typed ``counter``;
    everything else — gauges, histogram summaries, timers — is a
    ``gauge``.  Adjacent duplicate path tokens collapse, so
    ``service -> service.jobs_admitted`` reads
    ``repro_service_jobs_admitted``, not ``repro_service_service_...``.
    """
    samples: list[tuple[str, str, float]] = []

    def emit(path: list[str], value: object, metric_type: str) -> None:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            return
        tokens = [prefix]
        for part in path:
            tokens.extend(
                token
                for token in _METRIC_NAME_RE.sub("_", str(part)).split("_")
                if token
            )
        collapsed: list[str] = []
        for token in tokens:
            if not collapsed or collapsed[-1] != token:
                collapsed.append(token)
        samples.append(("_".join(collapsed), metric_type, float(value)))

    def walk(node: object, path: list[str], metric_type: str) -> None:
        if isinstance(node, dict):
            for key, value in sorted(node.items()):
                if key == "counters":
                    walk(value, path, "counter")
                elif key in ("histograms", "timers"):
                    walk(value, path, "gauge")
                else:
                    walk(value, path + [key], metric_type)
        else:
            emit(path, node, metric_type)

    walk(tree, [], "gauge")
    lines: list[str] = []
    seen: set[str] = set()
    for name, metric_type, value in samples:
        if name in seen:
            continue
        seen.add(name)
        rendered = str(int(value)) if value.is_integer() else repr(value)
        lines.append(f"# TYPE {name} {metric_type}")
        lines.append(f"{name} {rendered}")
    return "\n".join(lines) + "\n"
