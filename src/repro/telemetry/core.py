"""Lightweight metrics core: counters, histograms and wall-clock timers.

The registry is deliberately tiny — plain dictionaries, no label
cardinality, no export protocol — because its job is to give the
instrumented simulation loop and the CLI somewhere cheap to record
events.  :class:`NullRegistry` is the off-switch: every method is a
no-op, so library code can unconditionally call ``registry.inc(...)``
without branching.  The simulator goes one step further and runs a
completely separate instrumented loop only when telemetry is requested,
so the hot path carries zero telemetry cost when it is off (the
guarantee ``tests/test_telemetry.py`` locks in).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import knobs


def telemetry_enabled() -> bool:
    """True when ``REPRO_TELEMETRY`` requests telemetry by default."""
    return knobs.enabled("REPRO_TELEMETRY")


@dataclass(slots=True)
class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    A full bucketed histogram is overkill for the current consumers
    (per-cycle delivery sizes, phase durations); the four moments kept
    here reconstruct means and ranges, which is what the reports print.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Counters, histograms and accumulated wall-clock timers."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, float] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self.histograms.items()
            },
            "timers": {
                name: round(seconds, 6)
                for name, seconds in self.timers.items()
            },
        }


class NullRegistry(MetricsRegistry):
    """The null backend: accepts every call, records nothing."""

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def add_time(self, name: str, seconds: float) -> None:
        pass

    @contextmanager
    def timer(self, name: str):
        yield


#: Shared no-op registry for callers that want an always-valid sink.
NULL_REGISTRY = NullRegistry()


@dataclass(slots=True)
class TelemetryReport:
    """Everything one instrumented simulation recorded."""

    #: Measured-region slot attribution (cause -> slots); sums to
    #: ``cycles * issue_rate``.
    attribution: dict[str, int]
    cycles: int
    issue_rate: int
    #: Accumulated wall-clock seconds per pipeline phase.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    @property
    def total_slots(self) -> int:
        return self.cycles * self.issue_rate

    def rates(self) -> dict[str, float]:
        """Attribution normalised to slots per cycle."""
        if not self.cycles:
            return dict.fromkeys(self.attribution, 0.0)
        return {
            cause: slots / self.cycles
            for cause, slots in self.attribution.items()
        }

    def as_dict(self) -> dict:
        return {
            "attribution": dict(self.attribution),
            "cycles": self.cycles,
            "issue_rate": self.issue_rate,
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.phase_seconds.items()
            },
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
        }
