"""Trace loading and rendering for the ``repro trace`` CLI.

Reads the per-process span spill files a traced run leaves under
``REPRO_TRACE_DIR`` (``spans-<pid>.jsonl``, written by
:mod:`repro.telemetry.trace`), groups them into traces, and renders:

* a one-line-per-trace listing (newest first),
* an indented span tree for one trace (cross-process — each line shows
  the recording process role and pid),
* a top-N critical-path table across traces: per span name, the total
  *self time* (span duration minus the time covered by its children),
  which is where wall-clock actually went.

Pure read-side analysis: nothing here records spans or touches the
flight recorder, so it can run against a live service's trace
directory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.trace import Span


def load_dir(directory: str | Path) -> list[Span]:
    """Read every span from the ``spans-*.jsonl`` spill files (and any
    other ``*.jsonl`` dumps) under *directory*; bad lines are skipped —
    a crash may truncate the final line of a spill file mid-write."""
    root = Path(directory)
    spans: list[Span] = []
    if not root.is_dir():
        return spans
    for path in sorted(root.glob("*.jsonl")):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "trace_id" in record:
                spans.append(Span.from_dict(record))
    return spans


def group_traces(spans: list[Span]) -> dict[str, list[Span]]:
    """Spans bucketed by trace id, each bucket sorted by start time."""
    traces: dict[str, list[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    for bucket in traces.values():
        bucket.sort(key=lambda s: (s.start, s.span_id))
    return traces


def find_trace(spans: list[Span], trace_id: str) -> list[Span]:
    """The spans of one trace by exact id or unique prefix; raises
    ``ValueError`` when the prefix is ambiguous or unknown."""
    traces = group_traces(spans)
    if trace_id in traces:
        return traces[trace_id]
    matches = [tid for tid in traces if tid.startswith(trace_id)]
    if len(matches) == 1:
        return traces[matches[0]]
    if not matches:
        raise ValueError(f"no trace matches {trace_id!r}")
    raise ValueError(
        f"{trace_id!r} is ambiguous ({len(matches)} traces match)"
    )


def trace_summaries(spans: list[Span]) -> list[dict]:
    """One summary row per trace, newest first: id, root span name,
    wall-clock duration, span count, distinct processes touched."""
    rows = []
    for trace_id, bucket in group_traces(spans).items():
        ids = {s.span_id for s in bucket}
        roots = [s for s in bucket if not s.parent_id or s.parent_id not in ids]
        root = min(roots, key=lambda s: s.start) if roots else bucket[0]
        end = max(s.start + s.duration for s in bucket)
        rows.append(
            {
                "trace_id": trace_id,
                "root": root.name,
                "start": root.start,
                "duration": max(root.duration, end - root.start),
                "spans": len(bucket),
                "processes": len({(s.process, s.pid) for s in bucket}),
                "errors": sum(1 for s in bucket if s.status != "ok"),
            }
        )
    rows.sort(key=lambda r: r["start"], reverse=True)
    return rows


def render_listing(spans: list[Span], limit: int = 20) -> str:
    """The trace listing as text (``repro trace`` with no id)."""
    rows = trace_summaries(spans)
    if not rows:
        return "no traces found"
    lines = [
        f"{'trace':16s}  {'root span':24s}  {'duration':>10s}  "
        f"{'spans':>5s}  {'procs':>5s}  {'errors':>6s}"
    ]
    for row in rows[:limit]:
        lines.append(
            f"{row['trace_id'][:16]:16s}  {row['root'][:24]:24s}  "
            f"{row['duration'] * 1e3:8.2f}ms  {row['spans']:5d}  "
            f"{row['processes']:5d}  {row['errors']:6d}"
        )
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more traces")
    return "\n".join(lines)


def render_tree(bucket: list[Span]) -> str:
    """One trace as an indented tree, children under parents in start
    order; orphaned spans (parent span lost, e.g. ring overflow) are
    promoted to the root level rather than hidden."""
    ids = {s.span_id for s in bucket}
    children: dict[str | None, list[Span]] = {}
    for span in bucket:
        key = span.parent_id if span.parent_id in ids else None
        children.setdefault(key, []).append(span)
    for sibling in children.values():
        sibling.sort(key=lambda s: (s.start, s.span_id))

    origin = min(s.start for s in bucket) if bucket else 0.0
    lines: list[str] = []
    if bucket:
        lines.append(f"trace {bucket[0].trace_id}")

    def walk(span: Span, depth: int) -> None:
        marker = "" if span.status == "ok" else "  !! " + (span.error or "error")
        attrs = ""
        if span.attributes:
            parts = [f"{k}={v}" for k, v in sorted(span.attributes.items())]
            attrs = "  {" + ", ".join(parts) + "}"
        lines.append(
            f"{'  ' * depth}- {span.name}  "
            f"[{(span.start - origin) * 1e3:+.2f}ms "
            f"+{span.duration * 1e3:.2f}ms]  "
            f"({span.process or '?'}/{span.pid}){attrs}{marker}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 1)
    return "\n".join(lines)


def _self_time(span: Span, bucket: list[Span]) -> float:
    """Span duration minus the union of its children's intervals —
    the time this span itself was the critical work."""
    intervals = sorted(
        (max(c.start, span.start), min(c.start + c.duration, span.start + span.duration))
        for c in bucket
        if c.parent_id == span.span_id
    )
    covered = 0.0
    cursor = span.start
    for lo, hi in intervals:
        if hi <= cursor:
            continue
        covered += hi - max(lo, cursor)
        cursor = hi
    return max(0.0, span.duration - covered)


def critical_path(spans: list[Span], top: int = 10) -> list[dict]:
    """Aggregate self time per span name across every trace: the top-N
    places wall-clock actually went."""
    totals: dict[str, dict] = {}
    for bucket in group_traces(spans).values():
        for span in bucket:
            row = totals.setdefault(
                span.name,
                {"name": span.name, "count": 0, "self": 0.0, "total": 0.0},
            )
            row["count"] += 1
            row["self"] += _self_time(span, bucket)
            row["total"] += span.duration
    rows = sorted(totals.values(), key=lambda r: r["self"], reverse=True)
    return rows[:top]


def render_critical_path(spans: list[Span], top: int = 10) -> str:
    rows = critical_path(spans, top=top)
    if not rows:
        return "no spans found"
    lines = [
        f"{'span':24s}  {'count':>5s}  {'self time':>10s}  "
        f"{'total':>10s}  {'self/span':>9s}"
    ]
    for row in rows:
        lines.append(
            f"{row['name'][:24]:24s}  {row['count']:5d}  "
            f"{row['self'] * 1e3:8.2f}ms  {row['total'] * 1e3:8.2f}ms  "
            f"{row['self'] / row['count'] * 1e3:7.2f}ms"
        )
    return "\n".join(lines)
