"""Slot-level stall attribution — the paper's accounting, made explicit.

Every cycle a machine offers ``issue_rate`` issue slots; the whole paper
is an argument about where those slots go.  This module charges each
slot of each cycle to exactly one cause, so that over any run

``sum(attribution.values()) == cycles * issue_rate``

holds bit-exactly (the conservation invariant ``tests/test_telemetry.py``
asserts across schemes and machines).  The taxonomy:

=====================  =========================================================
``delivered``          Slot carried a correct-path instruction to decode.
``taken_branch_break`` Fetch run ended at a predicted-taken branch the scheme
                       cannot fetch past (the paper's headline loss).
``misalignment``       Run ended at a cache-block boundary (or a structural
                       line limit) with no branch involved.
``bank_conflict``      The successor block mapped to the busy bank, so the
                       second fetch was dropped (banked/collapsing schemes).
``icache_miss``        Fetch stalled on a miss fill, or the run truncated at a
                       missing successor block.
``mispredict_resolve`` Fetch idled waiting for a mispredicted branch to resolve
                       or sat out the post-resolution restart penalty; also the
                       slots lost when delivery truncated at the misprediction.
``queue_full``         The decoupling queue had no room for a fetch group while
                       the core itself could still accept work.
``window_full``        Core backpressure: the scheduling window/ROB was full or
                       speculation depth was exhausted, so the full queue could
                       not drain.
``idle``               The trace is fully fetched; the core is draining.
=====================  =========================================================

The per-cycle *classification* helpers live here too so the three
consumers — the instrumented simulator loop, the pipetrace recorder and
the tests — agree on precedence by construction: queue gating is
checked first, then misprediction resolution, then fetch-blocked
penalties, then trace exhaustion, and only then does fetch run.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass

#: All causes, report order: useful work first, fetch-side losses,
#: core-side losses, drain.
CAUSES: tuple[str, ...] = (
    "delivered",
    "taken_branch_break",
    "misalignment",
    "bank_conflict",
    "icache_miss",
    "mispredict_resolve",
    "queue_full",
    "window_full",
    "idle",
)

#: ``FetchPlan.break_reason`` values -> attribution causes for the slots
#: a short delivery leaves empty.  An unset reason (a third-party scheme
#: that never learned to report one) conservatively reads as
#: misalignment.
BREAK_REASON_CAUSE: dict[str, str] = {
    "taken_branch": "taken_branch_break",
    "alignment": "misalignment",
    "bank_conflict": "bank_conflict",
    "cache_miss": "icache_miss",
    "full": "misalignment",
    "": "misalignment",
}


class SlotAttribution:
    """Per-run slot ledger.  Charge exactly once per cycle."""

    __slots__ = ("issue_rate", "counts")

    def __init__(self, issue_rate: int) -> None:
        self.issue_rate = issue_rate
        self.counts: dict[str, int] = dict.fromkeys(CAUSES, 0)

    def charge(self, delivered: int, cause: str) -> None:
        """Charge one cycle: *delivered* slots did work, the remaining
        ``issue_rate - delivered`` slots are lost to *cause*."""
        counts = self.counts
        if delivered:
            counts["delivered"] += delivered
        shortfall = self.issue_rate - delivered
        if shortfall:
            counts[cause] += shortfall

    def snapshot(self) -> dict[str, int]:
        return dict(self.counts)

    def since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counts accumulated after *snapshot* (the measured region)."""
        return {
            cause: self.counts[cause] - snapshot.get(cause, 0)
            for cause in self.counts
        }


def shortfall_cause(break_reason: str, mispredict: bool) -> str:
    """Cause for the slots a short (but non-empty) delivery left empty.

    A mispredicted delivery truncated at the divergence, so the missing
    slots are part of the misprediction's bill regardless of how the
    plan itself ended.
    """
    if mispredict:
        return "mispredict_resolve"
    return BREAK_REASON_CAUSE.get(break_reason, "misalignment")


def queue_gate_cause(core, head_instruction) -> str:
    """Cause for a cycle whose fetch was gated by decoupling-queue
    capacity.

    Reads core state without recording statistics (``can_dispatch``
    would charge stall counters).  The queue drains every cycle until
    its head blocks, so a capacity-gated fetch almost always traces back
    to core backpressure (``window_full``); ``queue_full`` is kept for
    the residual case of a dispatchable head behind a still-full queue.
    """
    window = core.window
    rob = core.rob
    if window._occupied >= window.size or len(rob._entries) >= rob.capacity:
        return "window_full"
    if (
        head_instruction is not None
        and head_instruction.op is OpClass.BR_COND
        and core.unresolved_branches >= core.config.speculation_depth
    ):
        # Speculation depth is core-side backpressure too: the window
        # has room but refuses more unresolved branches.
        return "window_full"
    return "queue_full"


def check_conservation(
    attribution: dict[str, int], cycles: int, issue_rate: int
) -> None:
    """Raise ``AssertionError`` unless the ledger sums to
    ``cycles * issue_rate`` with no negative entries."""
    negative = {c: n for c, n in attribution.items() if n < 0}
    if negative:
        raise AssertionError(f"negative slot attribution: {negative}")
    total = sum(attribution.values())
    expected = cycles * issue_rate
    if total != expected:
        raise AssertionError(
            f"slot attribution sums to {total}, expected "
            f"{cycles} cycles x {issue_rate} slots = {expected}"
        )
