"""Stochastic branch behaviour model.

The paper drives its simulator with `spike` traces of real executions.  Our
substitute interprets the program's CFG with a seeded RNG: each conditional
branch has a fixed *logical* taken probability assigned at generation time.

The model is keyed by ``branch_key`` (a stable identity that survives code
reordering) and decides the branch's *logical* successor — the successor
that was the taken target in the original layout.  When trace layout flips
a branch (swapping taken/fall-through and inverting the condition), the
same logical decision maps to the opposite physical outcome, so original
and reordered programs execute identical logical paths from the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.program.basic_block import BasicBlock


@dataclass(slots=True)
class BranchBehavior:
    """Run-time behaviour of one static conditional branch.

    Real branches are locally *bursty*: the same outcome tends to repeat
    (loop back-edges run for whole trip counts, condition phases persist),
    which is exactly what 2-bit counters exploit.  Each branch is modelled
    as a two-state Markov chain whose stationary taken probability is
    ``probability`` and whose tendency to repeat the previous outcome is
    ``burstiness``:

    * ``P(taken | last taken)     = p + r * (1 - p)``
    * ``P(taken | last not-taken) = p * (1 - r)``

    With ``r = 0`` outcomes are i.i.d. Bernoulli(p); as ``r -> 1`` the
    branch becomes perfectly repetitive.  The outcome-change rate is
    ``2 p (1 - p) (1 - r)`` — the approximate 2-bit-counter mispredict
    rate.

    Attributes:
        probability: Stationary chance of going to the *original* taken
            target.
        burstiness: Repeat correlation ``r`` in [0, 1).
    """

    probability: float
    burstiness: float = 0.0
    _last: int = -1  #: -1 unset, else 0/1 last logical outcome

    def decide(self, rng: random.Random) -> bool:
        """Draw one execution: True = go to the original taken target."""
        p = self.probability
        if self._last < 0:
            outcome = rng.random() < p
        elif self._last:
            outcome = rng.random() < p + self.burstiness * (1.0 - p)
        else:
            outcome = rng.random() < p * (1.0 - self.burstiness)
        self._last = int(outcome)
        return outcome

    def reset(self) -> None:
        """Forget the Markov state (start of a fresh simulated input)."""
        self._last = -1


@dataclass(slots=True)
class BehaviorModel:
    """Maps branch keys to their run-time behaviour."""

    branches: dict[int, BranchBehavior] = field(default_factory=dict)

    @classmethod
    def from_probabilities(
        cls,
        probabilities: dict[int, float],
        burstiness: dict[int, float] | None = None,
    ) -> "BehaviorModel":
        """Build a model from ``branch_key -> taken probability`` (and an
        optional per-branch repeat-correlation map)."""
        burstiness = burstiness or {}
        return cls(
            branches={
                key: BranchBehavior(
                    probability=p, burstiness=burstiness.get(key, 0.0)
                )
                for key, p in probabilities.items()
            }
        )

    def reset(self) -> None:
        """Reset all per-branch Markov state (fresh simulated input)."""
        for behavior in self.branches.values():
            behavior.reset()

    def decide_successor(self, block: BasicBlock, rng: random.Random) -> int:
        """Execute *block*'s conditional branch once; return the next block id.

        Respects the block's flip state: the logical path is identical
        whether or not trace layout inverted the branch condition.
        """
        behavior = self.branches.get(block.branch_key)
        if behavior is None:
            raise KeyError(f"no behaviour for branch key {block.branch_key}")
        goes_to_original_taken = behavior.decide(rng)
        physically_taken = goes_to_original_taken != block.flipped
        return block.taken_id if physically_taken else block.fall_id

    def physical_taken_probability(self, block: BasicBlock) -> float:
        """Probability that *block*'s branch is physically taken."""
        behavior = self.branches[block.branch_key]
        return block.taken_probability(behavior.probability)
