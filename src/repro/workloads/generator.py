"""Structured synthetic program generator.

Generates a whole program (functions, loops, hammocks, diamonds, calls)
from a :class:`~repro.workloads.profiles.WorkloadProfile`.  The generator
is fully deterministic given the profile's seed.

Shape control:

* *if-then* constructs produce forward conditional branches that skip a
  straight *then* part — the taken-branch displacement equals the hammock
  size + 1, which is what the paper's Table 2 (intra-block branch ratio)
  is sensitive to.
* *loop* constructs produce backward taken branches whose displacement is
  the loop-body size.
* The call graph is a DAG (function *i* only calls *j > i*), so dynamic
  call depth is bounded and traces always make progress.
* Register dataflow uses a sliding *dependence window*: sources are drawn
  from recently written registers, so small windows create serial chains
  (integer-like ILP) and large windows expose parallelism (FP-like ILP).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, fp_reg, int_reg
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.behavior import BehaviorModel
from repro.workloads.profiles import WorkloadProfile

_CONSTRUCTS = ("straight", "if_then", "if_then_else", "loop", "call")


@dataclass(slots=True)
class Workload:
    """A generated benchmark: program + run-time branch behaviour."""

    name: str
    profile: WorkloadProfile
    program: Program
    behavior: BehaviorModel

    @property
    def workload_class(self) -> str:
        return self.profile.workload_class


@dataclass(slots=True)
class _RegState:
    """Sliding windows of recently written registers, per class."""

    window: int
    recent_int: deque = field(default_factory=deque)
    recent_fp: deque = field(default_factory=deque)

    def reset(self, rng: random.Random) -> None:
        self.recent_int = deque(
            (int_reg(rng.randrange(NUM_INT_REGS)) for _ in range(2)),
            maxlen=self.window,
        )
        self.recent_fp = deque(
            (fp_reg(rng.randrange(NUM_FP_REGS)) for _ in range(2)),
            maxlen=self.window,
        )

    def wrote_int(self, reg: int) -> None:
        self.recent_int.append(reg)

    def wrote_fp(self, reg: int) -> None:
        self.recent_fp.append(reg)

    def src_int(self, rng: random.Random) -> int:
        return rng.choice(tuple(self.recent_int))

    def src_fp(self, rng: random.Random) -> int:
        return rng.choice(tuple(self.recent_fp))


class WorkloadGenerator:
    """Generates one :class:`Workload` from a profile."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.builder = ProgramBuilder(name=profile.name)
        self.regs = _RegState(window=profile.dep_window)
        self._func_index = 0
        weights = (
            profile.w_straight,
            profile.w_if_then,
            profile.w_if_then_else,
            profile.w_loop,
            profile.w_call,
        )
        self._weights = weights

    # -- public -----------------------------------------------------------

    def generate(self) -> Workload:
        """Build the whole program and its behaviour model."""
        profile = self.profile
        per_func = max(8, profile.static_size // profile.num_functions)
        for index in range(profile.num_functions):
            budget = int(per_func * self.rng.uniform(0.5, 1.5))
            self._gen_function(index, budget)
        program = self.builder.finish()
        behavior = BehaviorModel.from_probabilities(
            self.builder.branch_probabilities,
            self.builder.branch_burstiness,
        )
        return Workload(
            name=profile.name,
            profile=profile,
            program=program,
            behavior=behavior,
        )

    # -- function generation ------------------------------------------------

    def _gen_function(self, index: int, budget: int) -> None:
        b = self.builder
        self._func_index = index
        self.regs.reset(self.rng)
        b.begin_function("main" if index == 0 else f"f{index}")
        # A short prologue guarantees the entry block is non-empty.
        self._straight(self.rng.randint(1, 3))
        self._fill_region(budget, loop_depth=0)
        b.ret()
        b.end_function()

    def _fill_region(self, budget: int, loop_depth: int) -> int:
        """Emit constructs until *budget* instructions are spent."""
        spent = 0
        while spent < budget:
            spent += self._emit_construct(loop_depth, budget - spent)
        return spent

    def _emit_construct(self, loop_depth: int, remaining: int) -> int:
        profile = self.profile
        rng = self.rng
        kind = rng.choices(_CONSTRUCTS, weights=self._weights)[0]
        if kind == "loop" and (
            loop_depth >= profile.max_loop_depth
            or remaining < profile.loop_body_budget[0] + 3
        ):
            kind = "straight"
        if kind == "call" and self._func_index >= profile.num_functions - 1:
            kind = "straight"
        if kind == "straight":
            return self._straight(rng.randint(*profile.straight_block_size))
        if kind == "if_then":
            return self._if_then()
        if kind == "if_then_else":
            return self._if_then_else()
        if kind == "loop":
            return self._loop(loop_depth, remaining)
        return self._call()

    # -- constructs ----------------------------------------------------------

    def _straight(self, count: int) -> int:
        for _ in range(max(1, count)):
            self._body_instr()
        return max(1, count)

    def _hammock_size(self) -> int:
        profile, rng = self.profile, self.rng
        if profile.hammock_choices is not None:
            sizes = [size for size, _ in profile.hammock_choices]
            weights = [weight for _, weight in profile.hammock_choices]
            return rng.choices(sizes, weights=weights)[0]
        return rng.randint(*profile.hammock_size)

    def _if_then(self) -> int:
        b, rng, profile = self.builder, self.rng, self.profile
        then_size = self._hammock_size()
        skip = b.new_label()
        cond = self._branch_source()
        prob, burst = self._cond_params(profile.hammock_taken_prob)
        b.branch_if(cond, skip, probability=prob, burstiness=burst)
        self._straight(then_size)
        b.bind(skip)
        self._body_instr()
        return then_size + 3

    def _if_then_else(self) -> int:
        b, rng, profile = self.builder, self.rng, self.profile
        then_size = self._hammock_size()
        else_size = rng.randint(*profile.else_size)
        else_label = b.new_label()
        end_label = b.new_label()
        cond = self._branch_source()
        prob, burst = self._cond_params(profile.if_else_taken_prob)
        b.branch_if(cond, else_label, probability=prob, burstiness=burst)
        self._straight(then_size)
        b.jump(end_label)
        b.bind(else_label)
        self._straight(else_size)
        b.bind(end_label)
        self._body_instr()
        return then_size + else_size + 4

    def _loop(self, loop_depth: int, remaining: int) -> int:
        b, rng, profile = self.builder, self.rng, self.profile
        if rng.random() < profile.inner_loop_fraction:
            # A run of sibling tiny inner loops: straight bodies with short
            # backward branches.  Emitting several siblings spreads the
            # dynamic heat over multiple branch alignments, stabilising the
            # displacement statistics the paper's Table 2 depends on.
            continue_prob = (
                profile.inner_loop_continue_prob or profile.loop_continue_prob
            )
            spent = 0
            for _ in range(rng.randint(*profile.inner_loop_siblings)):
                head = b.new_label()
                self._body_instr()  # loop counter init
                b.bind(head)
                spent += self._straight(rng.randint(*profile.inner_loop_body))
                b.branch_if(
                    self.regs.src_int(rng),
                    head,
                    probability=self._loop_prob(continue_prob),
                )
                spent += 2
            return spent
        head = b.new_label()
        self._body_instr()  # loop counter init
        b.bind(head)
        lo, hi = profile.loop_body_budget
        body_budget = rng.randint(lo, min(hi, max(lo, remaining - 3)))
        spent = self._fill_region(body_budget, loop_depth + 1)
        b.branch_if(
            self.regs.src_int(rng),
            head,
            probability=self._loop_prob(profile.loop_continue_prob),
        )
        return spent + 2

    def _call(self) -> int:
        b, rng = self.builder, self.rng
        callee = rng.randint(self._func_index + 1, self.profile.num_functions - 1)
        self._body_instr()  # argument setup
        b.call("main" if callee == 0 else f"f{callee}")
        self._body_instr()  # consume the result
        return 4

    # -- instruction-level helpers ----------------------------------------------

    def _branch_source(self) -> int:
        """Emit the computation a branch condition depends on.

        Real conditions frequently hang off memory (pointer chasing, table
        lookups), so half the time the condition register is produced by a
        load — lengthening branch resolution the way real code does.
        """
        b, rng = self.builder, self.rng
        dest = int_reg(rng.randrange(NUM_INT_REGS))
        if rng.random() < 0.5:
            b.load(dest, self.regs.src_int(rng))
        else:
            b.ialu(dest, self.regs.src_int(rng), self.regs.src_int(rng))
        self.regs.wrote_int(dest)
        return dest

    def _cond_params(
        self, prob_range: tuple[float, float]
    ) -> tuple[float, float]:
        """Draw (taken probability, burstiness) for a non-loop conditional.

        Most branches are phase-correlated (profile burstiness); the
        weakly-biased fraction is both near 50/50 and less repetitive,
        bounding achievable 2-bit-counter accuracy.
        """
        rng = self.rng
        if rng.random() < self.profile.weakly_biased_fraction:
            return rng.uniform(0.35, 0.65), 0.5
        return rng.uniform(*prob_range), self.profile.burstiness

    def _loop_prob(self, prob_range: tuple[float, float]) -> float:
        """Draw a loop back-edge continue probability (no burstiness:
        i.i.d. draws already yield geometric trip counts)."""
        return self.rng.uniform(*prob_range)

    def _body_instr(self) -> None:
        """Emit one non-control instruction drawn from the profile mix."""
        b, rng, profile, regs = self.builder, self.rng, self.profile, self.regs
        roll = rng.random()
        if roll < profile.fp_fraction:
            dest = fp_reg(rng.randrange(NUM_FP_REGS))
            b.falu(dest, regs.src_fp(rng), regs.src_fp(rng))
            regs.wrote_fp(dest)
            return
        roll -= profile.fp_fraction
        if roll < profile.load_fraction:
            if profile.fp_fraction > 0 and rng.random() < profile.fp_fraction:
                dest = fp_reg(rng.randrange(NUM_FP_REGS))
                b.load(dest, regs.src_int(rng))
                regs.wrote_fp(dest)
            else:
                dest = int_reg(rng.randrange(NUM_INT_REGS))
                b.load(dest, regs.src_int(rng))
                regs.wrote_int(dest)
            return
        roll -= profile.load_fraction
        if roll < profile.store_fraction:
            b.store(regs.src_int(rng), regs.src_int(rng))
            return
        dest = int_reg(rng.randrange(NUM_INT_REGS))
        b.ialu(dest, regs.src_int(rng), regs.src_int(rng))
        regs.wrote_int(dest)


def generate_workload(profile: WorkloadProfile) -> Workload:
    """Generate the benchmark described by *profile*."""
    return WorkloadGenerator(profile).generate()
