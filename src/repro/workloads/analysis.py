"""Workload characterisation.

Quantifies the properties the paper's discussion leans on — dynamic
branch frequency, taken ratio, run length between taken branches,
instruction mix, and intra-block branch ratios — for any workload.  Used
by the CLI (``python -m repro characterize``) and the workload example,
and handy when writing new profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.metrics.branches import taken_branch_stats
from repro.workloads.generator import Workload
from repro.workloads.trace import TEST_INPUT_SEED, generate_trace


@dataclass(slots=True)
class WorkloadCharacter:
    """Static and dynamic character of one workload.

    Attributes:
        name / workload_class: Identity.
        static_instructions: Program size in instructions.
        static_branch_sites: Static control-transfer instructions.
        control_fraction: Dynamic fraction of control instructions.
        taken_fraction: Taken transfers per control instruction.
        run_length: Mean instructions between taken transfers.
        mix: Dynamic fraction per operation class.
        intra_block: Block-words -> fraction of taken branches with
            intra-block targets (paper Table 2's metric).
    """

    name: str
    workload_class: str
    static_instructions: int
    static_branch_sites: int
    control_fraction: float
    taken_fraction: float
    run_length: float
    mix: dict[str, float] = field(default_factory=dict)
    intra_block: dict[int, float] = field(default_factory=dict)

    def summary_row(self) -> list:
        """Row for the characterisation table."""
        return [
            self.name,
            self.workload_class,
            self.static_instructions,
            100.0 * self.control_fraction,
            100.0 * self.taken_fraction,
            self.run_length,
            100.0 * self.mix.get("LOAD", 0.0),
            100.0 * self.mix.get("FALU", 0.0),
            100.0 * self.intra_block.get(4, 0.0),
            100.0 * self.intra_block.get(16, 0.0),
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "benchmark",
            "class",
            "static",
            "ctrl %",
            "taken %",
            "run len",
            "load %",
            "fp %",
            "intra 16B %",
            "intra 64B %",
        ]


def characterize(
    workload: Workload,
    trace_length: int = 40_000,
    seed: int = TEST_INPUT_SEED,
    block_sizes: tuple[int, ...] = (4, 8, 16),
) -> WorkloadCharacter:
    """Measure *workload*'s character over one dynamic trace."""
    trace = generate_trace(
        workload.program, workload.behavior, trace_length, seed=seed
    )
    total = len(trace.instructions)
    ops = Counter(instr.op for instr in trace.instructions)
    control = sum(
        count for op, count in ops.items() if op.name in
        ("BR_COND", "JUMP", "CALL", "RET")
    )
    taken = trace.taken_branch_count()
    intra = {
        words: taken_branch_stats(trace, words).intra_block_fraction
        for words in block_sizes
    }
    return WorkloadCharacter(
        name=workload.name,
        workload_class=workload.workload_class,
        static_instructions=workload.program.num_instructions,
        static_branch_sites=sum(
            1 for instr in workload.program.instructions if instr.is_control
        ),
        control_fraction=control / total,
        taken_fraction=taken / control if control else 0.0,
        run_length=total / taken if taken else float("inf"),
        mix={op.name: count / total for op, count in ops.items()},
        intra_block=intra,
    )


def characterization_table(workloads: list[Workload], **kwargs) -> str:
    """Plain-text characterisation table for *workloads*."""
    from repro.metrics.summary import format_table

    rows = [characterize(w, **kwargs).summary_row() for w in workloads]
    return format_table(
        WorkloadCharacter.headers(),
        rows,
        title="Workload characterisation",
    )
