"""Synthetic benchmark suite standing in for SPEC92 (see DESIGN.md)."""

from repro.workloads.behavior import BehaviorModel, BranchBehavior
from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workloads.calibration import (
    CalibrationScore,
    score_profile,
    sweep_seeds,
)
from repro.workloads.micro import MICRO_WORKLOADS
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    ALL_PROFILES,
    FP_BENCHMARKS,
    FP_CLASS,
    FP_PROFILES,
    INT_CLASS,
    INTEGER_BENCHMARKS,
    INTEGER_PROFILES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.suite import (
    fp_suite,
    full_suite,
    integer_suite,
    load_workload,
)
from repro.workloads.trace import (
    PROFILING_SEEDS,
    TEST_INPUT_SEED,
    DynamicTrace,
    TraceGenerationError,
    generate_trace,
)

__all__ = [
    "ALL_BENCHMARKS",
    "ALL_PROFILES",
    "BehaviorModel",
    "BranchBehavior",
    "CalibrationScore",
    "DynamicTrace",
    "FP_BENCHMARKS",
    "FP_CLASS",
    "FP_PROFILES",
    "INTEGER_BENCHMARKS",
    "INTEGER_PROFILES",
    "INT_CLASS",
    "MICRO_WORKLOADS",
    "PROFILING_SEEDS",
    "TEST_INPUT_SEED",
    "TraceGenerationError",
    "Workload",
    "WorkloadGenerator",
    "WorkloadProfile",
    "fp_suite",
    "full_suite",
    "generate_trace",
    "generate_workload",
    "get_profile",
    "integer_suite",
    "load_workload",
    "score_profile",
    "sweep_seeds",
]
