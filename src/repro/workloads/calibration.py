"""Calibration utilities for workload profiles.

The benchmark profiles in :mod:`repro.workloads.profiles` carry baked-in
generation seeds chosen by the sweep implemented here: candidate seeds
are scored against the paper's published per-benchmark statistics —
Table 2 (intra-block taken-branch ratios at 16/32/64-byte blocks) and,
for integer benchmarks, Table 3 (taken-branch reduction under code
reordering) — and the best seed wins.  Re-run this when changing a
profile's structural parameters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.metrics.branches import taken_branch_reduction, taken_branch_stats
from repro.workloads.generator import Workload, generate_workload
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import generate_trace

#: Paper Table 2 targets (percent at 16B/32B/64B blocks); bison and doduc
#: are illegible in the source scan and carry plausible stand-ins.
TABLE2_TARGETS: dict[str, tuple[float, float, float]] = {
    "bison": (8.0, 21.0, 35.0),
    "compress": (14.58, 14.59, 34.63),
    "eqntott": (6.13, 29.26, 41.40),
    "espresso": (1.40, 14.86, 45.68),
    "flex": (1.29, 3.88, 24.79),
    "gcc": (4.98, 14.08, 24.73),
    "li": (0.00, 5.74, 19.07),
    "mpeg_play": (0.70, 7.66, 11.96),
    "sc": (0.17, 11.02, 21.59),
    "doduc": (3.0, 18.0, 30.0),
    "mdljdp2": (0.26, 24.37, 66.10),
    "nasa7": (0.03, 0.06, 0.08),
    "ora": (0.01, 19.01, 23.16),
    "tomcatv": (0.08, 0.17, 13.97),
    "wave5": (2.71, 35.21, 41.73),
}

#: Paper Table 3 targets (percent reduction; integer benchmarks only).
TABLE3_TARGETS: dict[str, float] = {
    "bison": 25.26,
    "compress": 44.20,
    "eqntott": 24.52,
    "espresso": 22.42,
    "flex": 25.17,
    "gcc": 37.20,
    "li": 15.72,
    "mpeg_play": 25.26,
    "sc": 28.84,
}


@dataclass(slots=True)
class CalibrationScore:
    """How one candidate seed scored."""

    seed: int
    intra_block: tuple[float, float, float]
    taken_reduction: float | None
    error: float


def measure_intra_block(
    workload: Workload,
    trace_length: int = 60_000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """The benchmark's Table 2 row (percent at 4/8/16-word blocks)."""
    trace = generate_trace(
        workload.program, workload.behavior, trace_length, seed=seed
    )
    return tuple(
        100.0 * taken_branch_stats(trace, words).intra_block_fraction
        for words in (4, 8, 16)
    )


def score_profile(
    profile: WorkloadProfile,
    trace_length: int = 60_000,
    reduction_weight: float = 0.8,
) -> CalibrationScore:
    """Score *profile* against its paper targets."""
    workload = generate_workload(profile)
    intra = measure_intra_block(workload, trace_length)
    targets = TABLE2_TARGETS.get(profile.name)
    error = 0.0
    if targets is not None:
        error += sum(abs(m - t) for m, t in zip(intra, targets))

    reduction = None
    target_reduction = TABLE3_TARGETS.get(profile.name)
    if target_reduction is not None:
        # Imported lazily: the compiler package itself imports workload
        # modules, and calibration is re-exported from the package root.
        from repro.compiler.layout_opt import reorder_program

        reordered = reorder_program(workload.program, workload.behavior)
        original = generate_trace(
            workload.program, workload.behavior, trace_length
        )
        after = generate_trace(
            reordered.program, workload.behavior, trace_length
        )
        reduction = 100.0 * taken_branch_reduction(original, after)
        error += reduction_weight * abs(reduction - target_reduction)

    return CalibrationScore(
        seed=profile.seed,
        intra_block=intra,
        taken_reduction=reduction,
        error=error,
    )


def sweep_seeds(
    profile: WorkloadProfile,
    candidates: int = 24,
    stride: int = 1000,
    trace_length: int = 60_000,
) -> list[CalibrationScore]:
    """Score *candidates* seeds (best first).

    Candidate seeds are ``(profile.seed % stride) + stride * i`` — the
    scheme the shipped profiles were calibrated with.
    """
    base = profile.seed % stride
    scores = [
        score_profile(
            dataclasses.replace(profile, seed=base + stride * index),
            trace_length=trace_length,
        )
        for index in range(candidates)
    ]
    scores.sort(key=lambda score: score.error)
    return scores
