"""Dynamic instruction traces.

Replaces the paper's `spike` tracing step: the interpreter walks the
program's CFG, resolving conditional branches through the behaviour model
with a seeded RNG, and emits the dynamic instruction stream the processor
simulator consumes.  Different seeds play the role of different program
inputs (the paper uses five profiling inputs plus one test input).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, is_control
from repro.program.basic_block import TermKind
from repro.program.program import Program
from repro.workloads.behavior import BehaviorModel

#: Seed playing the role of the paper's held-out *test* input.
TEST_INPUT_SEED = 0
#: Seeds playing the role of the paper's five profiling inputs.
PROFILING_SEEDS: tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass(slots=True)
class DynamicTrace:
    """A dynamic instruction stream plus light bookkeeping.

    ``instructions[i]`` executed at dynamic position *i*; its successor's
    address is ``instructions[i + 1].address``.  A control transfer is
    *taken* when the successor is not the next sequential word.
    """

    name: str
    seed: int
    instructions: list[Instruction] = field(default_factory=list)
    # Precomputed per-trace arrays (built lazily, invalidated by length
    # change) so hot loops index plain lists instead of calling methods
    # or chasing ``Instruction`` attributes per dynamic instruction.
    _addresses: list[int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _next_addresses: list[int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _taken: list[bool] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _control: list[bool] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _nop: list[bool] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # Compiled-kernel tables (repro.sim.kernel) cached per trace, keyed
    # by (memory-ordering mode, length); the length in the key doubles
    # as the staleness check, mirroring ``_arrays_stale``.
    _kernel_tables: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # Branch/taken/nop counts over [start, length) regions, cached for
    # Simulator._collect_stats (the same warmup start recurs run after
    # run).  See region_mix().
    _region_mix: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.instructions)

    # -- precomputed arrays ----------------------------------------------------

    def _build_arrays(self) -> None:
        instrs = self.instructions
        addresses = [i.address for i in instrs]
        nxt = addresses[1:]
        nxt.append(-1)
        self._addresses = addresses
        self._next_addresses = nxt
        self._taken = [
            n >= 0 and n != a + 1 for a, n in zip(addresses, nxt)
        ]
        self._control = [is_control(i.op) for i in instrs]
        self._nop = [i.op is OpClass.NOP for i in instrs]

    def _arrays_stale(self) -> bool:
        return self._addresses is None or len(self._addresses) != len(
            self.instructions
        )

    def address_array(self) -> list[int]:
        """``address`` of every dynamic instruction, as a plain list."""
        if self._arrays_stale():
            self._build_arrays()
        return self._addresses

    def next_address_array(self) -> list[int]:
        """Successor address at each position (-1 at the trace end)."""
        if self._arrays_stale():
            self._build_arrays()
        return self._next_addresses

    def taken_array(self) -> list[bool]:
        """Taken flag of the control transfer at each position."""
        if self._arrays_stale():
            self._build_arrays()
        return self._taken

    def control_array(self) -> list[bool]:
        """``is_control`` flag at each position."""
        if self._arrays_stale():
            self._build_arrays()
        return self._control

    def nop_array(self) -> list[bool]:
        """``is_nop`` flag at each position."""
        if self._arrays_stale():
            self._build_arrays()
        return self._nop

    def region_mix(self, start: int) -> tuple[int, int, int]:
        """(branches, taken branches, nops) over ``[start, len)``, cached.

        A pure function of the trace, so the result is memoized per start
        index (keyed with the length as the staleness check, like the
        lazy arrays).
        """
        n = len(self.instructions)
        cache = self._region_mix
        if cache is None:
            cache = {}
            self._region_mix = cache
        key = (start, n)
        mix = cache.get(key)
        if mix is None:
            if len(cache) > 64 or any(k[1] != n for k in cache):
                cache.clear()
            is_control = self.control_array()
            is_taken = self.taken_array()
            is_nop = self.nop_array()
            branches = taken = nops = 0
            for index in range(start, n):
                if is_control[index]:
                    branches += 1
                    if is_taken[index]:
                        taken += 1
                elif is_nop[index]:
                    nops += 1
            mix = (branches, taken, nops)
            cache[key] = mix
        return mix

    def next_address(self, index: int) -> int:
        """Address executed after dynamic position *index* (-1 at the end)."""
        if index + 1 >= len(self.instructions):
            return -1
        return self.instructions[index + 1].address

    def is_taken(self, index: int) -> bool:
        """True if the control transfer at *index* was taken."""
        nxt = self.next_address(index)
        return nxt >= 0 and nxt != self.instructions[index].address + 1

    def taken_branch_count(self) -> int:
        """Number of dynamic taken control transfers."""
        count = 0
        for i, instr in enumerate(self.instructions):
            if instr.is_control and self.is_taken(i):
                count += 1
        return count

    def control_count(self) -> int:
        """Number of dynamic control instructions."""
        return sum(1 for instr in self.instructions if instr.is_control)

    def non_nop_count(self) -> int:
        """Number of dynamic instructions excluding nops."""
        return sum(1 for instr in self.instructions if not instr.is_nop)

    def block_sequence(self) -> list[int]:
        """Dynamic sequence of branch keys of executed basic blocks."""
        keys = []
        last_block = None
        for instr in self.instructions:
            if instr.block_id != last_block:
                keys.append(instr.block_id)
                last_block = instr.block_id
        return keys


class TraceGenerationError(RuntimeError):
    """Raised when a trace cannot be generated (e.g. missing behaviour)."""


def generate_trace(
    program: Program,
    behavior: BehaviorModel,
    max_instructions: int,
    seed: int = TEST_INPUT_SEED,
    restart_on_halt: bool = True,
) -> DynamicTrace:
    """Interpret *program* and emit up to *max_instructions* instructions.

    Execution starts at the entry function.  A ``RET`` with an empty call
    stack halts the program; with *restart_on_halt* the program is
    re-entered (modelling repeated invocations) until the budget is
    reached, otherwise the trace ends there.
    """
    if max_instructions <= 0:
        raise ValueError("max_instructions must be positive")
    rng = random.Random(seed)
    behavior.reset()  # deterministic traces; variants stay RNG-aligned
    cfg = program.cfg
    trace = DynamicTrace(name=program.name, seed=seed)
    out = trace.instructions
    call_stack: list[int] = []
    current = cfg.entry_block_id

    while len(out) < max_instructions:
        block = cfg.block(current)
        out.extend(block.body)
        if block.terminator is not None:
            out.append(block.terminator)
        kind = block.term_kind
        if kind is TermKind.FALLTHROUGH:
            current = block.fall_id
        elif kind is TermKind.COND:
            current = behavior.decide_successor(block, rng)
        elif kind is TermKind.JUMP:
            current = block.taken_id
        elif kind is TermKind.CALL:
            call_stack.append(block.fall_id)
            current = block.taken_id
        else:  # RET
            if call_stack:
                current = call_stack.pop()
            elif restart_on_halt:
                current = cfg.entry_block_id
            else:
                break

    del out[max_instructions:]
    return trace
