"""Workload profiles: generator parameters for each paper benchmark.

The paper evaluates six SPECint92 benchmarks, three additional integer
programs (bison, flex, mpeg_play) and six SPECfp92 benchmarks.  SPEC92
binaries and their PA-RISC traces are unavailable, so each benchmark is
replaced by a *profile*: a parameter set for the structured program
generator plus a branch-behaviour specification.  Profiles are calibrated
against the paper's published per-benchmark statistics — most importantly
Table 2 (fraction of taken branches whose target lies in the same cache
block, at 16/32/64-byte blocks), which is governed by the displacement
distribution of taken branches: hammock (short forward) sizes and inner
loop-body sizes.

Integer profiles have short basic blocks, frequent short forward branches,
moderate loop trip counts, and tight dependence chains; floating-point
profiles have long straight-line bodies, deep trip counts, few conditionals
and wide dependence windows — matching the paper's characterisation of the
two classes.
"""

from __future__ import annotations

from dataclasses import dataclass

INT_CLASS = "int"
FP_CLASS = "fp"


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Parameters steering the synthetic program generator.

    Size ranges are inclusive ``(lo, hi)`` uniform ranges; probability
    ranges are uniform ranges a per-branch probability is drawn from.

    Attributes:
        name: Benchmark name (paper's spelling).
        workload_class: ``"int"`` or ``"fp"``.
        seed: Base RNG seed for program generation.
        static_size: Approximate static instruction count to generate.
        num_functions: Number of functions (function 0 is ``main``).
        w_straight / w_if_then / w_if_then_else / w_loop / w_call:
            Construct-mix weights used when filling code regions.
        straight_block_size: Instructions per straight-line block.
        hammock_size: Size of an if-then's *then* part (the gap skipped by
            a taken forward branch — the key Table 2 parameter).
        else_size: Size of an if-then-else's *else* part.
        loop_body_budget: Instruction budget for one loop body.
        max_loop_depth: Maximum loop nesting depth.
        loop_continue_prob: Back-edge taken probability range (mean trip
            count is ``1 / (1 - p)``).
        hammock_taken_prob: Taken probability of if-then forward branches.
            High values = badly laid-out code that reordering can fix.
        if_else_taken_prob: Taken (= else-path) probability of diamonds.
        weakly_biased_fraction: Fraction of conditional branches that are
            re-drawn near 0.5, limiting 2-bit-counter accuracy.
        fp_fraction: Fraction of body instructions that are FP operations.
        load_fraction / store_fraction: Memory-operation mix.
        dep_window: How far back source registers are drawn from; small
            values create serial chains, large values expose parallelism.
    """

    name: str
    workload_class: str
    seed: int
    static_size: int
    num_functions: int
    w_straight: float
    w_if_then: float
    w_if_then_else: float
    w_loop: float
    w_call: float
    straight_block_size: tuple[int, int]
    hammock_size: tuple[int, int]
    else_size: tuple[int, int]
    loop_body_budget: tuple[int, int]
    max_loop_depth: int
    loop_continue_prob: tuple[float, float]
    hammock_taken_prob: tuple[float, float]
    if_else_taken_prob: tuple[float, float]
    weakly_biased_fraction: float
    fp_fraction: float
    load_fraction: float
    store_fraction: float
    dep_window: int
    #: Optional discrete distribution of hammock sizes ``((size, weight), …)``
    #: overriding ``hammock_size`` — used to shape the taken-branch
    #: displacement histogram precisely (paper Table 2 calibration).
    hammock_choices: tuple[tuple[int, float], ...] | None = None
    #: Fraction of loop constructs that are *tiny inner loops* — straight
    #: bodies drawn from ``inner_loop_body``, dominating dynamic taken
    #: branches with short backward displacements.
    inner_loop_fraction: float = 0.0
    inner_loop_body: tuple[int, int] = (4, 8)
    inner_loop_continue_prob: tuple[float, float] | None = None
    #: How many sibling tiny loops one inner-loop construct emits; more
    #: siblings average the hot branches over more block alignments.
    inner_loop_siblings: tuple[int, int] = (2, 4)
    #: Repeat correlation of non-loop conditional outcomes (hammocks and
    #: diamonds): real branches are phase-correlated, which is what 2-bit
    #: counters exploit.  Loop back-edges use 0 (geometric trip counts).
    burstiness: float = 0.93

    def __post_init__(self) -> None:
        if self.workload_class not in (INT_CLASS, FP_CLASS):
            raise ValueError(f"bad workload class: {self.workload_class}")
        weights = (
            self.w_straight,
            self.w_if_then,
            self.w_if_then_else,
            self.w_loop,
            self.w_call,
        )
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError("construct weights must be non-negative, not all 0")


def _int_profile(name: str, seed: int, **overrides) -> WorkloadProfile:
    """Integer-benchmark template: branchy, short blocks, tight chains."""
    params = dict(
        name=name,
        workload_class=INT_CLASS,
        seed=seed,
        static_size=6000,
        num_functions=24,
        w_straight=0.12,
        w_if_then=0.40,
        w_if_then_else=0.18,
        w_loop=0.16,
        w_call=0.14,
        straight_block_size=(1, 3),
        hammock_size=(1, 5),
        else_size=(2, 6),
        loop_body_budget=(10, 30),
        max_loop_depth=2,
        loop_continue_prob=(0.72, 0.84),
        hammock_taken_prob=(0.62, 0.95),
        if_else_taken_prob=(0.50, 0.88),
        weakly_biased_fraction=0.10,
        fp_fraction=0.02,
        load_fraction=0.22,
        store_fraction=0.10,
        dep_window=10,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def _fp_profile(name: str, seed: int, **overrides) -> WorkloadProfile:
    """FP-benchmark template: loop-dominated, long blocks, wide windows."""
    params = dict(
        name=name,
        workload_class=FP_CLASS,
        seed=seed,
        static_size=7000,
        num_functions=12,
        w_straight=0.42,
        w_if_then=0.06,
        w_if_then_else=0.04,
        w_loop=0.40,
        w_call=0.08,
        straight_block_size=(8, 24),
        hammock_size=(2, 6),
        else_size=(4, 10),
        loop_body_budget=(30, 90),
        max_loop_depth=2,
        loop_continue_prob=(0.91, 0.95),
        hammock_taken_prob=(0.30, 0.70),
        if_else_taken_prob=(0.30, 0.70),
        weakly_biased_fraction=0.03,
        fp_fraction=0.45,
        load_fraction=0.25,
        store_fraction=0.12,
        dep_window=16,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


#: The nine integer benchmarks of the paper (six SPECint92 + bison, flex,
#: mpeg_play).  Per-benchmark overrides push each towards its published
#: Table 2 / Table 3 signature.
INTEGER_PROFILES: tuple[WorkloadProfile, ...] = (
    _int_profile(
        "bison", seed=101,
        hammock_choices=((1, 0.35), (4, 0.30), (7, 0.15), (12, 0.20)),
        hammock_taken_prob=(0.40, 0.80),
    ),
    _int_profile(
        "compress", seed=8102, static_size=2500, num_functions=10,
        # Table 2: 14.6% intra-block even at 16B blocks -> some 1-2 inst
        # hammocks plus a band around 10-14 that only fits 64B blocks.
        hammock_choices=((1, 0.38), (14, 0.30), (18, 0.32)),
        w_if_then=0.36, w_if_then_else=0.12, else_size=(10, 16),
        hammock_taken_prob=(0.55, 0.90),
    ),
    _int_profile(
        "eqntott", seed=6103, static_size=2200, num_functions=8,
        # 6% -> 29% -> 41%: hammocks of 2-6 instructions dominate.
        hammock_choices=((1, 0.08), (2, 0.15), (3, 0.35), (4, 0.32), (14, 0.10)),
        w_if_then=0.42, w_if_then_else=0.08, else_size=(8, 14),
        inner_loop_fraction=0.45, inner_loop_body=(4, 7),
        straight_block_size=(2, 5), loop_continue_prob=(0.78, 0.88),
    ),
    _int_profile(
        "espresso", seed=4104, static_size=5000,
        # 1.4% -> 14.9% -> 45.7%: mid-length hammocks.
        hammock_choices=((3, 0.20), (5, 0.45), (9, 0.25), (14, 0.10)),
        w_if_then=0.40, inner_loop_fraction=0.35, inner_loop_body=(5, 8), loop_continue_prob=(0.74, 0.86),
    ),
    _int_profile(
        "flex", seed=17105,
        # Low intra-block ratios: longer skip distances.
        hammock_choices=((2, 0.06), (6, 0.12), (10, 0.45), (14, 0.17), (24, 0.20)),
        else_size=(4, 10),
    ),
    _int_profile(
        "gcc", seed=3106, static_size=26000, num_functions=80,
        # Large static footprint -> I-cache misses on PI4's 32KB cache.
        hammock_choices=((1, 0.30), (5, 0.25), (9, 0.15), (14, 0.10), (26, 0.20)),
        weakly_biased_fraction=0.16,
        loop_continue_prob=(0.68, 0.82), w_call=0.14,
    ),
    _int_profile(
        "li", seed=20107, static_size=4500, num_functions=40,
        # Call-dominated interpreter; few short hammocks.
        w_call=0.20, w_if_then=0.24,
        hammock_choices=((4, 0.10), (6, 0.20), (10, 0.25), (20, 0.45)),
        straight_block_size=(2, 5),
    ),
    _int_profile(
        "mpeg_play", seed=16108, static_size=9000,
        # Media kernel: larger blocks, fewer short branches.
        straight_block_size=(3, 9),
        hammock_choices=((2, 0.04), (5, 0.12), (12, 0.14), (20, 0.70)),
        w_straight=0.34, w_if_then=0.22, loop_continue_prob=(0.76, 0.88),
        fp_fraction=0.08,
    ),
    _int_profile(
        "sc", seed=17109, static_size=6500,
        hammock_choices=((3, 0.12), (6, 0.14), (14, 0.24), (20, 0.50)),
        w_if_then=0.28,
    ),
)

#: The six SPECfp92 benchmarks of the paper.
FP_PROFILES: tuple[WorkloadProfile, ...] = (
    _fp_profile(
        "doduc", seed=6201, static_size=9000,
        # Mixed control: some short hammocks and small inner loops.
        w_if_then=0.14, hammock_choices=((3, 0.5), (7, 0.5)),
        loop_body_budget=(24, 70),
        inner_loop_fraction=0.50, inner_loop_body=(4, 8),
    ),
    _fp_profile(
        "mdljdp2", seed=13202,
        # Table 2: 0.3% -> 24% -> 66%: tiny inner loops of ~4-9 instrs
        # dominate the dynamic taken-branch stream.
        inner_loop_fraction=0.80, inner_loop_body=(4, 9),
        inner_loop_continue_prob=(0.91, 0.95),
        loop_body_budget=(30, 60), straight_block_size=(5, 10),
        w_loop=0.50, w_straight=0.36, loop_continue_prob=(0.90, 0.94),
    ),
    _fp_profile(
        "nasa7", seed=18203,
        # ~0% intra-block everywhere: very long loop bodies.
        loop_body_budget=(70, 160), straight_block_size=(16, 40),
        w_if_then_else=0.02, else_size=(12, 18),
    ),
    _fp_profile(
        "ora", seed=5204, static_size=3000, num_functions=6,
        # 0% -> 19% -> 23%: inner loop bodies straddling ~8 instructions.
        inner_loop_fraction=0.25, inner_loop_body=(6, 8),
        inner_loop_siblings=(4, 8), loop_body_budget=(25, 60), straight_block_size=(6, 12),
        w_loop=0.45,
    ),
    _fp_profile(
        "tomcatv", seed=4205, static_size=4000, num_functions=6,
        # Jump at 64B only: inner bodies of ~12-14 instructions.
        inner_loop_fraction=0.80, inner_loop_body=(12, 14),
        inner_loop_siblings=(5, 9), loop_body_budget=(20, 40), straight_block_size=(10, 16),
        w_loop=0.46, w_straight=0.40, w_if_then=0.02, w_if_then_else=0.02,
        loop_continue_prob=(0.91, 0.95),
    ),
    _fp_profile(
        "wave5", seed=16206,
        # 2.7% -> 35% -> 42%: short hammocks and mid-size inner loops.
        w_if_then=0.20, hammock_choices=((2, 0.40), (4, 0.35), (8, 0.25)),
        inner_loop_fraction=0.45, inner_loop_body=(4, 7),
        loop_body_budget=(15, 40), loop_continue_prob=(0.90, 0.94),
    ),
)

ALL_PROFILES: tuple[WorkloadProfile, ...] = INTEGER_PROFILES + FP_PROFILES

PROFILES_BY_NAME: dict[str, WorkloadProfile] = {p.name: p for p in ALL_PROFILES}

INTEGER_BENCHMARKS: tuple[str, ...] = tuple(p.name for p in INTEGER_PROFILES)
FP_BENCHMARKS: tuple[str, ...] = tuple(p.name for p in FP_PROFILES)
ALL_BENCHMARKS: tuple[str, ...] = INTEGER_BENCHMARKS + FP_BENCHMARKS


def get_profile(name: str) -> WorkloadProfile:
    """Return the profile for benchmark *name* (KeyError if unknown)."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
