"""Micro-workloads: tiny hand-built programs with known properties.

These complement the SPEC92-style suite for testing, debugging and
teaching: each isolates a single fetch behaviour (pure straight-line
code, a hammock farm, a tiny loop, deep call chains, a branch storm).
They are exact — no generation randomness — so tests can assert precise
expectations against them.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.isa.registers import int_reg
from repro.program.builder import ProgramBuilder
from repro.workloads.behavior import BehaviorModel
from repro.workloads.generator import Workload
from repro.workloads.profiles import WorkloadProfile


def _micro_profile(name: str) -> WorkloadProfile:
    """Placeholder profile carried by micro-workloads (class "int")."""
    return WorkloadProfile(
        name=name, workload_class="int", seed=0, static_size=0,
        num_functions=1, w_straight=1, w_if_then=0, w_if_then_else=0,
        w_loop=0, w_call=0, straight_block_size=(1, 1), hammock_size=(1, 1),
        else_size=(1, 1), loop_body_budget=(4, 4), max_loop_depth=1,
        loop_continue_prob=(0.5, 0.5), hammock_taken_prob=(0.5, 0.5),
        if_else_taken_prob=(0.5, 0.5), weakly_biased_fraction=0.0,
        fp_fraction=0.0, load_fraction=0.0, store_fraction=0.0,
        dep_window=4,
    )


def _finish(builder: ProgramBuilder, name: str) -> Workload:
    program = builder.finish()
    behavior = BehaviorModel.from_probabilities(
        builder.branch_probabilities, builder.branch_burstiness
    )
    return Workload(
        name=name, profile=_micro_profile(name), program=program,
        behavior=behavior,
    )


def straightline(length: int = 64) -> Workload:
    """A single long run of independent ALU work: every scheme should
    deliver full issue groups (modulo block boundaries)."""
    b = ProgramBuilder("straightline")
    b.begin_function("main")
    loop = b.new_label()
    b.bind(loop)
    for i in range(length):
        b.ialu(int_reg(1 + i % 20))
    b.branch_if(int_reg(1), loop, probability=0.99)
    b.ret()
    b.end_function()
    return _finish(b, "straightline")


def tiny_loop(body: int = 3, continue_prob: float = 0.95) -> Workload:
    """A loop smaller than one cache block: its back edge is the
    backward intra-block branch no scheme (not even the collapsing
    buffer's controller) realigns."""
    b = ProgramBuilder("tiny_loop")
    b.begin_function("main")
    loop = b.new_label()
    b.ialu(int_reg(1))
    b.bind(loop)
    for i in range(body):
        b.ialu(int_reg(2 + i), int_reg(1))
    b.branch_if(int_reg(2), loop, probability=continue_prob)
    b.ret()
    b.end_function()
    return _finish(b, "tiny_loop")


def hammock_farm(
    count: int = 8,
    gap: int = 2,
    taken_prob: float = 0.9,
) -> Workload:
    """A run of likely-taken short forward branches — the collapsing
    buffer's home turf (each skip is an intra-block forward branch)."""
    b = ProgramBuilder("hammock_farm")
    b.begin_function("main")
    loop = b.new_label()
    b.ialu(int_reg(1))
    b.bind(loop)
    for index in range(count):
        skip = b.new_label()
        b.ialu(int_reg(2 + index % 16), int_reg(1))
        b.branch_if(
            int_reg(2 + index % 16), skip,
            probability=taken_prob, burstiness=0.9,
        )
        for _ in range(gap):
            b.ialu(int_reg(20))
        b.bind(skip)
        b.ialu(int_reg(3 + index % 16))
    b.branch_if(int_reg(1), loop, probability=0.98)
    b.ret()
    b.end_function()
    return _finish(b, "hammock_farm")


def call_chain(depth: int = 6, body: int = 4) -> Workload:
    """A chain of calls `main -> f1 -> ... -> fN`, with *two* call sites
    for ``f1`` in main's loop: the leaf returns alternate between targets
    every iteration, which a target-caching BTB mispredicts and a
    return-address stack fixes."""
    b = ProgramBuilder("call_chain")
    b.begin_function("main")
    loop = b.new_label()
    b.ialu(int_reg(1))
    b.bind(loop)
    b.call("f1")
    b.ialu(int_reg(2), int_reg(1))
    b.call("f1")
    b.branch_if(int_reg(1), loop, probability=0.97)
    b.ret()
    b.end_function()
    for index in range(1, depth + 1):
        b.begin_function(f"f{index}")
        for i in range(body):
            b.ialu(int_reg(2 + i))
        if index < depth:
            b.call(f"f{index + 1}")
            b.ialu(int_reg(2))
        b.ret()
        b.end_function()
    return _finish(b, "call_chain")


def branch_storm(count: int = 32) -> Workload:
    """Weakly-biased, uncorrelated branches: the predictability floor.
    Every scheme degrades towards the misprediction-bound limit."""
    b = ProgramBuilder("branch_storm")
    b.begin_function("main")
    loop = b.new_label()
    b.ialu(int_reg(1))
    b.bind(loop)
    for index in range(count):
        skip = b.new_label()
        b.ialu(int_reg(2 + index % 8), int_reg(1))
        b.branch_if(
            int_reg(2 + index % 8), skip, probability=0.5, burstiness=0.0
        )
        b.ialu(int_reg(15))
        b.bind(skip)
        b.ialu(int_reg(16))
    b.branch_if(int_reg(1), loop, probability=0.98)
    b.ret()
    b.end_function()
    return _finish(b, "branch_storm")


#: Registry of micro-workload constructors.
MICRO_WORKLOADS: dict[str, Callable[[], Workload]] = {
    "straightline": straightline,
    "tiny_loop": tiny_loop,
    "hammock_farm": hammock_farm,
    "call_chain": call_chain,
    "branch_storm": branch_storm,
}
