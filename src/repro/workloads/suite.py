"""Benchmark-suite registry with caching.

Workload generation is deterministic but not free (tens of thousands of
instructions for the larger programs), so generated workloads are cached
per benchmark name.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.generator import Workload, generate_workload
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INTEGER_BENCHMARKS,
    get_profile,
)


@lru_cache(maxsize=None)
def load_workload(name: str) -> Workload:
    """Generate (or fetch from cache) the benchmark called *name*."""
    return generate_workload(get_profile(name))


def integer_suite() -> list[Workload]:
    """The paper's nine integer benchmarks."""
    return [load_workload(name) for name in INTEGER_BENCHMARKS]


def fp_suite() -> list[Workload]:
    """The paper's six floating-point benchmarks."""
    return [load_workload(name) for name in FP_BENCHMARKS]


def full_suite() -> list[Workload]:
    """All fifteen benchmarks."""
    return [load_workload(name) for name in ALL_BENCHMARKS]
