"""Structured diagnostics shared by every checker layer.

Each finding is a :class:`CheckError` with a stable error code from
:data:`CODES`, so tests and CI can assert on *which* rule fired rather
than string-matching messages.  Codes are grouped by layer:

* ``Cxxx`` — machine-configuration validation,
* ``Pxxx`` — static program/CFG verification,
* ``Txxx`` — dynamic-trace legality,
* ``Kxxx`` — fetch-packet (scheme capability) rules,
* ``Sxxx`` — cycle-level pipeline sanitizer invariants,
* ``Dxxx`` — declarative study/experiment-design validation
  (:mod:`repro.study.spec`),
* ``Axxx`` — matrix-level resolution problems (unknown names).  This
  module owns A001–A009; A010 and up are the ``repro lint`` codebase
  analyzers (:mod:`repro.analysis.findings`), sharing the namespace.

The full catalogue, with the paper sections each rule models, lives in
``docs/checking.md`` (and ``docs/linting.md`` for the analyzer codes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Error-code catalogue: code -> one-line rule description.
CODES: dict[str, str] = {
    # -- machine configuration (Cxxx) --
    "C001": "I-cache size is not a power of two",
    "C002": "I-cache block size is not a power of two",
    "C003": "cache block does not hold at least the issue rate",
    "C004": "BTB entry count is not a power of two",
    "C005": "window/ROB geometry inconsistent with the issue rate",
    "C006": "non-positive functional-unit count",
    "C007": "latency/penalty/depth parameter out of range",
    "C008": "unknown enumerated configuration value",
    # -- static program verification (Pxxx) --
    "P001": "control-transfer target is not a basic-block start",
    "P002": "control-transfer target does not match the taken successor",
    "P003": "fall-through successor is not physically adjacent",
    "P004": "instruction addresses are not contiguous from the base",
    "P005": "instruction does not round-trip through the binary encoding",
    "P006": "CFG structural invariant violated",
    "P007": "basic block larger than the instruction cache",
    # -- dynamic-trace legality (Txxx) --
    "T001": "trace address outside the program image",
    "T002": "branch outcome is not an edge of the CFG",
    "T003": "non-control instruction followed by a non-sequential address",
    "T004": "return continuation does not match the call stack",
    "T005": "trace instruction is not the program's instruction at its address",
    # -- fetch-packet rules (Kxxx) --
    "K001": "empty fetch packet delivered without a stall",
    "K002": "fetch packet exceeds the fetch limit",
    "K003": "fetch packet does not start at the fetch address",
    "K004": "non-sequential step in a sequential-only scheme",
    "K005": "packet touches more cache blocks than the scheme can access",
    "K006": "prefetched block is not the next sequential block",
    "K007": "intra-block taken branch crossed without collapsing hardware",
    "K008": "backward intra-block branch merged by the collapsing buffer",
    "K009": "more than the allowed inter-block taken crossings",
    "K010": "packet blocks collide in the same cache bank",
    "K011": "address delivered twice within one packet",
    "K012": "negative or invalid address in the packet",
    # -- pipeline sanitizer (Sxxx) --
    "S001": "retirement is not monotonic",
    "S002": "window occupancy disagrees with ready/waiting contents",
    "S003": "fetch-queue range outside the trace or over capacity",
    "S004": "unresolved-branch counter disagrees with the ROB",
    "S005": "ROB sequence numbers are not strictly increasing",
    "S006": "ROB occupancy exceeds its capacity",
    "S007": "simulation finished with undrained machine state",
    # -- declarative study design (Dxxx) --
    "D001": "unknown study toggle parameter",
    "D002": "toggle value illegal for its parameter",
    "D003": "duplicate or empty toggle declaration",
    "D004": "pairwise interaction names an unknown toggle",
    "D005": "study scenario field out of range",
    "D006": "toggle override yields an illegal machine configuration",
    "D007": "study expansion exceeds the run budget",
    # -- matrix resolution (Axxx) --
    "A001": "unknown fetch scheme",
    "A002": "unknown machine model",
    "A003": "unknown benchmark",
}


@dataclass(frozen=True, slots=True)
class CheckError:
    """One finding: a stable code, the subject checked, and the details.

    Attributes:
        code: Catalogue key from :data:`CODES`.
        subject: What was being checked (benchmark, machine, scheme name).
        message: Human-readable specifics of this occurrence.
        severity: ``"error"`` (fails the check) or ``"warning"``.
    """

    code: str
    subject: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown check code {self.code!r}")
        if self.severity not in ("error", "warning"):
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


class CheckFailure(Exception):
    """Raised when a validating entry point finds one or more errors."""

    def __init__(self, errors: list[CheckError]) -> None:
        self.errors = list(errors)
        summary = "; ".join(str(e) for e in self.errors[:5])
        if len(self.errors) > 5:
            summary += f" (+{len(self.errors) - 5} more)"
        super().__init__(summary or "check failed")

    @property
    def codes(self) -> tuple[str, ...]:
        """Codes of the carried errors, in order."""
        return tuple(e.code for e in self.errors)


@dataclass(slots=True)
class CheckReport:
    """Accumulated findings of a checking pass."""

    errors: list[CheckError] = field(default_factory=list)
    warnings: list[CheckError] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def add(self, findings: list[CheckError]) -> None:
        """Fold one checker invocation's findings into the report."""
        self.checks_run += 1
        for finding in findings:
            if finding.severity == "warning":
                self.warnings.append(finding)
            else:
                self.errors.append(finding)

    def raise_if_failed(self) -> None:
        if self.errors:
            raise CheckFailure(self.errors)
