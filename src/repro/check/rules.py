"""Declarative fetch-scheme capability model (paper Sections 2-3).

Each scheme is summarised by one :class:`SchemeRules` record stating what
a single fetch packet may legally contain; :func:`check_packet` verifies
any delivered packet against a record.  The rules transcribe the paper's
definitions:

* **sequential** (Figure 2): one cache block, run of consecutive
  addresses, ends at the first predicted-taken branch.
* **interleaved sequential** (Figure 4, Section 3.1): the run may
  continue into the *next sequential* block (two banks), but still no
  taken branch inside the packet.
* **banked sequential** (Section 3.2): at most one *inter-block* taken
  branch per cycle; the two blocks must map to different banks;
  intra-block branches cannot be realigned.
* **collapsing buffer** (Section 3.3): additionally merges *forward*
  intra-block branches (multiple per block); backward intra-block
  branches are not supported by the modelled controller.
* **perfect** (Section 3): unlimited alignment capability — any path the
  predictor produces is deliverable.

The trace-cache extension inherits perfect's packet rules: a hit
delivers a previously recorded dynamic run crossing any number of taken
branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.errors import CheckError

#: Sentinel for "no limit" in :class:`SchemeRules` count fields.
UNLIMITED = -1


@dataclass(frozen=True, slots=True)
class SchemeRules:
    """What one fetch packet of a scheme may legally contain.

    Attributes:
        scheme: Canonical scheme name (factory key).
        sequential_only: Every step inside the packet is ``+1`` — the
            scheme has no hardware to follow a taken branch mid-packet.
        max_blocks: Distinct cache blocks one packet may touch
            (:data:`UNLIMITED` for no bound).
        consecutive_blocks_only: When two blocks appear they must be
            sequential neighbours (the blind next-block prefetch).
        max_inter_block_crossings: Predicted-taken transfers *inside*
            the packet whose target lies in a different block.
        collapses_forward_intra: Forward intra-block taken branches are
            merged out (collapsing buffer).
        allows_backward_intra: Backward intra-block taken branches are
            deliverable (perfect/trace-cache only).
        banked_conflict_free: Distinct blocks in one packet must map to
            distinct cache banks.
    """

    scheme: str
    sequential_only: bool
    max_blocks: int
    consecutive_blocks_only: bool
    max_inter_block_crossings: int
    collapses_forward_intra: bool
    allows_backward_intra: bool
    banked_conflict_free: bool


#: The per-scheme rule table, keyed by factory name.
RULES: dict[str, SchemeRules] = {
    "sequential": SchemeRules(
        scheme="sequential",
        sequential_only=True,
        max_blocks=1,
        consecutive_blocks_only=False,
        max_inter_block_crossings=0,
        collapses_forward_intra=False,
        allows_backward_intra=False,
        banked_conflict_free=False,
    ),
    "interleaved_sequential": SchemeRules(
        scheme="interleaved_sequential",
        sequential_only=True,
        max_blocks=2,
        consecutive_blocks_only=True,
        max_inter_block_crossings=0,
        collapses_forward_intra=False,
        allows_backward_intra=False,
        banked_conflict_free=False,
    ),
    "banked_sequential": SchemeRules(
        scheme="banked_sequential",
        sequential_only=False,
        max_blocks=2,
        consecutive_blocks_only=False,
        max_inter_block_crossings=1,
        collapses_forward_intra=False,
        allows_backward_intra=False,
        banked_conflict_free=True,
    ),
    "collapsing_buffer": SchemeRules(
        scheme="collapsing_buffer",
        sequential_only=False,
        max_blocks=2,
        consecutive_blocks_only=False,
        max_inter_block_crossings=1,
        collapses_forward_intra=True,
        allows_backward_intra=False,
        banked_conflict_free=True,
    ),
    "perfect": SchemeRules(
        scheme="perfect",
        sequential_only=False,
        max_blocks=UNLIMITED,
        consecutive_blocks_only=False,
        max_inter_block_crossings=UNLIMITED,
        collapses_forward_intra=True,
        allows_backward_intra=True,
        banked_conflict_free=False,
    ),
}
#: Trace-cache hits replay recorded dynamic runs — perfect's rules apply.
RULES["trace_cache"] = SchemeRules(
    scheme="trace_cache",
    sequential_only=False,
    max_blocks=UNLIMITED,
    consecutive_blocks_only=False,
    max_inter_block_crossings=UNLIMITED,
    collapses_forward_intra=True,
    allows_backward_intra=True,
    banked_conflict_free=False,
)


def rules_for(scheme: str) -> SchemeRules:
    """The rule record for *scheme* (KeyError if unknown)."""
    try:
        return RULES[scheme]
    except KeyError:
        known = ", ".join(RULES)
        raise KeyError(f"no packet rules for {scheme!r}; known: {known}") from None


def check_packet(
    rules: SchemeRules,
    addresses: list[int],
    *,
    fetch_address: int,
    limit: int,
    words_per_block: int,
    num_banks: int,
    subject: str = "",
) -> list[CheckError]:
    """Verify one planned/delivered packet against *rules*.

    *addresses* are the packet's instruction-word addresses in delivery
    order; *limit* is the fetch-width cap the scheme was given.  Returns
    the (possibly empty) list of violations.
    """
    subject = subject or rules.scheme
    errors: list[CheckError] = []

    def flag(code: str, message: str) -> None:
        errors.append(CheckError(code, subject, message))

    if not addresses:
        flag("K001", "packet is empty but no stall was reported")
        return errors
    if len(addresses) > limit:
        flag("K002", f"{len(addresses)} addresses exceed the limit of {limit}")
    if addresses[0] != fetch_address:
        flag(
            "K003",
            f"packet starts at {addresses[0]}, fetch address is {fetch_address}",
        )
    if any(a < 0 for a in addresses):
        flag("K012", f"negative address in packet: {addresses}")
        return errors
    if len(set(addresses)) != len(addresses):
        flag("K011", f"duplicate address in packet: {addresses}")

    inter_block_crossings = 0
    for before, after in zip(addresses, addresses[1:]):
        if after == before + 1:
            continue
        # A non-sequential step: the slot at `before` was a predicted-
        # taken transfer whose target `after` is in the same packet.
        if rules.sequential_only:
            flag(
                "K004",
                f"taken transfer inside the packet: {before} -> {after}",
            )
            continue
        if after // words_per_block == before // words_per_block:
            if after > before:
                if not rules.collapses_forward_intra:
                    flag(
                        "K007",
                        "intra-block taken branch "
                        f"{before} -> {after} cannot be realigned",
                    )
            elif not rules.allows_backward_intra:
                flag(
                    "K008",
                    f"backward intra-block branch {before} -> {after} "
                    "is not collapsible",
                )
        else:
            inter_block_crossings += 1
    if (
        rules.max_inter_block_crossings != UNLIMITED
        and inter_block_crossings > rules.max_inter_block_crossings
    ):
        flag(
            "K009",
            f"{inter_block_crossings} inter-block taken crossings "
            f"(scheme allows {rules.max_inter_block_crossings})",
        )

    blocks = sorted({a // words_per_block for a in addresses})
    if rules.max_blocks != UNLIMITED and len(blocks) > rules.max_blocks:
        flag(
            "K005",
            f"packet touches blocks {blocks} "
            f"(scheme accesses at most {rules.max_blocks} per cycle)",
        )
    if (
        rules.consecutive_blocks_only
        and len(blocks) == 2
        and blocks[1] != blocks[0] + 1
    ):
        flag(
            "K006",
            f"blocks {blocks} are not sequential neighbours",
        )
    if rules.banked_conflict_free and num_banks > 0 and len(blocks) > 1:
        banks = {block % num_banks for block in blocks}
        if len(banks) < len(blocks):
            flag(
                "K010",
                f"blocks {blocks} collide in {num_banks}-bank cache",
            )
    return errors
